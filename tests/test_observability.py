"""The telemetry layer: spans, Chrome export, ANALYZE, metrics.

Unit coverage for :mod:`repro.obs` plus the cross-layer guarantees the
tentpole promises: tracing is inert when disabled (no actuals dicts on
untraced plans, no-op hooks), wall spans wrap the local engine's
phases, virtual spans mirror the federation's simulated requests and
the runtime's replayed channel intervals (nesting exactly as the
overlap scheduler's DAG replay scheduled them), and every enabled
output — the virtual-domain ``trace_event`` export and
``explain(analyze=True)`` — is byte-identical across repeated seeded
runs, in serial and runtime mode, with and without fault injection.
"""

import json

import pytest

from repro.federation import FederatedExecutor
from repro.federation.faults import RetryPolicy
from repro.federation.network import NetworkStats
from repro.obs import (
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    attach_actuals,
    chrome_trace_events,
    format_actuals,
    validate_trace_events,
)
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.triples import Triple
from repro.sparql.cache import default_plan_cache
from repro.sparql.engine import (
    execute as engine_execute,
    explain as engine_explain,
)
from repro.workload.federation import (
    federated_path_query,
    federated_rps,
    flaky_fault_model,
)

EX = Namespace("http://example.org/")

QUERY = federated_path_query(hops=2)


def make_clock(values):
    """A deterministic injectable clock: each call pops the next value."""
    it = iter(values)
    return lambda: next(it)


@pytest.fixture
def graph():
    g = Graph(name="obs")
    p, q = EX.term("p"), EX.term("q")
    a, b, c, d = (EX.term(x) for x in "abcd")
    for t in [
        Triple(a, p, b),
        Triple(b, p, c),
        Triple(c, p, d),
        Triple(a, q, c),
        Triple(b, q, d),
    ]:
        g.add(t)
    return g


@pytest.fixture
def fed():
    system = federated_rps(peers=3, entities=20, facts=60, seed=7)
    return FederatedExecutor(system)


def make_flaky_executor():
    system = federated_rps(peers=3, entities=20, facts=60, seed=7)
    return FederatedExecutor(
        system,
        fault_model=flaky_fault_model(
            "peer1", failure_rate=0.3, timeout_rate=0.1, seed=15
        ),
        retry_policy=RetryPolicy(max_retries=8),
    )


# ---------------------------------------------------------------------------
# Tracer and Span
# ---------------------------------------------------------------------------


def test_wall_spans_nest_and_time():
    tracer = Tracer(clock=make_clock([0.0, 1.0, 2.0, 5.0]))
    with tracer.span("outer", lane="x", note=1):
        with tracer.span("inner"):
            pass
    [root] = tracer.roots
    assert root.name == "outer" and root.domain == "wall"
    assert root.start == 0.0 and root.end == 5.0
    assert root.lane == "x" and root.attributes == {"note": 1}
    [inner] = root.children
    assert inner.start == 1.0 and inner.end == 2.0
    assert [s.name for s in tracer.spans()] == ["outer", "inner"]


def test_record_attaches_to_parent_stack_or_roots():
    tracer = Tracer(clock=make_clock([0.0, 1.0]))
    free = tracer.record("free", 0.0, 2.0)
    with tracer.span("outer"):
        under = tracer.record("under", 0.5, 1.5, lane="peer1", k=3)
        child = tracer.record("child", 0.6, 0.9, parent=under)
    assert free in tracer.roots
    [outer] = [s for s in tracer.roots if s.name == "outer"]
    assert under in outer.children
    assert child in under.children
    assert under.domain == "virtual" and under.attributes == {"k": 3}


def test_span_duration_clamps_negative():
    assert Span("x", start=2.0, end=1.0).duration == 0.0
    assert Span("x", start=1.0, end=3.5).duration == 2.5


def test_tracer_reset_drops_everything():
    tracer = Tracer(clock=make_clock([0.0, 1.0]))
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.roots == [] and list(tracer.spans()) == []


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("x", lane="y", k=1) as handle:
        assert handle is None
    assert NULL_TRACER.record("x", 0.0, 1.0) is None
    assert list(NULL_TRACER.spans()) == []
    NULL_TRACER.reset()


# ---------------------------------------------------------------------------
# Chrome trace_event export and validation
# ---------------------------------------------------------------------------


def test_chrome_export_shape_lanes_and_domain_filter():
    tracer = Tracer(clock=make_clock([0.0, 1.0]))
    with tracer.span("wall-phase"):
        tracer.record("v1", 0.0, 0.25, lane="peer1", z=1, a=2)
        tracer.record("v2", 0.25, 0.5, lane="peer0")
    doc = chrome_trace_events(tracer, domain="virtual")
    assert validate_trace_events(doc) == []
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert [e["name"] for e in events] == ["v1", "v2"]
    # Lane tids number by first appearance AFTER the domain filter, so
    # the virtual-only export is independent of wall-span interleaving.
    assert [e["tid"] for e in events] == [1, 2]
    assert events[0]["ts"] == 0 and events[0]["dur"] == 250000
    assert list(events[0]["args"]) == ["a", "z"]  # key-sorted
    full = chrome_trace_events(tracer)
    assert len(full["traceEvents"]) == 3
    assert {e["cat"] for e in full["traceEvents"]} == {"wall", "virtual"}


def test_validate_trace_events_rejects_bad_shapes():
    assert validate_trace_events([]) == ["document is not a JSON object"]
    assert validate_trace_events({}) == [
        "'traceEvents' missing or not a list"
    ]
    good = {
        "name": "n",
        "cat": "virtual",
        "ph": "X",
        "ts": 0,
        "dur": 1,
        "pid": 1,
        "tid": 1,
        "args": {},
    }
    assert validate_trace_events({"traceEvents": [good]}) == []
    assert validate_trace_events({"traceEvents": [dict(good, ts=True)]})
    missing = dict(good)
    del missing["dur"]
    assert any(
        "dur" in p
        for p in validate_trace_events({"traceEvents": [missing]})
    )
    assert any(
        "phase" in p
        for p in validate_trace_events({"traceEvents": [dict(good, ph="B")]})
    )
    assert any(
        "negative" in p
        for p in validate_trace_events({"traceEvents": [dict(good, ts=-1)]})
    )
    assert validate_trace_events({"traceEvents": ["nope"]}) == [
        "event 0: not an object"
    ]


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


def test_metrics_registry_counters_gauges_render():
    reg = MetricsRegistry()
    reg.inc("a.hits")
    reg.inc("a.hits", 2)
    reg.set("a.size", 3)
    assert reg.counter("a.hits").value == 3
    with pytest.raises(TypeError):
        reg.gauge("a.hits")
    assert list(reg.snapshot()) == ["a.hits", "a.size"]
    assert reg.render(prefix="metric ") == [
        "metric a.hits=3",
        "metric a.size=3",
    ]


def test_histogram_buckets_and_snapshot():
    h = Histogram((1, 10))
    for v in (0.5, 1, 5, 100):
        h.observe(v)
    assert h.snapshot() == {
        "count": 4,
        "sum": 106.5,
        "le_1": 2,
        "le_10": 1,
        "inf": 1,
    }
    with pytest.raises(ValueError):
        Histogram((5, 5))
    reg = MetricsRegistry()
    reg.observe("lat", 3, (1, 10))
    lines = reg.render()
    assert "lat.count=1" in lines and "lat.le_10=1" in lines


# ---------------------------------------------------------------------------
# ANALYZE plumbing
# ---------------------------------------------------------------------------


def test_format_actuals_states():
    assert format_actuals(None) == ""
    assert format_actuals({}) == " (actual never-run)"
    assert format_actuals({"b": 2, "a": 1}) == " (actual a=1 b=2)"


class _Node:
    """Minimal operator: assignable ``actuals`` plus ``children()``."""

    actuals = None

    def __init__(self, *children):
        self._children = list(children)

    def children(self):
        return self._children


def test_attach_actuals_walks_the_whole_tree():
    leaf = _Node()
    mid = _Node(leaf)
    other = _Node()
    root = _Node(mid, other)
    attach_actuals(root)
    for node in (root, mid, other, leaf):
        assert node.actuals == {}


# ---------------------------------------------------------------------------
# Local engine: phase spans and EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


def test_engine_execute_traces_phases(graph):
    p = EX.term("p").n3()
    text = f"SELECT ?x ?y WHERE {{ ?x {p} ?y }}"
    default_plan_cache.clear()
    tracer = Tracer()
    engine_execute(graph, text, tracer=tracer)
    assert [s.name for s in tracer.roots] == [
        "parse",
        "normalise",
        "plan",
        "execute",
    ]
    assert all(s.domain == "wall" for s in tracer.spans())
    tracer.reset()
    engine_execute(graph, text, tracer=tracer)
    # A plan-cache hit skips parse/normalise/plan entirely.
    assert [s.name for s in tracer.roots] == ["execute"]


def test_local_explain_analyze_batch_engine(graph):
    p = EX.term("p").n3()
    text = f"SELECT ?x ?y WHERE {{ ?x {p} ?y }}"
    plain = engine_explain(graph, text)
    assert plain.startswith("batch engine")
    assert "(actual" not in plain
    analyzed = engine_explain(graph, text, analyze=True)
    assert analyzed.startswith("batch engine")
    assert "(actual" in analyzed and "rows_out=3" in analyzed
    assert analyzed == engine_explain(graph, text, analyze=True)


def test_local_explain_analyze_row_engine_slice(graph):
    p = EX.term("p").n3()
    text = f"SELECT ?x ?y WHERE {{ ?x {p} ?y }} LIMIT 2"
    analyzed = engine_explain(graph, text, analyze=True)
    assert analyzed.startswith("row engine")
    assert "Slice" in analyzed
    assert "rows_out=2" in analyzed
    assert analyzed == engine_explain(graph, text, analyze=True)


def test_local_explain_analyze_ask(graph):
    p = EX.term("p").n3()
    analyzed = engine_explain(graph, f"ASK {{ ?x {p} ?y }}", analyze=True)
    assert analyzed.startswith("row engine")
    assert "(actual" in analyzed


def test_local_explain_never_touches_the_plan_cache(graph):
    p = EX.term("p").n3()
    text = f"SELECT ?x ?y WHERE {{ ?x {p} ?y }}"
    default_plan_cache.clear()
    engine_explain(graph, text, analyze=True)
    stats = default_plan_cache.stats()
    assert stats["size"] == 0
    assert stats["hits"] == 0 and stats["misses"] == 0


# ---------------------------------------------------------------------------
# Federated serial mode: virtual request spans
# ---------------------------------------------------------------------------


def test_serial_trace_spans_every_request(fed):
    tracer = Tracer()
    result = fed.execute(QUERY, "adaptive", tracer=tracer, analyze=True)
    [root] = tracer.roots
    assert root.name == "execute:adaptive" and root.domain == "wall"
    spans = list(tracer.spans())
    requests = [s for s in spans if s.name.startswith("request:")]
    assert len(requests) == result.stats.messages
    for span in requests:
        assert span.domain == "virtual"
        assert span.lane and span.end >= span.start
    ops = [s for s in spans if s.name.startswith("op:")]
    assert ops and all(s.lane == "operators" for s in ops)


def test_untraced_execution_attaches_nothing(fed):
    result = fed.execute(QUERY, "adaptive")
    assert result.plans
    stack = list(result.plans)
    while stack:
        node = stack.pop()
        assert node.actuals is None
        stack.extend(node.children())


def test_virtual_export_is_byte_stable(fed):
    exports = []
    for _ in range(2):
        tracer = Tracer()
        fed.execute(QUERY, "adaptive", tracer=tracer, analyze=True)
        exports.append(
            json.dumps(
                chrome_trace_events(tracer, domain="virtual"),
                sort_keys=True,
            )
        )
    assert exports[0] == exports[1]
    assert validate_trace_events(json.loads(exports[0])) == []


# ---------------------------------------------------------------------------
# Runtime mode: replayed channel/request spans
# ---------------------------------------------------------------------------


def test_runtime_spans_nest_under_channels(fed):
    tracer = Tracer()
    result = fed.execute(QUERY, "parallel", tracer=tracer)
    [root] = tracer.roots
    assert root.name == "execute:parallel"
    channels = [s for s in root.children if s.name.startswith("channel:")]
    assert channels
    names = {s.name.split(":", 1)[1] for s in channels}
    assert names <= set(result.channels)
    spanned = 0
    for channel in channels:
        assert channel.children, "channel span without request children"
        assert channel.attributes["requests"] == len(channel.children)
        spanned += len(channel.children)
        for request in channel.children:
            assert request.name.startswith("request:")
            assert request.domain == "virtual"
            # The replayed service interval sits inside the channel's
            # occupied window exactly as the DAG replay scheduled it.
            assert channel.start <= request.start
            assert request.start <= request.end <= channel.end
    completed = sum(cs.completed for cs in result.channels.values())
    assert spanned == completed


def test_runtime_export_is_byte_stable(fed):
    exports = []
    for _ in range(2):
        tracer = Tracer()
        fed.execute(QUERY, "parallel", tracer=tracer, analyze=True)
        exports.append(
            json.dumps(
                chrome_trace_events(tracer, domain="virtual"),
                sort_keys=True,
            )
        )
    assert exports[0] == exports[1]


def test_channel_stats_merge_under_concurrent_subexecutions(fed):
    """Two traced runtime executions, folded as concurrent siblings.

    ``NetworkStats.merge`` adds work (messages, busy) and maxes the
    makespan; each execution's span forest must independently agree
    with its :class:`ChannelStats` — per-channel request counts and
    summed service durations — because both derive from the same
    overlap-scheduler replay.
    """
    first_tracer, second_tracer = Tracer(), Tracer()
    first = fed.execute(QUERY, "parallel", tracer=first_tracer)
    second = fed.execute(
        federated_path_query(hops=3), "parallel", tracer=second_tracer
    )
    merged = NetworkStats()
    merged.merge(first.stats)
    merged.merge(second.stats)
    assert merged.messages == first.stats.messages + second.stats.messages
    assert merged.busy_seconds == pytest.approx(
        first.stats.busy_seconds + second.stats.busy_seconds
    )
    assert merged.elapsed_seconds == pytest.approx(
        max(first.stats.elapsed_seconds, second.stats.elapsed_seconds)
    )
    for endpoint, count in first.stats.per_endpoint_messages.items():
        assert merged.per_endpoint_messages[endpoint] >= count
    for tracer, result in (
        (first_tracer, first),
        (second_tracer, second),
    ):
        [root] = tracer.roots
        channels = [
            s for s in root.children if s.name.startswith("channel:")
        ]
        requests = sum(len(c.children) for c in channels)
        assert requests == sum(
            cs.completed for cs in result.channels.values()
        )
        busy = sum(
            child.duration for c in channels for child in c.children
        )
        assert busy == pytest.approx(
            sum(cs.busy_seconds for cs in result.channels.values())
        )


# ---------------------------------------------------------------------------
# Fault injection: attempt/backoff spans and determinism
# ---------------------------------------------------------------------------


def test_faulty_trace_shows_attempts_and_is_stable():
    executor = make_flaky_executor()
    exports = []
    for _ in range(2):
        tracer = Tracer()
        result = executor.execute(QUERY, "adaptive", tracer=tracer)
        assert result.stats.failures + result.stats.timeouts > 0
        names = [s.name for s in tracer.spans()]
        assert any("!" in name for name in names)  # failed attempts
        if result.stats.retries:
            assert any(name.startswith("backoff:") for name in names)
        exports.append(
            json.dumps(
                chrome_trace_events(tracer, domain="virtual"),
                sort_keys=True,
            )
        )
    assert exports[0] == exports[1]


def test_federated_explain_analyze_byte_identical_all_modes():
    fed = FederatedExecutor(
        federated_rps(peers=3, entities=20, facts=60, seed=7)
    )
    flaky = make_flaky_executor()
    for executor, strategy in (
        (fed, "adaptive"),
        (fed, "parallel"),
        (flaky, "adaptive"),
        (flaky, "parallel"),
    ):
        traces = {
            executor.explain(QUERY, strategy=strategy, analyze=True)
            for _ in range(3)
        }
        assert len(traces) == 1
        trace = traces.pop()
        assert "(actual" in trace
        assert "metric network.messages=" in trace
        assert "plan-cache:" not in trace
