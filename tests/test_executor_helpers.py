"""Shared binding-helper edge cases and explain-trace determinism."""

import random

from repro.federation import FederatedExecutor
from repro.federation.bindings import (
    batches as _batches,
    dedupe as _dedupe,
    sorted_bindings as _sorted_bindings,
)
from repro.rdf.terms import Variable
from repro.workload.federation import (
    federated_exclusive_query,
    federated_rps,
    federated_selective_query,
    federated_union_filter_sparql,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


# ---------------------------------------------------------------------------
# _batches
# ---------------------------------------------------------------------------


def test_batches_of_empty_binding_list():
    assert _batches([], 1) == []
    assert _batches([], 64) == []


def test_batches_size_one_yields_singletons():
    bindings = [{X: 1}, {X: 2}, {X: 3}]
    assert _batches(bindings, 1) == [[{X: 1}], [{X: 2}], [{X: 3}]]


def test_batches_exact_and_remainder_splits():
    bindings = [{X: i} for i in range(5)]
    assert [len(b) for b in _batches(bindings, 5)] == [5]
    assert [len(b) for b in _batches(bindings, 2)] == [2, 2, 1]
    # Oversized batch: one batch carrying everything.
    assert _batches(bindings, 100) == [bindings]
    # Concatenation preserves order and content.
    assert sum(_batches(bindings, 2), []) == bindings


# ---------------------------------------------------------------------------
# _dedupe / _sorted_bindings
# ---------------------------------------------------------------------------


def test_dedupe_keeps_first_occurrence_order():
    bindings = [{X: 1}, {X: 2}, {X: 1}, {Y: 1}, {X: 2}, {X: 1, Y: 1}]
    assert _dedupe(bindings) == [{X: 1}, {X: 2}, {Y: 1}, {X: 1, Y: 1}]


def test_dedupe_treats_insertion_order_as_equal():
    # Two dicts with the same items in different insertion order are the
    # same binding.
    first = {X: 1, Y: 2}
    second = {Y: 2, X: 1}
    assert _dedupe([first, second]) == [first]


def test_dedupe_of_empty_and_singleton():
    assert _dedupe([]) == []
    assert _dedupe([{}]) == [{}]
    assert _dedupe([{}, {}]) == [{}]


def test_sorted_bindings_is_input_order_invariant():
    rng = random.Random(3)
    bindings = [{X: i, Y: (i * 7) % 5} for i in range(10)] + [
        {Z: i} for i in range(5)
    ]
    reference = _sorted_bindings(list(bindings))
    for _ in range(5):
        shuffled = list(bindings)
        rng.shuffle(shuffled)
        assert _sorted_bindings(shuffled) == reference


# ---------------------------------------------------------------------------
# explain determinism
# ---------------------------------------------------------------------------


def _stable_trace(trace: str) -> str:
    """An explain trace minus its cumulative metrics block.

    The ``metric``-prefixed lines report the executor's *cumulative*
    registry (plan-cache hits/misses, catalog epochs), which advances
    on every prepare by design; the plan tree and decisions must still
    be byte-identical across runs.
    """
    return "\n".join(
        line
        for line in trace.split("\n")
        if not line.startswith("metric ")
    )


def test_explain_is_deterministic_across_repeated_runs():
    system = federated_rps(peers=3, entities=20, facts=60, seed=7)
    executor = FederatedExecutor(system)
    for query in (
        federated_selective_query(entity=3, hops=2),
        federated_union_filter_sparql(),
        federated_exclusive_query(hops=1),
    ):
        raw = [executor.explain(query) for _ in range(3)]
        traces = {_stable_trace(trace) for trace in raw}
        assert len(traces) == 1
        # Repeats of the same text hit the prepared-plan cache.
        assert all("metric plan_cache.hits=" in trace for trace in raw)
        parallel_traces = {
            _stable_trace(executor.explain(query, strategy="parallel"))
            for _ in range(3)
        }
        assert len(parallel_traces) == 1
    stats = executor.plan_cache.stats()
    assert stats["hits"] > 0 and stats["misses"] > 0


def test_explain_is_deterministic_across_executors():
    query = federated_exclusive_query(hops=1)
    traces = set()
    for _ in range(2):
        system = federated_rps(peers=3, entities=20, facts=60, seed=7)
        traces.add(_stable_trace(FederatedExecutor(system).explain(query)))
    assert len(traces) == 1
