"""Discrete-event runtime: kernel, channels, overlap scheduler."""

import pytest

from repro.errors import SimulationError
from repro.runtime import (
    Channel,
    OverlapScheduler,
    Request,
    SimKernel,
)


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------


def test_kernel_runs_events_in_time_order():
    kernel = SimKernel()
    fired = []
    kernel.schedule(2.0, lambda: fired.append(("b", kernel.now)))
    kernel.schedule(1.0, lambda: fired.append(("a", kernel.now)))
    kernel.schedule(3.0, lambda: fired.append(("c", kernel.now)))
    assert kernel.run() == 3.0
    assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
    assert kernel.events_processed == 3


def test_kernel_breaks_ties_by_scheduling_order():
    kernel = SimKernel()
    fired = []
    for tag in ("first", "second", "third"):
        kernel.schedule(1.0, lambda tag=tag: fired.append(tag))
    kernel.run()
    assert fired == ["first", "second", "third"]


def test_kernel_callbacks_can_schedule_followups():
    kernel = SimKernel()
    fired = []
    kernel.schedule(1.0, lambda: kernel.schedule(0.5, lambda: fired.append(kernel.now)))
    assert kernel.run() == 1.5
    assert fired == [1.5]


def test_kernel_rejects_past_events():
    kernel = SimKernel()
    with pytest.raises(SimulationError, match="past"):
        kernel.schedule(-1.0, lambda: None)
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError, match="causality"):
        kernel.schedule_at(1.0, lambda: None)


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------


def _drain(kernel, channel, durations):
    done = []
    for duration in durations:
        channel.submit(Request(duration=duration, on_complete=done.append))
    makespan = kernel.run()
    return makespan, done


def test_single_lane_serialises_requests():
    kernel = SimKernel()
    channel = Channel(kernel, "p0", concurrency=1)
    makespan, done = _drain(kernel, channel, [1.0, 1.0, 1.0])
    assert makespan == 3.0
    assert [r.started_at for r in done] == [0.0, 1.0, 2.0]
    assert channel.stats.completed == 3
    assert channel.stats.busy_seconds == 3.0


def test_lanes_overlap_up_to_concurrency():
    kernel = SimKernel()
    channel = Channel(kernel, "p0", concurrency=3)
    makespan, done = _drain(kernel, channel, [1.0, 1.0, 1.0, 1.0])
    # Three start immediately, the fourth waits for the first free lane.
    assert makespan == 2.0
    assert sorted(r.started_at for r in done) == [0.0, 0.0, 0.0, 1.0]
    # In-flight counts serving + queued: all four are outstanding at t=0.
    assert channel.stats.peak_in_flight == 4


def test_in_flight_window_defers_admission_not_completion_order():
    kernel = SimKernel()
    channel = Channel(kernel, "p0", concurrency=2, max_in_flight=2)
    makespan, done = _drain(kernel, channel, [1.0] * 6)
    assert makespan == 3.0  # same as without the window (FIFO service)
    assert channel.stats.peak_backlog > 0
    # Admission happened in waves as the window freed.
    assert sorted(r.admitted_at for r in done) == [0, 0, 1, 1, 2, 2]


def test_wait_accounting():
    kernel = SimKernel()
    channel = Channel(kernel, "p0", concurrency=1)
    _, done = _drain(kernel, channel, [2.0, 1.0])
    assert done[1].waited == 2.0
    assert channel.stats.wait_seconds == 2.0


def test_channel_validation():
    kernel = SimKernel()
    with pytest.raises(SimulationError, match="concurrency"):
        Channel(kernel, "p0", concurrency=0)
    with pytest.raises(SimulationError, match="max_in_flight"):
        Channel(kernel, "p0", concurrency=4, max_in_flight=2)


# ---------------------------------------------------------------------------
# Overlap scheduler
# ---------------------------------------------------------------------------


def test_independent_requests_overlap():
    scheduler = OverlapScheduler(concurrency=2)
    scheduler.submit("p0", 1.0)
    scheduler.submit("p1", 2.0)
    assert scheduler.makespan() == 2.0
    assert scheduler.busy_seconds() == 3.0


def test_dependency_chain_serialises():
    scheduler = OverlapScheduler()
    first = scheduler.submit("p0", 1.0)
    second = scheduler.submit("p1", 2.0, after=[first])
    third = scheduler.submit("p0", 0.5, after=[second])
    assert scheduler.makespan() == 3.5
    timeline = scheduler.timeline()
    assert [h.completed_at for h in timeline] == [1.0, 3.0, 3.5]


def test_fan_out_then_join():
    # A wave of three requests, then one request gated on all of them.
    scheduler = OverlapScheduler(concurrency=4)
    wave = [scheduler.submit(f"p{i}", 1.0 + i) for i in range(3)]
    joined = scheduler.submit("p0", 1.0, after=wave)
    assert scheduler.makespan() == 4.0  # slowest dep (3.0) + 1.0
    assert scheduler.timeline()[joined.index].started_at == 3.0


def test_channel_contention_limits_overlap():
    scheduler = OverlapScheduler(concurrency=1)
    for _ in range(4):
        scheduler.submit("p0", 1.0)
    assert scheduler.makespan() == 4.0
    stats = scheduler.channel_stats()["p0"]
    assert stats.completed == 4
    assert stats.busy_seconds == 4.0


def test_release_time_delays_arrival():
    scheduler = OverlapScheduler()
    handle = scheduler.submit("p0", 1.0, release=5.0)
    assert scheduler.makespan() == 6.0
    assert scheduler.timeline()[handle.index].arrived_at == 5.0


def test_replay_is_deterministic_and_cached():
    def build():
        scheduler = OverlapScheduler(concurrency=2)
        wave = [scheduler.submit("p0", 0.25) for _ in range(5)]
        scheduler.submit("p1", 1.0, after=wave[:2])
        scheduler.submit("p1", 1.0, after=wave)
        return scheduler

    first, second = build(), build()
    assert first.makespan() == second.makespan()
    assert first.makespan() is not None
    # Cached until the DAG changes; a new submit invalidates.
    before = first.makespan()
    first.submit("p2", 10.0)
    assert first.makespan() == before + 10.0 or first.makespan() >= 10.0


def test_makespan_never_exceeds_busy_seconds():
    scheduler = OverlapScheduler(concurrency=3)
    previous = []
    for i in range(7):
        previous = [scheduler.submit(f"p{i % 2}", 0.5, after=previous[-1:])]
    assert scheduler.makespan() <= scheduler.busy_seconds() + 1e-12


def test_scheduler_validation():
    with pytest.raises(SimulationError, match="concurrency"):
        OverlapScheduler(concurrency=0)
    scheduler = OverlapScheduler()
    with pytest.raises(SimulationError, match="negative"):
        scheduler.submit("p0", -1.0)
