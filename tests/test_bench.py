"""Smoke tests for the benchmark harness (tiny scale, single repeat)."""

import json

import pytest

from repro.bench import run_all
from repro.bench.runner import format_summary

EXPECTED_BENCHMARKS = {
    "match/by_subject",
    "match/by_predicate",
    "match/by_object",
    "match/subject_predicate",
    "match/repeated_variable",
    "join/path2",
    "join/path3",
    "join/star2",
    "join/star3",
    "chase/chain",
    "chase/cycle",
}


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_core.json"
    report = run_all(scale=800, repeat=1, out=str(out), peers=3)
    return report, out


def test_report_written_and_parseable(report):
    data, out = report
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["suite"] == "core"
    assert on_disk["scale"] == 800
    assert {row["name"] for row in on_disk["benchmarks"]} == EXPECTED_BENCHMARKS
    assert on_disk == json.loads(json.dumps(data))


def test_comparative_rows_have_baseline_and_speedup(report):
    data, _ = report
    for row in data["benchmarks"]:
        assert row["seconds"] >= 0
        if row["name"].startswith(("match/", "join/")):
            assert row["baseline_seconds"] >= 0
            assert row["speedup"] > 0
        else:
            assert "baseline_seconds" not in row


def test_summary_mentions_every_benchmark(report):
    data, _ = report
    text = format_summary(data)
    for name in EXPECTED_BENCHMARKS:
        assert name in text


def test_run_without_out_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_all(scale=300, repeat=1, out=None, peers=3)
    assert list(tmp_path.iterdir()) == []
