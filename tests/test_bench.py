"""Smoke tests for the benchmark harness (tiny scale, single repeat)."""

import copy
import json

import pytest

from repro.bench import check_against, run_all
from repro.bench.runner import format_summary

FEDERATION_STRATEGIES = ("adaptive", "parallel", "naive", "bound", "collect")

ADAPTIVE_WORKLOADS = (
    "path2@3p",
    "selective@3p",
    "union_filter@3p",
    "path3@5p",
)

PARALLEL_WORKLOADS = (
    "path2@3p",
    "union_filter@3p",
    "exclusive@3p",
    "path3@5p",
)

STREAMING_WORKLOADS = (
    "deep_sel@3p",
    "deep_sel@5p",
    "optional@3p",
    "optional_filter@3p",
)

LIMIT_WORKLOADS = (
    "deep_bound@3p",
    "deep_pipelined@3p",
    "topk@3p",
    "ask@3p",
)

#: Limit-suite workloads where the gate demands a *strict* win.
DEEP_LIMIT_WORKLOADS = ("deep_bound@3p", "deep_pipelined@3p", "ask@3p")

COLUMNAR_WORKLOADS = ("path2", "star2", "filter_path", "union_join")

FAULT_WORKLOADS = (
    "flaky@3p",
    "flaky_parallel@3p",
    "outage@3p",
    "failover@3p",
    "blackout@3p",
)

#: The one fault scenario that must come back flagged partial.
UNRECOVERABLE_FAULT_WORKLOADS = ("blackout@3p",)

OBS_WORKLOADS = ("serial@3p", "runtime@3p")

CONCURRENCY_LOADS = (2, 4, 8)
CONCURRENCY_WINDOWS = (1, 2, 8)

EXPECTED_BENCHMARKS = {
    "match/by_subject",
    "match/by_predicate",
    "match/by_object",
    "match/subject_predicate",
    "match/repeated_variable",
    "join/path2",
    "join/path3",
    "join/star2",
    "join/star3",
    "chase/chain",
    "chase/cycle",
    "sparql/bgp_path2",
    "sparql/bgp_star2",
    "sparql/union",
    "sparql/filter",
    "sparql/union_join",
    "columnar/plan_cache",
} | {
    f"columnar/{workload}" for workload in COLUMNAR_WORKLOADS
} | {
    f"federation/{strategy}@{facts}"
    for strategy in FEDERATION_STRATEGIES
    for facts in (20, 60, 120)
} | {
    f"adaptive/{workload}:{strategy}"
    for workload in ADAPTIVE_WORKLOADS
    for strategy in FEDERATION_STRATEGIES
} | {
    f"parallel/{workload}:{mode}"
    for workload in PARALLEL_WORKLOADS
    for mode in ("serial", "parallel")
} | {
    f"streaming/{workload}:{mode}"
    for workload in STREAMING_WORKLOADS
    for mode in ("wave", "pipelined")
} | {
    f"limit/{workload}:{kind}"
    for workload in LIMIT_WORKLOADS
    for kind in ("unlimited", "limited")
} | {
    f"faults/{workload}:{mode}"
    for workload in FAULT_WORKLOADS
    for mode in ("faultfree", "faulty")
} | {
    f"obs/{workload}" for workload in OBS_WORKLOADS
} | {
    f"concurrency/load{load}:{variant}"
    for load in CONCURRENCY_LOADS
    for variant in tuple(f"w{w}" for w in CONCURRENCY_WINDOWS)
    + ("adaptive",)
} | {
    f"concurrency/skew:{discipline}" for discipline in ("fifo", "wrr")
}


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_core.json"
    report = run_all(scale=800, repeat=1, out=str(out), peers=3)
    return report, out


def test_report_written_and_parseable(report):
    data, out = report
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["suite"] == "core"
    assert on_disk["scale"] == 800
    assert {row["name"] for row in on_disk["benchmarks"]} == EXPECTED_BENCHMARKS
    assert on_disk == json.loads(json.dumps(data))


def test_comparative_rows_have_baseline_and_speedup(report):
    data, _ = report
    for row in data["benchmarks"]:
        assert row["seconds"] >= 0
        if row["name"].startswith(
            ("match/", "join/", "sparql/", "columnar/", "obs/")
        ):
            assert row["baseline_seconds"] >= 0
            assert row["speedup"] > 0
        else:
            assert "baseline_seconds" not in row


def test_federation_rows_account_messages(report):
    data, _ = report
    rows = {
        row["name"]: row["meta"]
        for row in data["benchmarks"]
        if row["name"].startswith("federation/")
    }
    for facts in (20, 60, 120):
        naive = rows[f"federation/naive@{facts}"]
        bound = rows[f"federation/bound@{facts}"]
        collect = rows[f"federation/collect@{facts}"]
        adaptive = rows[f"federation/adaptive@{facts}"]
        # The acceptance invariant: bound joins ship strictly fewer
        # messages than naive per-pattern shipping.
        assert bound["messages"] < naive["messages"]
        # All strategies agree on the answer set size.
        assert (
            naive["results"]
            == bound["results"]
            == collect["results"]
            == adaptive["results"]
        )
        # Only the collect baseline dumps every triple.
        assert collect["triples_transferred"] > 0
        assert naive["triples_transferred"] == 0
        assert naive["busy_seconds"] > 0


def test_adaptive_rows_never_pareto_dominated(report):
    data, _ = report
    rows = {
        row["name"]: row["meta"]
        for row in data["benchmarks"]
        if row["name"].startswith("adaptive/")
    }
    assert rows
    for workload in ADAPTIVE_WORKLOADS:
        chosen = rows[f"adaptive/{workload}:adaptive"]
        transfer = (
            chosen["solutions_transferred"] + chosen["triples_transferred"]
        )
        for strategy in ("naive", "bound", "collect"):
            other = rows[f"adaptive/{workload}:{strategy}"]
            other_transfer = (
                other["solutions_transferred"] + other["triples_transferred"]
            )
            assert chosen["results"] == other["results"]
            assert not (
                chosen["messages"] > other["messages"]
                and transfer > other_transfer
            ), (workload, strategy)


def test_summary_mentions_every_benchmark(report):
    data, _ = report
    text = format_summary(data)
    for name in EXPECTED_BENCHMARKS:
        assert name in text


def test_run_without_out_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_all(scale=300, repeat=1, out=None, peers=3)
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Regression gate (--check)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def committed(report):
    """A committed-style report whose smoke block is the tiny run itself."""
    data, _ = report
    full = copy.deepcopy(data)
    full["smoke"] = copy.deepcopy(data)
    return full


def test_check_passes_against_itself(report, committed):
    data, _ = report
    outcome = check_against(committed, fresh=copy.deepcopy(data))
    assert outcome.ok, outcome.summary()
    assert outcome.checked == len(EXPECTED_BENCHMARKS)
    assert "OK" in outcome.summary()


def test_check_fails_without_smoke_block(report):
    data, _ = report
    outcome = check_against({"benchmarks": []}, fresh=copy.deepcopy(data))
    assert not outcome.ok
    assert "smoke" in outcome.failures[0]


def test_check_fails_on_missing_benchmark(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    fresh["benchmarks"] = [
        row for row in fresh["benchmarks"] if row["name"] != "join/path2"
    ]
    outcome = check_against(committed, fresh=fresh)
    assert not outcome.ok
    assert any("join/path2" in failure for failure in outcome.failures)


def test_check_fails_on_speedup_regression(report, committed):
    data, _ = report
    doctored = copy.deepcopy(committed)
    for row in doctored["smoke"]["benchmarks"]:
        if row.get("speedup") is not None:
            row["speedup"] = row["speedup"] * 100.0
    outcome = check_against(doctored, fresh=copy.deepcopy(data))
    assert not outcome.ok
    assert any("fell more than" in failure for failure in outcome.failures)


def test_check_tolerance_band_absorbs_small_drift(report, committed):
    data, _ = report
    doctored = copy.deepcopy(committed)
    for row in doctored["smoke"]["benchmarks"]:
        if row.get("speedup") is not None:
            row["speedup"] = row["speedup"] * 1.5  # within the 2x band
    outcome = check_against(doctored, fresh=copy.deepcopy(data))
    assert outcome.ok, outcome.summary()


def test_check_fails_on_deterministic_metric_drift(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    for row in fresh["benchmarks"]:
        if row["name"] == "federation/bound@60":
            row["meta"]["messages"] += 5
    outcome = check_against(committed, fresh=fresh)
    assert not outcome.ok
    assert any("messages changed" in failure for failure in outcome.failures)


def test_check_median_absorbs_one_noisy_run(report, committed):
    # A single timing outlier (e.g. a preempted CI runner) must not fail
    # the gate: the median over three runs discards it.
    data, _ = report
    noisy = copy.deepcopy(data)
    for row in noisy["benchmarks"]:
        if row.get("speedup") is not None:
            row["speedup"] = row["speedup"] / 100.0
    runs = [copy.deepcopy(data), noisy, copy.deepcopy(data)]
    outcome = check_against(committed, fresh=runs)
    assert outcome.ok, outcome.summary()


def test_check_fails_on_reproducible_median_regression(report, committed):
    data, _ = report
    runs = []
    for _ in range(3):
        slow = copy.deepcopy(data)
        for row in slow["benchmarks"]:
            if row.get("speedup") is not None:
                row["speedup"] = row["speedup"] / 100.0
        runs.append(slow)
    outcome = check_against(committed, fresh=runs)
    assert not outcome.ok
    failure = next(f for f in outcome.failures if "median speedup" in f)
    # The failure names the suite that drifted.
    assert "suite" in failure


def test_check_fails_when_adaptive_plan_is_dominated(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    # Doctor fresh and committed identically so only the Pareto
    # invariant trips, not the deterministic-metric comparison.
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "adaptive/path2@3p:adaptive":
                row["meta"]["messages"] = 10_000
                row["meta"]["solutions_transferred"] = 10_000
                row["meta"]["triples_transferred"] = 10_000
                row["meta"]["transfer_units"] = 20_000
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any("dominated by" in failure for failure in outcome.failures)


def test_streaming_rows_keep_traffic_and_win_wall_clock(report):
    data, _ = report
    rows = {
        row["name"]: row["meta"]
        for row in data["benchmarks"]
        if row["name"].startswith("streaming/")
    }
    assert rows
    strict_win = False
    for workload in STREAMING_WORKLOADS:
        wave = rows[f"streaming/{workload}:wave"]
        pipelined = rows[f"streaming/{workload}:pipelined"]
        assert pipelined["results"] == wave["results"]
        # Pipelining changes the timeline, never the traffic.
        assert pipelined["messages"] == wave["messages"]
        assert (
            pipelined["solutions_transferred"]
            == wave["solutions_transferred"]
        )
        assert (
            pipelined["elapsed_seconds"] <= wave["elapsed_seconds"] + 1e-9
        )
        if pipelined["elapsed_seconds"] < wave["elapsed_seconds"] - 1e-9:
            strict_win = True
    assert strict_win


def test_check_fails_when_pipelining_loses_wall_clock(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    # Doctor fresh and committed identically so only the pipelining
    # invariant trips, not the deterministic-metric comparison.
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "streaming/deep_sel@3p:pipelined":
                row["meta"]["elapsed_seconds"] = 10_000.0
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "exceeds the wave barrier" in failure for failure in outcome.failures
    )


def test_limit_rows_cut_messages_and_makespan(report):
    data, _ = report
    rows = {
        row["name"]: row["meta"]
        for row in data["benchmarks"]
        if row["name"].startswith("limit/")
    }
    assert rows
    for workload in LIMIT_WORKLOADS:
        full = rows[f"limit/{workload}:unlimited"]
        cut = rows[f"limit/{workload}:limited"]
        assert cut["messages"] <= full["messages"], workload
        if workload in DEEP_LIMIT_WORKLOADS:
            # Demand propagation must demonstrably stop the pipeline,
            # not merely discard surplus rows after paying for them.
            assert cut["messages"] < full["messages"], workload
            assert cut["elapsed_seconds"] < full["elapsed_seconds"], workload


def test_check_fails_when_limit_stops_saving_messages(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    # Doctor fresh and committed identically so only the demand
    # invariant trips, not the deterministic-metric comparison.
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "limit/deep_bound@3p:limited":
                row["meta"]["messages"] = 10_000
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "capped run shipped more messages" in failure
        for failure in outcome.failures
    )


def test_check_fails_when_limit_loses_its_makespan_win(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "limit/ask@3p:limited":
                row["meta"]["elapsed_seconds"] = 10_000.0
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "no strict makespan win" in failure for failure in outcome.failures
    )


def test_check_fails_when_pipelining_changes_messages(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "streaming/deep_sel@3p:pipelined":
                row["meta"]["messages"] += 7
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "changed the message count" in failure
        for failure in outcome.failures
    )


def test_fault_rows_recover_or_flag(report):
    data, _ = report
    rows = {
        row["name"]: row["meta"]
        for row in data["benchmarks"]
        if row["name"].startswith("faults/")
    }
    assert rows
    for workload in FAULT_WORKLOADS:
        faultfree = rows[f"faults/{workload}:faultfree"]
        faulty = rows[f"faults/{workload}:faulty"]
        # The scenario injected something real and stayed in budget.
        assert faulty["failures"] + faulty["timeouts"] > 0, workload
        assert faulty["messages"] <= faulty["retry_budget"], workload
        if workload in UNRECOVERABLE_FAULT_WORKLOADS:
            assert faulty["partial"] == 1, workload
            assert faulty["unreachable"] >= 1, workload
            assert faulty["results"] <= faultfree["results"], workload
        else:
            assert faulty["partial"] == 0, workload
            assert faulty["results"] == faultfree["results"], workload


def test_check_fails_when_partial_answer_goes_unflagged(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    # Doctor fresh and committed identically so only the faults
    # invariant trips, not the deterministic-metric comparison.
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "faults/blackout@3p:faulty":
                row["meta"]["partial"] = 0
                row["meta"]["unreachable"] = 0
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "silently wrong subset" in failure for failure in outcome.failures
    )


def test_check_fails_when_recovery_loses_answers(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "faults/flaky@3p:faulty":
                row["meta"]["results"] -= 1
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "recoverable run did not match" in failure
        for failure in outcome.failures
    )


def test_check_fails_when_retry_traffic_blows_the_budget(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "faults/flaky@3p:faulty":
                row["meta"]["messages"] = 10_000
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "exceed the retry budget" in failure for failure in outcome.failures
    )


def test_obs_rows_carry_telemetry_flags(report):
    data, _ = report
    rows = {
        row["name"]: row
        for row in data["benchmarks"]
        if row["name"].startswith("obs/")
    }
    assert set(rows) == {f"obs/{w}" for w in OBS_WORKLOADS}
    for row in rows.values():
        meta = row["meta"]
        assert meta["trace_valid"] == 1
        assert meta["trace_stable"] == 1
        assert meta["analyze_stable"] == 1
        assert meta["span_count"] > 0
        assert meta["metrics"]  # cumulative registry snapshot embedded
        assert row["speedup"] > 0


def test_check_fails_when_trace_stability_breaks(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    # Doctor fresh and committed identically so only the obs invariant
    # trips, not the deterministic-metric comparison.
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "obs/serial@3p":
                row["meta"]["trace_stable"] = 0
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "trace_stable flag is unset" in failure
        for failure in outcome.failures
    )


def test_check_fails_when_instrumented_run_has_no_spans(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "obs/runtime@3p":
                row["meta"]["span_count"] = 0
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "collected no spans" in failure for failure in outcome.failures
    )


def test_concurrency_rows_carry_gated_metrics(report):
    data, _ = report
    rows = {
        row["name"]: row
        for row in data["benchmarks"]
        if row["name"].startswith("concurrency/")
    }
    any_strict = False
    for load in CONCURRENCY_LOADS:
        adaptive = rows[f"concurrency/load{load}:adaptive"]["meta"]
        assert adaptive["tenants"] == load
        assert adaptive["adjustments"] > 0
        for window in CONCURRENCY_WINDOWS:
            fixed = rows[f"concurrency/load{load}:w{window}"]["meta"]
            assert fixed["tenants"] == load
            assert adaptive["p95_us"] <= fixed["p95_us"]
            any_strict |= adaptive["p95_us"] < fixed["p95_us"]
    assert any_strict
    fifo = rows["concurrency/skew:fifo"]["meta"]
    wrr = rows["concurrency/skew:wrr"]["meta"]
    assert wrr["ratio_x1000"] < fifo["ratio_x1000"]


def test_check_fails_when_adaptive_loses_to_fixed_window(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    # Doctor fresh and committed identically so only the concurrency
    # invariant trips, not the deterministic-metric comparison.
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "concurrency/load4:adaptive":
                row["meta"]["p95_us"] = 10**9
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "adaptive p95" in failure and "exceeds fixed window" in failure
        for failure in outcome.failures
    )


def test_check_fails_when_wrr_stops_bounding_skew(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "concurrency/skew:wrr":
                row["meta"]["ratio_x1000"] = 10**9
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "did not improve on FIFO" in failure
        for failure in outcome.failures
    )


def test_columnar_rows_win_and_cache_counters(report):
    data, _ = report
    rows = {
        row["name"]: row
        for row in data["benchmarks"]
        if row["name"].startswith("columnar/")
    }
    assert rows
    comparative = [rows[f"columnar/{w}"] for w in COLUMNAR_WORKLOADS]
    # At least one join workload must run strictly faster columnar.
    assert any(row["speedup"] > 1.0 for row in comparative)
    meta = rows["columnar/plan_cache"]["meta"]
    assert meta["hot_misses"] == 0 and meta["hot_hits"] >= 1
    assert meta["cold_hits"] == 0 and meta["cold_misses_last_call"] == 1


def test_check_fails_when_batch_engine_stops_winning(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    # Doctor fresh and committed identically so only the columnar
    # invariant trips, not the median-speedup comparison.
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if (
                row["name"].startswith("columnar/")
                and row["name"] != "columnar/plan_cache"
            ):
                row["speedup"] = 0.5
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "no workload showed a strict batch-engine win" in failure
        for failure in outcome.failures
    )


def test_check_fails_when_plan_cache_stops_hitting(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    doctored = copy.deepcopy(committed)
    for blob in (fresh["benchmarks"], doctored["smoke"]["benchmarks"]):
        for row in blob:
            if row["name"] == "columnar/plan_cache":
                row["meta"]["hot_misses"] = row["meta"]["hot_hits"]
                row["meta"]["hot_hits"] = 0
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any(
        "not served entirely from the cache" in failure
        for failure in outcome.failures
    )


def test_check_fails_when_bound_loses_message_advantage(report, committed):
    data, _ = report
    fresh = copy.deepcopy(data)
    for row in fresh["benchmarks"]:
        if row["name"].startswith("federation/bound@"):
            row["meta"]["messages"] = 10_000
    # Doctor the committed metas identically so only the invariant trips.
    doctored = copy.deepcopy(committed)
    for row in doctored["smoke"]["benchmarks"]:
        if row["name"].startswith("federation/bound@"):
            row["meta"]["messages"] = 10_000
    outcome = check_against(doctored, fresh=fresh)
    assert not outcome.ok
    assert any("not fewer than naive" in failure for failure in outcome.failures)
