"""ID-native SPARQL executor: equivalence with the term-level reference.

The physical plans of :mod:`repro.sparql.plan` must produce exactly the
solution sets of the naive algebra evaluator
(:func:`repro.sparql.algebra.evaluate_algebra`) — on hand-written edge
cases and on randomized workload graphs with generated query shapes.
"""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triples import Triple
import random

from repro.sparql.algebra import (
    evaluate_algebra,
    reference_select,
    translate_group,
)
from repro.sparql.bridge import gpq_to_sparql
from repro.sparql.engine import ask_text, select
from repro.sparql.parser import parse_query
from repro.sparql.plan import (
    BgpScan,
    EmptyScan,
    build_plan,
    explain_plan,
    select_rows,
)
from repro.workload.generators import random_graph
from repro.workload.queries import random_queries

EX = Namespace("http://example.org/")


def reference_rows(graph, ast):
    """Projected rows via the naive term-level evaluator (the oracle)."""
    node = translate_group(ast.where)
    omega = evaluate_algebra(graph, node)
    variables = ast.projected()
    return {tuple(mu.get(v) for v in variables) for mu in omega}


def plan_rows(graph, ast):
    node = translate_group(ast.where)
    return select_rows(graph, node, ast.projected())


def assert_equivalent(graph, text):
    ast = parse_query(text)
    assert plan_rows(graph, ast) == reference_rows(graph, ast), text


# ---------------------------------------------------------------------------
# Hand-written shapes
# ---------------------------------------------------------------------------


@pytest.fixture
def small_graph():
    g = Graph(name="exec")
    p, q, r = EX.term("p"), EX.term("q"), EX.term("r")
    a, b, c, d = (EX.term(x) for x in "abcd")
    for t in [
        Triple(a, p, b), Triple(b, p, c), Triple(c, p, d),
        Triple(a, q, c), Triple(b, q, d), Triple(a, r, a),
        Triple(d, r, Literal("leaf")),
    ]:
        g.add(t)
    return g


QUERY_SHAPES = [
    "SELECT ?x ?y WHERE { ?x <http://example.org/p> ?y }",
    "SELECT ?x ?z WHERE { ?x <http://example.org/p> ?y . "
    "?y <http://example.org/p> ?z }",
    "SELECT * WHERE { ?x <http://example.org/p> ?y . "
    "?x <http://example.org/q> ?z }",
    # Repeated variable inside one pattern.
    "SELECT ?x WHERE { ?x <http://example.org/r> ?x }",
    # UNION of same-domain branches.
    "SELECT ?x ?y WHERE { { ?x <http://example.org/p> ?y } UNION "
    "{ ?x <http://example.org/q> ?y } }",
    # UNION of different-domain branches joined with a BGP.
    "SELECT * WHERE { { ?x <http://example.org/p> ?o } UNION "
    "{ ?x <http://example.org/q> ?u } . ?x <http://example.org/r> ?w }",
    # Projection of a variable unbound in one branch.
    "SELECT ?o ?u WHERE { { ?x <http://example.org/p> ?o } UNION "
    "{ ?x <http://example.org/q> ?u } }",
    # Filters: var-var, var-ground, ground compared against data.
    "SELECT ?x ?y WHERE { ?x <http://example.org/p> ?y . FILTER(?x != ?y) }",
    "SELECT ?x WHERE { ?x <http://example.org/p> ?y . "
    "FILTER(?y = <http://example.org/b>) }",
    "SELECT ?x WHERE { ?x <http://example.org/p> ?y . "
    "FILTER(?x != <http://example.org/a> && ?y != <http://example.org/c>) }",
    "SELECT ?x WHERE { ?x <http://example.org/p> ?y . "
    "FILTER(?x = <http://example.org/a> || ?y = <http://example.org/d>) }",
    # Nested groups are conjunctive.
    "SELECT * WHERE { { ?x <http://example.org/p> ?y } "
    "{ ?y <http://example.org/q> ?z } }",
    # Empty group: the empty mapping.
    "SELECT * WHERE { }",
    # Ground pattern acting as an existence test.
    "SELECT ?x WHERE { <http://example.org/a> <http://example.org/p> "
    "<http://example.org/b> . ?x <http://example.org/q> ?y }",
]


@pytest.mark.parametrize("text", QUERY_SHAPES)
def test_plan_matches_reference_on_handwritten_shapes(small_graph, text):
    assert_equivalent(small_graph, text)


def test_uninterned_ground_term_prunes_to_empty(small_graph):
    text = "SELECT ?x WHERE { ?x <http://example.org/never-seen> ?y }"
    ast = parse_query(text)
    assert plan_rows(small_graph, ast) == reference_rows(small_graph, ast) == set()
    plan = build_plan(small_graph, translate_group(ast.where))
    assert isinstance(plan, EmptyScan)


def test_filter_with_uninterned_constant(small_graph):
    # "!=" against a constant the dictionary has never seen is always
    # true for bound variables; "=" is always false.
    assert_equivalent(
        small_graph,
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y . "
        "FILTER(?x != <http://example.org/unseen>) }",
    )
    assert_equivalent(
        small_graph,
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y . "
        "FILTER(?x = <http://example.org/unseen>) }",
    )


def test_ground_ground_filter_constant_folds(small_graph):
    assert_equivalent(
        small_graph,
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y . "
        'FILTER("a" != "b") }',
    )
    assert_equivalent(
        small_graph,
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y . "
        'FILTER("a" = "b") }',
    )


def test_cross_product_of_disconnected_patterns(small_graph):
    assert_equivalent(
        small_graph,
        "SELECT * WHERE { ?x <http://example.org/q> ?y . "
        "?s <http://example.org/r> ?o }",
    )


def test_ask_through_engine(small_graph):
    assert ask_text(small_graph, "ASK { ?x <http://example.org/p> ?y }")
    assert not ask_text(
        small_graph, "ASK { ?x <http://example.org/p> <http://example.org/a> }"
    )


def test_select_modifiers_still_apply(small_graph):
    result = select(
        small_graph,
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y } "
        "ORDER BY DESC(?x) LIMIT 2",
    )
    assert len(result) == 2
    names = [row[0] for row in result.rows]
    assert names == sorted(names, key=lambda t: t.sort_key(), reverse=True)


def test_order_by_non_projected_variable(small_graph):
    # ?y never appears in the projection, so the engine must sort the
    # full solutions before projecting them away.
    text = (
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y } "
        "ORDER BY DESC(?y) ?x"
    )
    result = select(small_graph, text)
    expected = reference_select(small_graph, parse_query(text))
    assert result.rows == expected
    # Sanity: the order differs from the canonical projected order, so
    # the test would catch an engine that sorted after projection.
    assert [row[0] for row in result.rows] != sorted(
        (row[0] for row in result.rows), key=lambda t: t.sort_key()
    )


def test_limit_zero_and_offset_past_end(small_graph):
    base = "SELECT ?x WHERE { ?x <http://example.org/p> ?y }"
    assert select(small_graph, base + " LIMIT 0").rows == []
    assert select(small_graph, base + " OFFSET 99").rows == []
    assert select(small_graph, base + " ORDER BY ?x LIMIT 0").rows == []
    assert select(small_graph, base + " ORDER BY ?x OFFSET 99").rows == []


def test_order_by_ties_break_on_projected_row(small_graph):
    # Every ?x shares the same (absent) value for ?missing: an all-ties
    # sort, which must fall back to the deterministic canonical order of
    # the projected rows — in both the engine and the oracle.
    text = (
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y } "
        "ORDER BY ?missing OFFSET 1 LIMIT 2"
    )
    result = select(small_graph, text)
    assert result.rows == reference_select(small_graph, parse_query(text))


# ---------------------------------------------------------------------------
# Planner structure
# ---------------------------------------------------------------------------


def test_bgp_orders_selective_conjunct_first():
    g = Graph(name="sel")
    rare, common = EX.term("rare"), EX.term("common")
    hub = EX.term("hub")
    for i in range(50):
        g.add(Triple(EX.term(f"e{i}"), common, hub))
    g.add(Triple(EX.term("e0"), rare, hub))
    text = (
        "SELECT * WHERE { ?x <http://example.org/common> ?h . "
        "?x <http://example.org/rare> ?h }"
    )
    ast = parse_query(text)
    plan = build_plan(g, translate_group(ast.where))
    assert isinstance(plan, BgpScan)
    assert plan.ordered[0].predicate == rare
    assert_equivalent(g, text)


def test_explain_plan_renders_tree(small_graph):
    text = (
        "SELECT * WHERE { { ?x <http://example.org/p> ?y } UNION "
        "{ ?x <http://example.org/q> ?y } . ?x <http://example.org/r> ?w }"
    )
    rendered = explain_plan(small_graph, translate_group(parse_query(text).where))
    assert "Union" in rendered
    assert "HashJoin" in rendered
    assert "BgpScan" in rendered


# ---------------------------------------------------------------------------
# Randomized equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 5, 11, 23])
def test_randomized_bgp_equivalence(seed):
    graph = random_graph(triples=250, seed=seed)
    predicates = sorted(graph.predicates())
    for gpq in random_queries(predicates, count=12, max_length=3, seed=seed):
        text = gpq_to_sparql(gpq)
        assert_equivalent(graph, text)


@pytest.mark.parametrize("seed", [2, 9])
def test_randomized_union_filter_equivalence(seed):
    graph = random_graph(triples=250, seed=seed, blank_fraction=0.2)
    predicates = [p.n3() for p in sorted(graph.predicates())[:4]]
    p0, p1, p2, p3 = predicates
    shapes = [
        f"SELECT * WHERE {{ {{ ?a {p0} ?b }} UNION {{ ?a {p1} ?b }} "
        f"UNION {{ ?a {p2} ?b }} }}",
        f"SELECT ?a ?c WHERE {{ ?a {p0} ?b . ?b {p1} ?c . FILTER(?a != ?c) }}",
        f"SELECT * WHERE {{ {{ ?a {p0} ?b . ?b {p1} ?c }} UNION "
        f"{{ ?a {p2} ?c }} . ?c {p3} ?d }}",
        f"SELECT ?b WHERE {{ ?a {p0} ?b . FILTER(?a = ?b || ?b != ?a) }}",
    ]
    for text in shapes:
        assert_equivalent(graph, text)


@pytest.mark.parametrize("seed", [3, 17])
def test_randomized_engine_matches_reference_modifier_pipeline(seed):
    """Full engine path (modifiers included) equals a reference pipeline."""
    graph = random_graph(triples=200, seed=seed)
    p0 = sorted(graph.predicates())[0].n3()
    text = f"SELECT ?s WHERE {{ ?s {p0} ?o }} ORDER BY ?s LIMIT 7"
    result = select(graph, text)
    ast = parse_query(text)
    expected = sorted(
        {row[0] for row in reference_rows(graph, ast)},
        key=lambda t: t.sort_key(),
    )[:7]
    assert [row[0] for row in result.rows] == expected


def random_modifier_queries(predicates, count, seed):
    """Generated path queries with random solution-modifier combos.

    Yields ``(text, ordered)`` pairs.  Shapes cover ORDER BY on
    projected and non-projected variables, ASC/DESC mixes, DISTINCT,
    LIMIT 0, offsets past the end, and bare slices with no ordering.
    """
    rng = random.Random(seed)
    names = ["a", "b", "c", "d"]
    for _ in range(count):
        hops = rng.randint(1, 3)
        body = " . ".join(
            f"?{names[i]} {rng.choice(predicates)} ?{names[i + 1]}"
            for i in range(hops)
        )
        variables = names[: hops + 1]
        projected = rng.sample(variables, rng.randint(1, len(variables)))
        head = " ".join(f"?{v}" for v in projected)
        distinct = "DISTINCT " if rng.random() < 0.3 else ""
        text = f"SELECT {distinct}{head} WHERE {{ {body} }}"
        ordered = rng.random() < 0.7
        if ordered:
            conditions = []
            for v in rng.sample(variables, rng.randint(1, 2)):
                conditions.append(
                    f"DESC(?{v})" if rng.random() < 0.5 else f"?{v}"
                )
            text += " ORDER BY " + " ".join(conditions)
        slice_shape = rng.randrange(5)
        if slice_shape == 1:
            text += " LIMIT 0"
        elif slice_shape == 2:
            text += f" LIMIT {rng.randint(1, 12)}"
        elif slice_shape == 3:
            text += f" OFFSET {rng.choice([1, 3, 500])}"
        elif slice_shape == 4:
            text += (
                f" OFFSET {rng.choice([0, 2, 500])}"
                f" LIMIT {rng.randint(0, 12)}"
            )
        yield text, ordered


@pytest.mark.parametrize("seed", [7, 19, 42])
def test_randomized_modifier_equivalence(seed):
    """Fuzz: the ID-native engine equals the oracle on modifier combos.

    Ordered queries must reproduce the oracle's exact row sequence; an
    unordered slice admits any distinct window, so those check subset-
    of-full-answer plus exact cardinality.
    """
    graph = random_graph(triples=220, seed=seed)
    predicates = [p.n3() for p in sorted(graph.predicates())[:4]]
    for text, ordered in random_modifier_queries(predicates, 25, seed):
        ast = parse_query(text)
        expected = reference_select(graph, ast)
        got = select(graph, text).rows
        if ordered:
            assert got == expected, text
        else:
            full = set(reference_rows(graph, ast))
            assert len(got) == len(expected), text
            assert len(set(got)) == len(got), text
            assert set(got) <= full, text
