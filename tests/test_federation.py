"""Federated execution: strategy equivalence and message accounting."""

import pytest

from repro.errors import FederationError
from repro.federation import (
    ADAPTIVE,
    FIXED_STRATEGIES,
    STRATEGIES,
    FederatedExecutor,
    NetworkModel,
    NetworkStats,
    execute_federated,
)
from repro.federation.bindings import hash_join as _hash_join
from repro.gpq.evaluation import evaluate_query_star
from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.rdf.triples import Triple
from repro.peers.system import RPS
from repro.workload.federation import federated_path_query, federated_rps
from repro.workload.topologies import peer_namespace


@pytest.fixture(scope="module")
def three_peer_system():
    return federated_rps(peers=3, entities=20, facts=60, seed=7)


@pytest.fixture(scope="module")
def path_query():
    return federated_path_query(hops=2)


@pytest.fixture(scope="module")
def expected_rows(three_peer_system, path_query):
    return evaluate_query_star(
        three_peer_system.stored_database(), path_query
    )


# ---------------------------------------------------------------------------
# Strategy equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_each_strategy_matches_single_graph_executor(
    three_peer_system, path_query, expected_rows, strategy
):
    result = execute_federated(three_peer_system, path_query, strategy)
    assert result.rows == expected_rows
    assert result.strategy == strategy
    assert result.stats.messages > 0


def test_run_all_strategies_asserts_equality(
    three_peer_system, path_query, expected_rows
):
    executor = FederatedExecutor(three_peer_system)
    results = executor.run_all_strategies(path_query)
    assert set(results) == set(STRATEGIES)
    for result in results.values():
        assert result.rows == expected_rows


def test_three_hop_query_across_all_peers(three_peer_system):
    query = federated_path_query(hops=3)
    expected = evaluate_query_star(
        three_peer_system.stored_database(), query
    )
    executor = FederatedExecutor(three_peer_system)
    for strategy in STRATEGIES:
        assert executor.execute(query, strategy).rows == expected


def test_sparql_text_queries_are_accepted(three_peer_system):
    p0 = peer_namespace(0).knows.n3()
    result = execute_federated(
        three_peer_system,
        f"SELECT ?x ?y WHERE {{ ?x {p0} ?y }}",
        strategy="bound",
    )
    expected = evaluate_query_star(
        three_peer_system.stored_database(),
        GraphPatternQuery(
            (Variable("x"), Variable("y")),
            make_pattern((Variable("x"), peer_namespace(0).knows,
                          Variable("y"))),
        ),
    )
    assert result.rows == expected


def test_batch_size_does_not_change_results(
    three_peer_system, path_query, expected_rows
):
    for batch_size in (1, 3, 1000):
        result = execute_federated(
            three_peer_system, path_query, "bound", batch_size=batch_size
        )
        assert result.rows == expected_rows


def test_empty_answer_query(three_peer_system):
    # A predicate nobody holds: naive still ships it everywhere, bound
    # and adaptive stop before sending anything; all agree on emptiness.
    x, y = Variable("x"), Variable("y")
    query = GraphPatternQuery(
        (x, y), make_pattern((x, peer_namespace(9).knows, y))
    )
    naive = execute_federated(three_peer_system, query, "naive")
    bound = execute_federated(three_peer_system, query, "bound")
    adaptive = execute_federated(three_peer_system, query, ADAPTIVE)
    assert naive.rows == bound.rows == adaptive.rows == set()
    assert naive.stats.messages == 3  # one per peer
    assert bound.stats.messages == 0  # no relevant source
    assert adaptive.stats.messages == 0  # zero-count sources cost nothing


# ---------------------------------------------------------------------------
# The hash join under heterogeneous binding domains
# ---------------------------------------------------------------------------


def _reference_join(left, right):
    """Oracle: compatible-merge nested loop (the paper's omega-join)."""
    out = []
    for lhs in left:
        for rhs in right:
            if all(lhs.get(v, tid) == tid for v, tid in rhs.items()):
                out.append({**lhs, **rhs})
    return out


def _canonical_rows(rows):
    return sorted(
        tuple(sorted((v.name, tid) for v, tid in row.items())) for row in rows
    )


def test_hash_join_heterogeneous_domains_regression():
    # The old implementation read the shared variables off the *first*
    # row of each side; with mixed domains (possible once endpoints
    # return partially-bound rows under pushdown) it degenerated to a
    # cross product that even merged conflicting values silently.
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    left = [{x: 1}, {x: 1, y: 2}, {y: 3}]
    right = [{y: 2}, {x: 1, z: 5}, {x: 2, y: 3}]
    assert _canonical_rows(_hash_join(left, right)) == _canonical_rows(
        _reference_join(left, right)
    )
    # The first-domain pair shares nothing, so the old code joined the
    # whole input as a cross product: 9 merged rows, some inconsistent.
    assert len(_hash_join(left, right)) == len(_reference_join(left, right))


def test_hash_join_homogeneous_domains_unchanged():
    x, y = Variable("x"), Variable("y")
    left = [{x: 1}, {x: 2}]
    right = [{x: 1, y: 10}, {x: 1, y: 11}, {x: 3, y: 12}]
    assert _canonical_rows(_hash_join(left, right)) == _canonical_rows(
        _reference_join(left, right)
    )


def test_hash_join_randomized_against_reference():
    import random

    variables = [Variable(name) for name in "abcd"]
    rng = random.Random(5)
    for _ in range(50):
        def rows():
            out = []
            for _ in range(rng.randint(0, 6)):
                domain = rng.sample(variables, rng.randint(1, 4))
                out.append({v: rng.randint(1, 3) for v in domain})
            return out

        left, right = rows(), rows()
        expected = _canonical_rows(_reference_join(left, right))
        assert _canonical_rows(_hash_join(left, right)) == expected


# ---------------------------------------------------------------------------
# Message accounting
# ---------------------------------------------------------------------------


def test_bound_ships_strictly_fewer_messages_than_naive(
    three_peer_system, path_query
):
    executor = FederatedExecutor(three_peer_system)
    results = executor.run_all_strategies(path_query)
    naive, bound = results["naive"].stats, results["bound"].stats
    assert bound.messages < naive.messages
    # Naive ships every pattern to every peer.
    assert naive.messages == 2 * 3


def test_batching_splits_messages_deterministically(
    three_peer_system, path_query
):
    small = execute_federated(
        three_peer_system, path_query, "bound", batch_size=10
    )
    large = execute_federated(
        three_peer_system, path_query, "bound", batch_size=1000
    )
    assert small.stats.messages > large.stats.messages
    # Re-running is exactly reproducible.
    again = execute_federated(
        three_peer_system, path_query, "bound", batch_size=10
    )
    assert again.stats.messages == small.stats.messages
    assert (
        again.stats.solutions_transferred == small.stats.solutions_transferred
    )


def test_collect_dumps_every_triple_once(three_peer_system, path_query):
    result = execute_federated(three_peer_system, path_query, "collect")
    assert result.stats.messages == 3
    assert result.stats.triples_transferred == sum(
        len(peer.graph) for peer in three_peer_system.peers.values()
    )


def test_network_model_charges_latency_and_volume():
    model = NetworkModel(
        latency_seconds=1.0, per_solution_seconds=0.5, per_triple_seconds=0.25
    )
    stats = NetworkStats()
    model.charge_query(stats, "p0", solutions=4)
    model.charge_dump(stats, "p1", triples=8)
    assert stats.messages == 2
    assert stats.solutions_transferred == 4
    assert stats.triples_transferred == 8
    assert stats.busy_seconds == pytest.approx(1 + 4 * 0.5 + 1 + 8 * 0.25)
    assert stats.per_endpoint_messages == {"p0": 1, "p1": 1}


def test_stats_merge_accumulates():
    first, second = NetworkStats(), NetworkStats()
    model = NetworkModel()
    model.charge_query(first, "a", 2)
    model.charge_query(second, "a", 3)
    model.charge_query(second, "b", 1)
    first.merge(second)
    assert first.messages == 3
    assert first.solutions_transferred == 6
    assert first.per_endpoint_messages == {"a": 2, "b": 1}


def test_custom_network_model_scales_simulated_time(
    three_peer_system, path_query
):
    slow = execute_federated(
        three_peer_system, path_query, "naive",
        network=NetworkModel(latency_seconds=1.0),
    )
    fast = execute_federated(
        three_peer_system, path_query, "naive",
        network=NetworkModel(latency_seconds=0.001),
    )
    assert slow.stats.messages == fast.stats.messages
    assert slow.stats.busy_seconds > fast.stats.busy_seconds


# ---------------------------------------------------------------------------
# Validation errors
# ---------------------------------------------------------------------------


def test_unknown_strategy_is_rejected(three_peer_system, path_query):
    with pytest.raises(FederationError, match="unknown strategy"):
        execute_federated(three_peer_system, path_query, "psychic")


def test_empty_system_is_rejected():
    with pytest.raises(FederationError, match="empty peer system"):
        FederatedExecutor(RPS([]))


def test_bad_batch_size_is_rejected(three_peer_system):
    with pytest.raises(FederationError, match="batch_size"):
        FederatedExecutor(three_peer_system, batch_size=0)


def test_mixed_dictionaries_are_rejected():
    ns = peer_namespace(0)
    private = TermDictionary()
    shared_graph = Graph([Triple(ns.term("a"), ns.knows, ns.term("b"))])
    private_graph = Graph(dictionary=private)
    private_graph.add(Triple(ns.term("c"), ns.knows, ns.term("d")))
    system = RPS.from_graphs({"p0": shared_graph, "p1": private_graph})
    with pytest.raises(FederationError, match="share one dictionary"):
        FederatedExecutor(system)
