"""GPQ <-> SPARQL bridge: round-trips and unsupported-feature errors."""

import pytest

from repro.errors import UnsupportedSparqlError
from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.namespaces import Namespace, NamespaceManager
from repro.rdf.terms import Variable
from repro.sparql.bridge import (
    gpq_to_sparql,
    sparql_to_gpq,
    sparql_union_to_gpqs,
)
from repro.sparql.parser import parse_query
from repro.workload.generators import random_graph
from repro.workload.queries import random_queries

EX = Namespace("http://example.org/")


def roundtrip(gpq):
    return sparql_to_gpq(gpq_to_sparql(gpq))


def queries_equal(left, right):
    return left.head == right.head and set(left.conjuncts()) == set(
        right.conjuncts()
    )


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------


def test_select_round_trip():
    x, y = Variable("x"), Variable("y")
    gpq = GraphPatternQuery(
        (x, y), make_pattern((x, EX.term("p"), y), (y, EX.term("q"), x))
    )
    assert queries_equal(roundtrip(gpq), gpq)


def test_ask_round_trip():
    x = Variable("x")
    gpq = GraphPatternQuery((), make_pattern((x, EX.term("p"), x)))
    text = gpq_to_sparql(gpq)
    assert text.startswith("ASK")
    assert queries_equal(sparql_to_gpq(text), gpq)


def test_round_trip_with_namespace_manager():
    nsm = NamespaceManager()
    nsm.bind("ex", "http://example.org/")
    x, y = Variable("x"), Variable("y")
    gpq = GraphPatternQuery((x,), make_pattern((x, EX.term("p"), y)))
    text = gpq_to_sparql(gpq, nsm)
    assert "ex:p" in text
    assert queries_equal(sparql_to_gpq(text), gpq)


@pytest.mark.parametrize("seed", [4, 13, 29])
def test_randomized_round_trips(seed):
    graph = random_graph(triples=150, seed=seed)
    predicates = sorted(graph.predicates())
    for gpq in random_queries(predicates, count=15, max_length=4, seed=seed):
        back = roundtrip(gpq)
        assert queries_equal(back, gpq), gpq_to_sparql(gpq)


def test_rendered_text_parses_as_select_or_ask():
    x = Variable("x")
    select_q = GraphPatternQuery((x,), make_pattern((x, EX.term("p"), x)))
    ask_q = GraphPatternQuery((), make_pattern((x, EX.term("p"), x)))
    assert parse_query(gpq_to_sparql(select_q)).__class__.__name__ == "SelectQuery"
    assert parse_query(gpq_to_sparql(ask_q)).__class__.__name__ == "AskQuery"


# ---------------------------------------------------------------------------
# UNION translation
# ---------------------------------------------------------------------------


def test_union_of_bgps_becomes_gpq_list():
    text = (
        "SELECT ?x WHERE { { ?x <http://example.org/p> ?y } UNION "
        "{ ?x <http://example.org/q> ?y } }"
    )
    gpqs = sparql_union_to_gpqs(text)
    assert len(gpqs) == 2
    assert all(q.head == (Variable("x"),) for q in gpqs)


def test_union_alternative_missing_head_variable_narrows_head():
    text = (
        "SELECT ?x ?z WHERE { { ?x <http://example.org/p> ?z } UNION "
        "{ ?x <http://example.org/q> ?y } }"
    )
    first, second = sparql_union_to_gpqs(text)
    assert first.head == (Variable("x"), Variable("z"))
    assert second.head == (Variable("x"),)


def test_plain_bgp_query_translates_to_single_gpq():
    gpqs = sparql_union_to_gpqs(
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y }"
    )
    assert len(gpqs) == 1


# ---------------------------------------------------------------------------
# Unsupported structures
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "text",
    [
        # UNION cannot become a single GPQ.
        "SELECT ?x WHERE { { ?x <http://example.org/p> ?y } UNION "
        "{ ?x <http://example.org/q> ?y } }",
        # FILTER has no GPQ equivalent.
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y . FILTER(?x != ?y) }",
        # Solution modifiers have no GPQ equivalent.
        "SELECT ?x WHERE { ?x <http://example.org/p> ?y } LIMIT 3",
        # Empty WHERE clause.
        "SELECT ?x WHERE { }",
    ],
)
def test_sparql_to_gpq_rejects_non_conjunctive(text):
    with pytest.raises(UnsupportedSparqlError):
        sparql_to_gpq(text)


def test_union_translator_rejects_filter_inside_alternative():
    text = (
        "SELECT ?x WHERE { { ?x <http://example.org/p> ?y . "
        "FILTER(?x != ?y) } UNION { ?x <http://example.org/q> ?y } }"
    )
    with pytest.raises(UnsupportedSparqlError):
        sparql_union_to_gpqs(text)
