"""Multi-tenant concurrency: disciplines, admission, AIMD, determinism."""

import pytest

from repro.errors import FederationError, SimulationError
from repro.federation.executor import FederatedExecutor
from repro.federation.network import NetworkModel
from repro.obs import Tracer, chrome_trace_events, validate_trace_events
from repro.runtime import (
    AimdController,
    AimdSettings,
    Channel,
    ChannelStats,
    FifoDiscipline,
    QueryScheduler,
    Request,
    SimKernel,
    WeightedRoundRobinDiscipline,
    make_discipline,
)
from repro.workload import (
    federated_rps,
    federated_selective_query,
    skewed_tenant_workload,
    tenant_workload,
)

BOUND_CONTROL = AimdSettings(epoch=3, start_window=2, max_window=16)


@pytest.fixture(scope="module")
def system():
    return federated_rps(peers=3, entities=20, facts=120, seed=7)


def make_executor(system):
    """A fresh single-lane executor in the bursty bound-join regime."""
    network = NetworkModel(
        latency_seconds=0.01,
        per_solution_seconds=0.01,
        per_triple_seconds=0.05,
    )
    return FederatedExecutor(system, network, batch_size=1, concurrency=1)


# ---------------------------------------------------------------------------
# ChannelStats accessors
# ---------------------------------------------------------------------------


def test_channel_stats_accessors_empty():
    stats = ChannelStats()
    assert stats.queueing_delay() == 0.0
    assert stats.mean_service_seconds() == 0.0
    assert stats.service_time_variance() == 0.0


def test_channel_stats_accessors():
    stats = ChannelStats(
        completed=4,
        busy_seconds=8.0,
        busy_seconds_sq=20.0,
        wait_seconds=2.0,
    )
    assert stats.queueing_delay() == pytest.approx(0.5)
    assert stats.mean_service_seconds() == pytest.approx(2.0)
    # E[x^2] - mean^2 = 5 - 4
    assert stats.service_time_variance() == pytest.approx(1.0)


def test_channel_stats_variance_of_constant_service_is_zero():
    kernel = SimKernel()
    channel = Channel(kernel, "ep", concurrency=1)
    for _ in range(3):
        channel.submit(Request(duration=2.0))
    kernel.run()
    assert channel.stats.completed == 3
    assert channel.stats.mean_service_seconds() == pytest.approx(2.0)
    assert channel.stats.service_time_variance() == pytest.approx(0.0)
    # Single lane: the second and third requests queued 2s and 4s.
    assert channel.stats.queueing_delay() == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Queue disciplines
# ---------------------------------------------------------------------------


def test_fifo_discipline_preserves_arrival_order():
    fifo = FifoDiscipline()
    for tag in ("a", "b", "c"):
        fifo.push(Request(duration=1.0, label=tag))
    assert len(fifo) == 3
    assert [fifo.pop().label for _ in range(3)] == ["a", "b", "c"]


def test_wrr_discipline_interleaves_by_weight():
    wrr = WeightedRoundRobinDiscipline({"a": 2, "b": 1})
    for label, tenant in (
        ("a1", "a"),
        ("a2", "a"),
        ("a3", "a"),
        ("b1", "b"),
        ("b2", "b"),
    ):
        wrr.push(Request(duration=1.0, label=label, tenant=tenant))
    popped = [wrr.pop().label for _ in range(5)]
    assert popped == ["a1", "a2", "b1", "a3", "b2"]


def test_wrr_discipline_rejects_bad_weight_and_empty_pop():
    with pytest.raises(SimulationError):
        WeightedRoundRobinDiscipline({"a": 0})
    with pytest.raises(SimulationError):
        WeightedRoundRobinDiscipline().pop()


def test_make_discipline():
    assert isinstance(make_discipline("fifo"), FifoDiscipline)
    assert isinstance(make_discipline("wrr"), WeightedRoundRobinDiscipline)
    with pytest.raises(SimulationError):
        make_discipline("priority")


# ---------------------------------------------------------------------------
# Window retuning
# ---------------------------------------------------------------------------


def test_set_window_growth_admits_backlog_immediately():
    kernel = SimKernel()
    channel = Channel(kernel, "ep", concurrency=1, max_in_flight=1)
    for _ in range(3):
        channel.submit(Request(duration=1.0))
    assert channel.in_flight == 1
    assert len(channel._backlog) == 2
    channel.set_window(3)
    assert channel.in_flight == 3
    assert len(channel._backlog) == 0
    assert kernel.run() == 3.0  # still one service lane


def test_set_window_below_concurrency_rejected():
    kernel = SimKernel()
    channel = Channel(kernel, "ep", concurrency=2, max_in_flight=4)
    with pytest.raises(SimulationError):
        channel.set_window(1)


# ---------------------------------------------------------------------------
# AIMD controller
# ---------------------------------------------------------------------------


def test_aimd_settings_validated():
    with pytest.raises(SimulationError):
        AimdSettings(epoch=0)
    with pytest.raises(SimulationError):
        AimdSettings(decrease=1.0)
    with pytest.raises(SimulationError):
        AimdSettings(increase=0)
    with pytest.raises(SimulationError):
        AimdSettings(start_window=8, max_window=4)


def test_aimd_controller_grows_then_shrinks_under_queueing():
    settings = AimdSettings(epoch=2, start_window=2, max_window=8)
    controller = AimdController(settings)
    kernel = SimKernel()
    channel = Channel(
        kernel,
        "ep",
        concurrency=1,
        max_in_flight=controller.initial_window(1),
        observer=controller.observe,
    )
    for _ in range(8):
        channel.submit(Request(duration=1.0))
    kernel.run()
    adjustments = controller.adjustments
    assert adjustments, "no epoch boundary adjusted the window"
    # The first epoch barely queues (delay 0.5 < service 1.0): calm,
    # additive growth from the start window.
    first = adjustments[0]
    assert (first.before, first.after, first.congested) == (2, 4, False)
    # A single lane cannot drain the widened window: queueing delay
    # overtakes service time and the controller backs off.
    assert any(adj.congested and adj.after < adj.before for adj in adjustments)
    assert all(1 <= adj.after <= 8 for adj in adjustments)


def test_aimd_recommend_batch():
    controller = AimdController(AimdSettings(batch_min=2, batch_max=32))
    saturated = {"ep": ChannelStats(completed=4, wait_seconds=8.0,
                                    busy_seconds=4.0)}
    idle = {"ep": ChannelStats(completed=4, wait_seconds=0.1,
                               busy_seconds=4.0)}
    steady = {"ep": ChannelStats(completed=4, wait_seconds=2.0,
                                 busy_seconds=4.0)}
    assert controller.recommend_batch(saturated, 8) == 16
    assert controller.recommend_batch(saturated, 32) == 32  # clamped
    assert controller.recommend_batch(idle, 8) == 4
    assert controller.recommend_batch(idle, 2) == 2  # clamped
    assert controller.recommend_batch(steady, 8) == 8
    assert controller.recommend_batch({}, 8) == 8


# ---------------------------------------------------------------------------
# QueryScheduler: shared-kernel replay
# ---------------------------------------------------------------------------


def test_query_scheduler_rejects_bad_configuration():
    with pytest.raises(SimulationError):
        QueryScheduler(concurrency=0)
    with pytest.raises(SimulationError):
        QueryScheduler(concurrency=2, max_in_flight=1)
    with pytest.raises(SimulationError):
        QueryScheduler(max_active=0)
    with pytest.raises(SimulationError):
        QueryScheduler(discipline="priority")
    scheduler = QueryScheduler()
    scheduler.tenant("a")
    with pytest.raises(SimulationError):
        scheduler.tenant("a")
    with pytest.raises(SimulationError):
        scheduler.tenant("b", weight=0)


def test_query_scheduler_forbids_cross_tenant_dependencies():
    scheduler = QueryScheduler()
    alice = scheduler.tenant("alice")
    bob = scheduler.tenant("bob")
    handle = alice.submit("ep", 1.0)
    with pytest.raises(SimulationError):
        bob.submit("ep", 1.0, after=[handle])


def test_query_scheduler_contends_on_shared_channels():
    scheduler = QueryScheduler(concurrency=1)
    alice = scheduler.tenant("alice")
    bob = scheduler.tenant("bob")
    alice.submit("ep", 2.0)
    bob.submit("ep", 1.0)
    # One lane: alice (registered first) serves 0-2, bob 2-3.
    assert scheduler.run() == 3.0
    assert alice.makespan() == 2.0
    assert bob.makespan() == 3.0
    stats = scheduler.channel_stats()["ep"]
    assert stats.completed == 2
    assert bob.channel_stats()["ep"].wait_seconds == pytest.approx(2.0)


def test_admission_cap_staggers_queries():
    scheduler = QueryScheduler(concurrency=4, max_active=1)
    alice = scheduler.tenant("alice")
    bob = scheduler.tenant("bob")
    alice.submit("ep", 2.0)
    bob.submit("ep", 1.0)
    assert scheduler.run() == 3.0
    assert scheduler.active_peak == 1
    assert scheduler.admission_wait("alice") == 0.0
    # Bob only activates when alice's last request completes.
    assert scheduler.admission_wait("bob") == 2.0
    assert bob.makespan() == 3.0


def test_query_scheduler_determinism_fuzz(system):
    """Satellite: N concurrent queries x 5 seeds, byte-identical replays."""

    def run_once(seed):
        executor = make_executor(system)
        workload = tenant_workload(4, seed=seed)
        result = executor.execute_concurrent(
            [(t.tenant, t.query) for t in workload],
            strategy="bound",
            discipline="wrr",
            max_in_flight=2,
        )
        return (
            tuple(
                (
                    o.tenant,
                    tuple(sorted(repr(row) for row in o.result.rows)),
                    o.makespan,
                    o.admission_wait,
                    o.result.stats.messages,
                    o.result.stats.elapsed_seconds,
                    tuple(
                        (name, repr(stats))
                        for name, stats in sorted(
                            o.result.channels.items()
                        )
                    ),
                )
                for o in result.outcomes
            ),
            result.makespan,
            tuple(
                (name, repr(stats))
                for name, stats in sorted(result.channels.items())
            ),
        )

    for seed in range(5):
        assert run_once(seed) == run_once(seed), f"seed {seed} diverged"


# ---------------------------------------------------------------------------
# execute_concurrent
# ---------------------------------------------------------------------------


def test_concurrent_answers_match_solo_execution(system):
    workload = skewed_tenant_workload(light=3, seed=5)
    solos = {
        t.tenant: make_executor(system).execute(t.query, "bound").rows
        for t in workload
    }
    for discipline in ("fifo", "wrr"):
        result = make_executor(system).execute_concurrent(
            [(t.tenant, t.query) for t in workload],
            strategy="bound",
            discipline=discipline,
            max_in_flight=2,
        )
        assert result.discipline == discipline
        for outcome in result.outcomes:
            assert outcome.result.rows == solos[outcome.tenant]
        assert result.makespan == max(result.makespans())
        assert result.p95_makespan() <= result.makespan
        assert result.throughput() > 0.0
        assert result.fairness_ratio() >= 1.0


def test_concurrent_rejects_bad_inputs(system):
    executor = make_executor(system)
    query = federated_selective_query(entity=1, hops=2)
    with pytest.raises(FederationError):
        executor.execute_concurrent({})
    with pytest.raises(FederationError):
        executor.execute_concurrent({"": query})
    with pytest.raises(FederationError):
        executor.execute_concurrent({"a": query}, strategy="collect")
    result = executor.execute_concurrent({"a": query}, strategy="bound")
    with pytest.raises(FederationError):
        result.tenant("nope")
    assert result.tenant("a").tenant == "a"


def test_admission_cap_through_executor(system):
    workload = tenant_workload(3, seed=11)
    result = make_executor(system).execute_concurrent(
        [(t.tenant, t.query) for t in workload],
        strategy="bound",
        max_active=1,
    )
    assert result.active_peak == 1
    waits = [o.admission_wait for o in result.outcomes]
    assert waits[0] == 0.0
    assert all(b > a for a, b in zip(waits, waits[1:]))


def test_adaptive_control_adjusts_and_preserves_answers(system):
    workload = tenant_workload(2, seed=11)
    queries = [(t.tenant, t.query) for t in workload]
    solos = {
        t.tenant: make_executor(system).execute(t.query, "bound").rows
        for t in workload
    }
    result = make_executor(system).execute_concurrent(
        queries,
        strategy="bound",
        discipline="wrr",
        adaptive=True,
        control=BOUND_CONTROL,
    )
    assert result.adjustments, "the controller never touched a window"
    for adjustment in result.adjustments:
        assert 1 <= adjustment.after <= BOUND_CONTROL.max_window
    assert result.rounds == 2  # batch re-planning ran
    assert result.batch_size == 2
    for outcome in result.outcomes:
        assert outcome.result.rows == solos[outcome.tenant]


def test_concurrent_metrics_registry(system):
    workload = tenant_workload(2, seed=11)
    result = make_executor(system).execute_concurrent(
        [(t.tenant, t.query) for t in workload],
        strategy="bound",
        adaptive=True,
        control=BOUND_CONTROL,
    )
    rendered = result.metrics().render()
    text = "\n".join(rendered)
    assert f"admission.queries={len(result.outcomes)}" in text
    assert f"controller.adjustments={len(result.adjustments)}" in text
    assert "channel.peer1.completed" in text
    assert "channel.peer1.queueing_delay" in text


def test_prepared_plan_reused_across_tenants(system, monkeypatch):
    """Satellite: one normalisation per distinct query, however many
    tenants submit it."""
    calls = []
    original = FederatedExecutor._normalize

    def counting(self, query, nsm):
        calls.append(query)
        return original(self, query, nsm)

    monkeypatch.setattr(FederatedExecutor, "_normalize", counting)
    executor = make_executor(system)
    query = federated_selective_query(entity=1, hops=2)
    result = executor.execute_concurrent(
        {"a": query, "b": query, "c": query}, strategy="bound"
    )
    assert len(result.outcomes) == 3
    assert len(calls) == 1
    # A pre-prepared query skips normalisation entirely.
    prepared = executor.prepare(query)
    calls.clear()
    executor.execute_concurrent(
        [("a", prepared), ("b", prepared)], strategy="bound"
    )
    assert calls == []


# ---------------------------------------------------------------------------
# Trace export
# ---------------------------------------------------------------------------


def test_concurrent_trace_has_tenant_lanes_and_controller_spans(system):
    workload = tenant_workload(2, seed=11)
    tracer = Tracer()
    result = make_executor(system).execute_concurrent(
        [(t.tenant, t.query) for t in workload],
        strategy="bound",
        discipline="wrr",
        adaptive=True,
        control=BOUND_CONTROL,
        tracer=tracer,
    )
    assert result.adjustments
    document = chrome_trace_events(tracer, domain="virtual")
    assert validate_trace_events(document) == []
    events = document["traceEvents"]
    tenant_tid = {}
    for event in events:
        if event["name"].startswith("tenant:"):
            tenant_tid[event["name"].split(":", 1)[1]] = event["tid"]
    tenants = sorted({t.tenant for t in workload})
    assert sorted(tenant_tid) == tenants
    assert len(set(tenant_tid.values())) == len(tenants)
    requests = [e for e in events if e["name"].startswith("request:")]
    assert requests
    assert {e["tid"] for e in requests} <= set(tenant_tid.values())
    controller_events = [
        e for e in events if e["name"].startswith("controller:")
    ]
    assert len(controller_events) == len(result.adjustments)
    for event in controller_events:
        assert event["tid"] not in tenant_tid.values()
        assert isinstance(event["args"]["window_before"], int)
        assert isinstance(event["args"]["window_after"], int)


def test_validate_trace_events_rejects_bare_controller_span():
    document = {
        "traceEvents": [
            {
                "name": "controller:peer1",
                "cat": "virtual",
                "ph": "X",
                "ts": 0,
                "dur": 10,
                "pid": 1,
                "tid": 1,
                "args": {"congested": 1},
            }
        ]
    }
    problems = validate_trace_events(document)
    assert any("window_before" in p for p in problems)
    assert any("window_after" in p for p in problems)
