"""Property-style tests for the dictionary-encoded Graph.

The central invariant: after ANY add/remove sequence, ``match()`` agrees
with a naive scan over ``iter(graph)`` for all 8 pattern shapes, and the
three ID indexes agree with the triple set.
"""

import random

import pytest

from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.workload.generators import random_graph

EX = Namespace("http://example.org/")

S, P, O = Variable("s"), Variable("p"), Variable("o")


def naive_match(graph, pattern):
    """Oracle: scan every triple and apply the pattern definition."""
    return {t for t in graph if pattern.matches(t) is not None}


def all_shape_patterns(triple):
    """The 8 ground/variable shape combinations anchored at one triple."""
    s, p, o = triple.subject, triple.predicate, triple.object
    return [
        TriplePattern(S, P, O),
        TriplePattern(s, P, O),
        TriplePattern(S, p, O),
        TriplePattern(S, P, o),
        TriplePattern(s, p, O),
        TriplePattern(s, P, o),
        TriplePattern(S, p, o),
        TriplePattern(s, p, o),
    ]


def random_mutation_graph(seed, operations=400):
    """Apply a random add/remove sequence over a small term universe."""
    rng = random.Random(seed)
    entities = [EX.term(f"e{i}") for i in range(12)]
    predicates = [EX.term(f"p{i}") for i in range(4)]
    objects = entities + [Literal(str(i)) for i in range(6)]
    graph = Graph(name=f"mut{seed}")
    for _ in range(operations):
        triple = Triple(
            rng.choice(entities), rng.choice(predicates), rng.choice(objects)
        )
        if rng.random() < 0.35:
            graph.remove(triple)
        else:
            graph.add(triple)
    return graph


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_match_agrees_with_naive_scan_all_shapes(seed):
    graph = random_mutation_graph(seed)
    assert len(graph) > 0
    rng = random.Random(seed + 100)
    anchors = rng.sample(sorted(graph.sorted_triples(), key=Triple.sort_key), 5)
    for anchor in anchors:
        for pattern in all_shape_patterns(anchor):
            assert set(graph.match(pattern)) == naive_match(graph, pattern)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_index_coherence_after_mutations(seed):
    graph = random_mutation_graph(seed)
    assert graph.check_index_coherence()
    # Removing everything must empty the indexes too.
    for triple in list(graph):
        assert graph.remove(triple)
    assert len(graph) == 0
    assert graph.check_index_coherence()
    assert not graph.subjects() and not graph.predicates() and not graph.objects()


def test_count_agrees_with_naive_scan():
    graph = random_mutation_graph(7)
    anchor = min(graph, key=Triple.sort_key)
    s, p, o = anchor.subject, anchor.predicate, anchor.object
    cases = [
        (None, None, None),
        (s, None, None),
        (None, p, None),
        (None, None, o),
        (s, p, None),
        (s, None, o),
        (None, p, o),
        (s, p, o),
    ]
    for cs, cp, co in cases:
        expected = sum(
            1
            for t in graph
            if (cs is None or t.subject == cs)
            and (cp is None or t.predicate == cp)
            and (co is None or t.object == co)
        )
        assert graph.count(cs, cp, co) == expected


def test_add_remove_report_membership_change():
    graph = Graph()
    t = Triple(EX.term("a"), EX.term("p"), EX.term("b"))
    assert graph.add(t) is True
    assert graph.add(t) is False
    assert t in graph
    assert graph.remove(t) is True
    assert graph.remove(t) is False
    assert t not in graph


def test_remove_of_never_interned_triple_is_noop():
    graph = Graph([Triple(EX.term("a"), EX.term("p"), EX.term("b"))])
    foreign = Triple(
        EX.term("never-stored-subject-xyzzy"),
        EX.term("never-stored-predicate-xyzzy"),
        EX.term("never-stored-object-xyzzy"),
    )
    assert foreign not in graph
    assert graph.remove(foreign) is False
    assert len(graph) == 1


def test_repeated_variable_pattern_only_matches_equal_positions():
    a, p = EX.term("a"), EX.term("p")
    graph = Graph([Triple(a, p, EX.term("b")), Triple(a, p, a)])
    x = Variable("x")
    assert set(graph.match(TriplePattern(x, p, x))) == {Triple(a, p, a)}


def test_literal_subject_pattern_matches_nothing():
    graph = Graph([Triple(EX.term("a"), EX.term("p"), Literal("5"))])
    assert list(graph.match(TriplePattern(Literal("5"), P, O))) == []


def test_set_algebra_matches_python_sets():
    g1 = random_graph(triples=80, seed=1)
    g2 = random_graph(triples=80, seed=2)
    s1, s2 = set(g1), set(g2)
    assert set(g1 | g2) == s1 | s2
    assert set(g1 & g2) == s1 & s2
    assert set(g1 - g2) == s1 - s2
    assert g1.issubset(g1 | g2)
    assert not (g1 | g2).issubset(g1) or s2 <= s1


def test_set_algebra_across_distinct_dictionaries():
    from repro.rdf.dictionary import TermDictionary

    triples = [
        Triple(EX.term("a"), EX.term("p"), EX.term("b")),
        Triple(EX.term("b"), EX.term("p"), EX.term("c")),
    ]
    shared = Graph(triples)
    private = Graph(triples[:1], dictionary=TermDictionary())
    assert private == Graph(triples[:1])
    assert set(shared - private) == {triples[1]}
    assert set(shared & private) == {triples[0]}
    assert private.issubset(shared)


def test_copy_is_independent():
    graph = random_graph(triples=50, seed=3)
    clone = graph.copy(name="clone")
    extra = Triple(EX.term("only-in-clone"), EX.term("p"), EX.term("x"))
    clone.add(extra)
    assert extra in clone and extra not in graph
    assert clone.check_index_coherence() and graph.check_index_coherence()
    clone.remove(extra)
    assert clone == graph


def test_graph_equality_and_unhashability(medium_random_graph):
    same = Graph(medium_random_graph)
    assert same == medium_random_graph
    same.add(Triple(EX.term("zz"), EX.term("p"), EX.term("zz")))
    assert same != medium_random_graph
    with pytest.raises(TypeError):
        hash(medium_random_graph)


def test_derived_views_agree_with_scan(blanky_random_graph):
    graph = blanky_random_graph
    assert graph.subjects() == {t.subject for t in graph}
    assert graph.predicates() == {t.predicate for t in graph}
    assert graph.objects() == {t.object for t in graph}
    expected_terms = set()
    for t in graph:
        expected_terms.update(t.terms())
    assert graph.terms() == expected_terms
    assert graph.iris() | graph.blank_nodes() | graph.literals() == expected_terms


def test_predicate_histogram(medium_random_graph):
    histogram = medium_random_graph.predicate_histogram()
    for predicate, count in histogram.items():
        assert count == medium_random_graph.count(predicate=predicate)
    assert sum(histogram.values()) == len(medium_random_graph)


def test_count_pattern_agrees_with_match(medium_random_graph):
    graph = medium_random_graph
    for triple in list(graph)[:20]:
        for pattern in all_shape_patterns(triple):
            assert graph.count_pattern(pattern) == sum(
                1 for _ in graph.match(pattern)
            )


def test_count_pattern_repeated_variable_and_edge_cases():
    graph = Graph()
    x = Variable("x")
    graph.add(Triple(EX.term("a"), EX.term("p"), EX.term("a")))
    graph.add(Triple(EX.term("a"), EX.term("p"), EX.term("b")))
    # Repeated variable: only the reflexive triple counts.
    assert graph.count_pattern(TriplePattern(x, EX.term("p"), x)) == 1
    # Literal subject can never match.
    assert graph.count_pattern(TriplePattern(Literal("a"), P, O)) == 0
    # Uninterned ground term counts zero without touching indexes.
    assert graph.count_pattern(TriplePattern(EX.term("ghost"), P, O)) == 0


def test_add_id_triples_bulk_and_dictionary_guard():
    source = Graph([Triple(EX.term("a"), EX.term("p"), EX.term("b"))])
    sink = Graph(dictionary=source.dictionary)
    ids = list(source.triples_ids())
    assert sink.add_id_triples(ids, source.dictionary) == 1
    assert sink.add_id_triples(ids, source.dictionary) == 0  # idempotent
    assert set(sink) == set(source)
    from repro.rdf.dictionary import TermDictionary

    with pytest.raises(ValueError, match="own dictionary"):
        sink.add_id_triples(ids, TermDictionary())
