"""Tests for the TGD chase and certain-answer computation.

Covers: restricted-chase termination and output on an acyclic dependency
set, the non-termination guard, and the hand-computed certain answers of
the 3-peer chain fixture (Algorithm 1 + ``Q_D`` semantics).
"""

import pytest

from repro.errors import ChaseNonTerminationError
from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.peers.certain_answers import certain_answers, certain_answers_report, certain_ask
from repro.peers.chase import chase_universal_solution
from repro.rdf.terms import BlankNode, Variable
from repro.tgd.atoms import (
    Atom,
    Constant,
    Instance,
    RelVar,
    reset_null_counter,
)
from repro.tgd.chase import chase, is_satisfied, violations
from repro.tgd.dependencies import TGD

X, Y = Variable("x"), Variable("y")


@pytest.fixture(autouse=True)
def _fresh_nulls():
    reset_null_counter()
    yield


def rel_vars(*names):
    return tuple(RelVar(n) for n in names)


class TestRelationalChase:
    def test_acyclic_tgds_terminate_with_expected_facts(self):
        x, y, z = rel_vars("x", "y", "z")
        tgds = [
            TGD([Atom("r", x, y)], [Atom("s", y, z)], label="r-to-s"),
            TGD([Atom("s", x, y)], [Atom("t", x, y)], label="s-to-t"),
        ]
        a, b = Constant("a"), Constant("b")
        instance = Instance([Atom("r", a, b)])
        result = chase(instance, tgds)
        assert all(is_satisfied(tgd, result.instance) for tgd in tgds)
        assert violations(tgds, result.instance) == []
        # One null minted for z; s(b, null) and t(b, null) derived.
        assert result.nulls_created == 1
        assert result.facts_added == 2
        null = next(iter(result.instance.nulls()))
        assert Atom("s", b, null) in result.instance
        assert Atom("t", b, null) in result.instance
        # The original instance was not mutated (in_place defaults False).
        assert len(instance) == 1

    def test_full_tgd_transitive_closure(self):
        x, y, z = rel_vars("x", "y", "z")
        transitivity = TGD(
            [Atom("edge", x, y), Atom("edge", y, z)], [Atom("edge", x, z)]
        )
        nodes = [Constant(c) for c in "abcd"]
        instance = Instance(
            Atom("edge", nodes[i], nodes[i + 1]) for i in range(3)
        )
        result = chase(instance, [transitivity], in_place=True)
        assert result.instance is instance
        # Closure of a 4-node path has 3+2+1 edges.
        assert len(instance) == 6
        assert result.nulls_created == 0
        assert is_satisfied(transitivity, instance)

    def test_non_terminating_chase_hits_step_budget(self):
        x, y = rel_vars("x", "y")
        # person(x) -> ∃y parent(x, y) ∧ person(y): each null spawns another.
        grower = TGD(
            [Atom("person", x)], [Atom("parent", x, y), Atom("person", y)]
        )
        instance = Instance([Atom("person", Constant("eve"))])
        with pytest.raises(ChaseNonTerminationError):
            chase(instance, [grower], max_steps=50)

    def test_satisfied_tgd_never_fires(self):
        x, y = rel_vars("x", "y")
        tgd = TGD([Atom("r", x, y)], [Atom("s", x, y)])
        instance = Instance(
            [Atom("r", Constant("a"), Constant("b")),
             Atom("s", Constant("a"), Constant("b"))]
        )
        result = chase(instance, [tgd])
        assert result.fired == 0
        assert result.facts_added == 0


class TestThreePeerCertainAnswers:
    """Hand-derived expectations for the conftest 3-peer chain.

    Stored: a k0 b, b k0 c (peer0); d k1 e (peer1); f k2 g (peer2).
    Assertions: k0 ⇝ k1, k1 ⇝ k2.  Equivalence: a ≡ d.
    The chase closure therefore contains, at the k2 level:
    translated peer0 facts (a k2 b, b k2 c), the translated peer1 fact
    (d k2 e), peer2's own (f k2 g), plus the equivalence copies
    (d k2 b) — d gets a's contexts — and (a k2 e) — a gets d's.
    """

    def expected_k2(self, t):
        return {
            (t["a"], t["b"]),
            (t["b"], t["c"]),
            (t["d"], t["e"]),
            (t["f"], t["g"]),
            (t["d"], t["b"]),
            (t["a"], t["e"]),
        }

    def query_k2(self, t):
        return GraphPatternQuery((X, Y), make_pattern((X, t["knows"][2], Y)))

    def test_certain_answers_match_hand_derivation(self, three_peer_chain):
        rps, t = three_peer_chain
        assert certain_answers(rps, self.query_k2(t)) == self.expected_k2(t)

    def test_universal_solution_statistics(self, three_peer_chain):
        rps, t = three_peer_chain
        report = certain_answers_report(rps, self.query_k2(t))
        assert report.answers == self.expected_k2(t)
        chase_stats = report.chase
        assert chase_stats.stored_triples == 4
        assert chase_stats.blank_nodes_created == 0  # no existentials here
        assert chase_stats.rounds >= 2
        assert len(report.universal_solution) > chase_stats.stored_triples

    def test_solution_reuse_skips_rechase(self, three_peer_chain):
        rps, t = three_peer_chain
        solution = chase_universal_solution(rps).solution
        answers = certain_answers(rps, self.query_k2(t), solution=solution)
        assert answers == self.expected_k2(t)

    def test_certain_ask(self, three_peer_chain):
        rps, t = three_peer_chain
        k2 = t["knows"][2]
        assert certain_ask(
            rps, GraphPatternQuery((), make_pattern((t["a"], k2, t["b"])))
        )
        assert not certain_ask(
            rps, GraphPatternQuery((), make_pattern((t["c"], k2, t["a"])))
        )

    def test_existential_target_mints_dropped_blanks(self, three_peer_chain):
        """An assertion with an existential target variable creates
        labelled nulls that Q* keeps and Q (certain answers) drops."""
        from repro.peers.mappings import GraphMappingAssertion
        from repro.gpq.evaluation import evaluate_query, evaluate_query_star

        rps, t = three_peer_chain
        k2, k0 = t["knows"][2], t["knows"][0]
        z = Variable("z")
        # Everyone known at the k2 level must know someone at the k0 level.
        rps.add_assertion(
            GraphMappingAssertion(
                GraphPatternQuery((Y,), make_pattern((X, k2, Y))),
                GraphPatternQuery((Y,), make_pattern((Y, k0, z))),
                label="k2-to-k0-existential",
            )
        )
        solution = chase_universal_solution(rps).solution
        assert solution.blank_nodes(), "chase should have minted nulls"
        q = GraphPatternQuery((X, Y), make_pattern((X, k0, Y)))
        star = evaluate_query_star(solution, q)
        certain = evaluate_query(solution, q)
        assert certain < star
        assert all(
            not isinstance(term, BlankNode) for row in certain for term in row
        )
