"""Round-trip tests for the N-Triples and Turtle serialisers.

parse(serialize(G)) must equal G — on hand-built graphs exercising the
escaping edge cases in ``rdf/terms.py`` and on ``workload/`` generator
graphs (including ones with blank nodes).
"""

import pytest

from repro.errors import ParseError, TermError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace, NamespaceManager
from repro.rdf.ntriples import (
    graph_from_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.rdf.terms import (
    BlankNode,
    Literal,
    escape_literal,
    unescape_literal,
)
from repro.rdf.triples import Triple
from repro.rdf.turtle import graph_from_turtle, serialize_turtle
from repro.workload.generators import random_graph

EX = Namespace("http://example.org/")

TRICKY_LEXICALS = [
    "plain",
    'quote " inside',
    "back\\slash",
    "new\nline and\ttab and\rreturn",
    "unicode – dash … ellipsis ⊥ bottom",
    "mixed \\ \" \n end",
    "",
]


def tricky_graph():
    g = Graph(name="tricky")
    s = EX.term("s")
    p = EX.term("p")
    for i, lex in enumerate(TRICKY_LEXICALS):
        g.add(Triple(s, p, Literal(lex)))
        g.add(Triple(EX.term(f"s{i}"), p, Literal(lex, language="en-GB")))
        g.add(
            Triple(
                BlankNode(f"b{i}"),
                p,
                Literal(lex, datatype=EX.term("custom")),
            )
        )
    return g


@pytest.mark.parametrize("lexical", TRICKY_LEXICALS)
def test_escape_unescape_round_trip(lexical):
    assert unescape_literal(escape_literal(lexical)) == lexical


def test_unescape_handles_u_escapes():
    assert unescape_literal("\\u0041\\U0001F600") == "A\U0001f600"


@pytest.mark.parametrize(
    "bad", ["trailing\\", "\\u12", "\\uZZZZ", "\\q"]
)
def test_unescape_rejects_malformed_escapes(bad):
    with pytest.raises(TermError):
        unescape_literal(bad)


def test_ntriples_round_trip_tricky_literals():
    g = tricky_graph()
    text = serialize_ntriples(g)
    assert graph_from_ntriples(text) == g


def test_ntriples_round_trip_is_stable():
    g = tricky_graph()
    once = serialize_ntriples(g)
    assert serialize_ntriples(graph_from_ntriples(once)) == once


@pytest.mark.parametrize("seed,blanks", [(0, 0.0), (3, 0.25), (8, 0.5)])
def test_ntriples_round_trip_workload_graphs(seed, blanks):
    g = random_graph(triples=150, seed=seed, blank_fraction=blanks)
    assert graph_from_ntriples(serialize_ntriples(g)) == g


def test_ntriples_line_parsing_edge_cases():
    line = '<http://e.org/s> <http://e.org/p> "a\\"b\\nc"@en-GB .'
    triple = parse_ntriples_line(line)
    assert triple.object == Literal('a"b\nc', language="en-GB")
    assert parse_ntriples_line("   ") is None
    assert parse_ntriples_line("# comment only") is None
    with pytest.raises(ParseError):
        parse_ntriples_line('<http://e.org/s> <http://e.org/p> "unterminated .')
    with pytest.raises(ParseError):
        parse_ntriples_line("<http://e.org/s> <http://e.org/p> <http://e.org/o>")


def test_turtle_round_trip_tricky_literals():
    g = tricky_graph()
    text = serialize_turtle(g)
    assert graph_from_turtle(text) == g


@pytest.mark.parametrize("seed", [1, 4])
def test_turtle_round_trip_workload_graphs(seed):
    g = random_graph(triples=120, seed=seed, blank_fraction=0.2)
    nsm = NamespaceManager()
    nsm.bind("gen", "http://gen.example.org/")
    text = serialize_turtle(g, nsm)
    assert "@prefix gen:" in text
    assert graph_from_turtle(text) == g


def test_turtle_numeric_and_boolean_abbreviations():
    text = """
    @prefix ex: <http://example.org/> .
    ex:s ex:count 42 ; ex:ratio 3.25 ; ex:flag true .
    """
    g = graph_from_turtle(text)
    lexicals = {t.object.lexical for t in g}
    assert lexicals == {"42", "3.25", "true"}
    # Abbreviated literals round-trip through the serialiser too.
    assert graph_from_turtle(serialize_turtle(g)) == g


def test_cross_format_round_trip():
    g = random_graph(triples=100, seed=12, blank_fraction=0.1)
    via_turtle = graph_from_turtle(serialize_turtle(g))
    via_ntriples = graph_from_ntriples(serialize_ntriples(via_turtle))
    assert via_ntriples == g
