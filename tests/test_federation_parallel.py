"""Parallel execution mode: equivalence, makespan, exclusive groups."""

import pytest

from repro.federation import (
    ADAPTIVE,
    PARALLEL,
    FederatedExecutor,
    NetworkModel,
    NetworkStats,
)
from repro.gpq.evaluation import evaluate_query_star
from repro.sparql.parser import parse_query
from repro.sparql.algebra import translate_group
from repro.sparql.plan import select_rows
from repro.workload.federation import (
    federated_exclusive_query,
    federated_path_query,
    federated_rps,
    federated_selective_query,
    federated_union_filter_sparql,
)


@pytest.fixture(scope="module")
def system():
    return federated_rps(peers=3, entities=20, facts=60, seed=7)


def _single_graph(system, query):
    union = system.stored_database()
    if isinstance(query, str):
        ast = parse_query(query)
        return select_rows(
            union, translate_group(ast.where), ast.projected()
        )
    return evaluate_query_star(union, query)


WORKLOADS = {
    "path2": federated_path_query(hops=2),
    "path3": federated_path_query(hops=3),
    "selective": federated_selective_query(entity=3, hops=2),
    "union_filter": federated_union_filter_sparql(),
    "exclusive": federated_exclusive_query(hops=1),
}


# ---------------------------------------------------------------------------
# Answer-set equivalence and the makespan invariant
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_parallel_matches_serial_and_single_graph(system, name):
    query = WORKLOADS[name]
    executor = FederatedExecutor(system)
    expected = _single_graph(system, query)
    serial = executor.execute(query, ADAPTIVE)
    parallel = executor.execute(query, PARALLEL)
    assert serial.rows == expected
    assert parallel.rows == expected


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_parallel_makespan_never_exceeds_serial(system, name):
    query = WORKLOADS[name]
    executor = FederatedExecutor(system)
    serial = executor.execute(query, ADAPTIVE)
    parallel = executor.execute(query, PARALLEL)
    assert (
        parallel.stats.elapsed_seconds
        <= serial.stats.elapsed_seconds + 1e-9
    )
    # Elapsed can never exceed the summed serial durations.
    assert (
        parallel.stats.elapsed_seconds <= parallel.stats.busy_seconds + 1e-9
    )


def test_serial_strategies_keep_elapsed_equal_to_busy(system):
    executor = FederatedExecutor(system)
    for strategy in ("adaptive", "naive", "bound", "collect"):
        result = executor.execute(WORKLOADS["path2"], strategy)
        assert result.stats.elapsed_seconds == pytest.approx(
            result.stats.busy_seconds
        )


def test_union_branches_overlap(system):
    # Two independent UNION branches, one request each: the parallel
    # makespan is one branch's wire time, not the sum of both.
    executor = FederatedExecutor(system)
    serial = executor.execute(WORKLOADS["union_filter"], ADAPTIVE)
    parallel = executor.execute(WORKLOADS["union_filter"], PARALLEL)
    assert parallel.stats.messages == serial.stats.messages
    assert (
        parallel.stats.elapsed_seconds
        < serial.stats.elapsed_seconds - 1e-9
    )


def test_batch_waves_overlap_under_concurrency():
    # Force many bound-join batches: with batch_size 1 the serial mode
    # pays one latency per batch, the parallel mode overlaps them up to
    # the channel concurrency.
    system = federated_rps(peers=3, entities=20, facts=60, seed=7)
    query = federated_selective_query(entity=3, hops=2)
    serial_ex = FederatedExecutor(system, batch_size=1)
    parallel_ex = FederatedExecutor(system, batch_size=1, concurrency=4)
    serial = serial_ex.execute(query, ADAPTIVE)
    parallel = parallel_ex.execute(query, PARALLEL)
    expected = _single_graph(system, query)
    assert serial.rows == expected
    assert parallel.rows == expected
    assert (
        parallel.stats.elapsed_seconds
        <= serial.stats.elapsed_seconds + 1e-9
    )


def test_higher_concurrency_never_slows_the_makespan(system):
    query = WORKLOADS["path3"]
    elapsed = []
    for concurrency in (1, 2, 8):
        executor = FederatedExecutor(
            system, batch_size=4, concurrency=concurrency
        )
        elapsed.append(
            executor.execute(query, PARALLEL).stats.elapsed_seconds
        )
    assert elapsed[0] + 1e-9 >= elapsed[1] >= elapsed[2] - 1e-9


def test_window_below_concurrency_rejected_at_construction(system):
    from repro.errors import FederationError

    with pytest.raises(FederationError, match="max_in_flight"):
        FederatedExecutor(system, concurrency=4, max_in_flight=2)


def test_parallel_result_carries_channel_stats(system):
    executor = FederatedExecutor(system)
    parallel = executor.execute(WORKLOADS["path2"], PARALLEL)
    assert parallel.channels  # per-endpoint service statistics
    assert sum(c.completed for c in parallel.channels.values()) == (
        parallel.stats.messages
    )
    serial = executor.execute(WORKLOADS["path2"], ADAPTIVE)
    assert serial.channels == {}


# ---------------------------------------------------------------------------
# Exclusive groups
# ---------------------------------------------------------------------------


def test_exclusive_group_cuts_messages(system):
    executor = FederatedExecutor(system)
    serial = executor.execute(WORKLOADS["exclusive"], ADAPTIVE)
    parallel = executor.execute(WORKLOADS["exclusive"], PARALLEL)
    assert parallel.rows == serial.rows
    assert parallel.stats.messages < serial.stats.messages


def test_exclusive_group_decision_records_members(system):
    executor = FederatedExecutor(system)
    parallel = executor.execute(WORKLOADS["exclusive"], PARALLEL)
    grouped = [d for d in parallel.decisions if d.group]
    assert len(grouped) == 1
    decision = grouped[0]
    assert len(decision.group) == 2
    assert decision.endpoints == ("peer0",)
    assert decision.action in ("ship", "bound")
    assert "group[2]" in decision.describe()


def test_no_groups_without_a_shared_exclusive_owner(system):
    # The plain path query gives every conjunct its own single owner;
    # no owner holds two conjuncts, so nothing fuses.
    executor = FederatedExecutor(system)
    parallel = executor.execute(WORKLOADS["path2"], PARALLEL)
    assert all(not d.group for d in parallel.decisions)


# ---------------------------------------------------------------------------
# NetworkStats split semantics
# ---------------------------------------------------------------------------


def test_simulated_seconds_alias_is_gone():
    # The PR 5 deprecation completed: the alias raises AttributeError,
    # and the dataclass is not an open attribute bag for it either.
    stats = NetworkStats()
    model = NetworkModel(latency_seconds=1.0, per_solution_seconds=0.5)
    model.charge_query(stats, "p0", solutions=4)
    assert stats.busy_seconds == 3.0
    with pytest.raises(AttributeError):
        _ = stats.simulated_seconds


def test_merge_adds_busy_and_maxes_elapsed():
    model = NetworkModel(latency_seconds=1.0, per_solution_seconds=0.0)
    first, second = NetworkStats(), NetworkStats()
    model.charge_query(first, "a", 0)
    model.charge_query(second, "a", 0)
    model.charge_query(second, "b", 0)
    first.merge(second)
    assert first.messages == 3
    assert first.busy_seconds == pytest.approx(3.0)
    # Concurrent sub-executions finish when the slower one does.
    assert first.elapsed_seconds == pytest.approx(2.0)
    assert first.per_endpoint_messages == {"a": 2, "b": 1}


def test_refresh_charges_count_in_merge():
    model = NetworkModel()
    first, second = NetworkStats(), NetworkStats()
    model.charge_refresh(first, "a")
    model.charge_refresh(second, "b")
    first.merge(second)
    assert first.stats_refreshes == 2
    assert first.messages == 2
