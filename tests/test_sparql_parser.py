"""Parser and lexer coverage: accepted forms and precise error cases."""

import pytest

from repro.errors import (
    SparqlSyntaxError,
    UnsupportedSparqlError,
)
from repro.rdf.namespaces import NamespaceManager, RDF_TYPE
from repro.rdf.terms import IRI, Literal, Variable, XSD_INTEGER
from repro.sparql.ast import (
    AskQuery,
    BooleanExpr,
    Comparison,
    SelectQuery,
    UnionPattern,
)
from repro.sparql.lexer import tokenize
from repro.sparql.parser import parse_query


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------


def test_tokenize_positions_and_kinds():
    tokens = tokenize('SELECT ?x WHERE { ?x <http://e.org/p> "v" }')
    kinds = [t.kind for t in tokens]
    assert kinds == [
        "keyword", "var", "keyword", "punct", "var", "iri", "string",
        "punct", "eof",
    ]
    assert tokens[0].line == 1 and tokens[0].column == 1


def test_tokenize_tracks_line_numbers():
    tokens = tokenize("SELECT ?x\nWHERE\n{ }")
    where = next(t for t in tokens if t.value == "WHERE")
    assert where.line == 2


def test_tokenize_rejects_stray_character():
    with pytest.raises(SparqlSyntaxError) as excinfo:
        tokenize("SELECT ?x WHERE { ?x @@ ?y }")
    assert excinfo.value.line == 1


def test_tokenize_rejects_unknown_identifier():
    with pytest.raises(SparqlSyntaxError, match="unexpected identifier"):
        tokenize("SELECT ?x FROM { }")


def test_keywords_are_case_insensitive():
    ast = parse_query("select ?x where { ?x <http://e.org/p> ?y }")
    assert isinstance(ast, SelectQuery)


# ---------------------------------------------------------------------------
# Parser: accepted structure
# ---------------------------------------------------------------------------


def test_parse_prefixed_names_and_a_keyword():
    ast = parse_query(
        "PREFIX ex: <http://e.org/> SELECT ?x WHERE { ?x a ex:Film }"
    )
    tp = ast.where.elements[0]
    assert tp.predicate == RDF_TYPE
    assert tp.object == IRI("http://e.org/Film")


def test_parse_predicate_object_lists():
    ast = parse_query(
        "SELECT * WHERE { ?x <http://e.org/p> ?y ; <http://e.org/q> ?z , ?w }"
    )
    assert len(ast.where.elements) == 3
    subjects = {tp.subject for tp in ast.where.elements}
    assert subjects == {Variable("x")}


def test_parse_union_and_filter_structure():
    ast = parse_query(
        "SELECT ?s WHERE { { ?s <http://e.org/p> ?o } UNION "
        "{ ?s <http://e.org/q> ?o } FILTER(?s != ?o && ?o != <http://e.org/z>) }"
    )
    union, filter_expr = ast.where.elements
    assert isinstance(union, UnionPattern) and len(union.alternatives) == 2
    assert isinstance(filter_expr, BooleanExpr) and filter_expr.op == "&&"
    assert isinstance(filter_expr.left, Comparison)


def test_parse_typed_and_tagged_literals():
    ast = parse_query(
        'SELECT ?x WHERE { ?x <http://e.org/p> "5"^^'
        "<http://www.w3.org/2001/XMLSchema#integer> . "
        '?x <http://e.org/q> "hi"@en }'
    )
    first, second = ast.where.elements
    assert first.object == Literal("5", datatype=XSD_INTEGER)
    assert second.object == Literal("hi", language="en")


def test_parse_modifiers():
    ast = parse_query(
        "SELECT DISTINCT ?x WHERE { ?x <http://e.org/p> ?y } "
        "ORDER BY DESC(?x) LIMIT 5 OFFSET 2"
    )
    assert ast.distinct
    assert ast.order[0].descending
    assert (ast.limit, ast.offset) == (5, 2)


def test_parse_ask():
    ast = parse_query("ASK { ?x <http://e.org/p> ?y }")
    assert isinstance(ast, AskQuery)


def test_parser_does_not_mutate_callers_namespace_manager():
    nsm = NamespaceManager()
    parse_query(
        "PREFIX ex: <http://e.org/> SELECT ?x WHERE { ?x ex:p ?y }", nsm
    )
    with pytest.raises(Exception):
        nsm.expand("ex:p")


# ---------------------------------------------------------------------------
# Parser: error cases
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,match",
    [
        ("WHERE { ?x <http://e.org/p> ?y }", "expected SELECT or ASK"),
        ("SELECT WHERE { ?x <http://e.org/p> ?y }", "SELECT needs variables"),
        ("SELECT ?x { ?x <http://e.org/p> ?y } SELECT", "trailing input"),
        ("SELECT ?x WHERE { ?x <http://e.org/p> ?y", "unterminated group"),
        ("SELECT ?x WHERE { ?x <http://e.org/p> }", "object position"),
        ("SELECT ?x WHERE { <http://e.org/p> ?y }", "object position"),
        ("SELECT ?x WHERE { ?x ?p ?y } ORDER BY", "ORDER BY needs"),
        ("SELECT ?x WHERE { ?x ?p ?y } LIMIT ?x", "expected integer"),
        ("SELECT ?x WHERE { ?x ?p ?y } LIMIT -2", "non-negative"),
        ("SELECT ?x WHERE { ?x ?p ?y } OFFSET -3", "non-negative"),
        ("SELECT ?x WHERE { ?x ?p ?y } LIMIT 2 LIMIT 10", "duplicate LIMIT"),
        ("SELECT ?x WHERE { ?x ?p ?y } OFFSET 1 OFFSET 2", "duplicate OFFSET"),
        ("SELECT ?x WHERE { FILTER(?x) }", "expected '=' or '!='"),
        ("PREFIX ex <http://e.org/> SELECT ?x WHERE { }", "unexpected identifier"),
        ("PREFIX ex: SELECT ?x WHERE { }", "namespace IRI"),
        ("CONSTRUCT { ?x <http://e.org/p> ?y }", "expected SELECT or ASK"),
    ],
)
def test_syntax_errors(text, match):
    with pytest.raises(SparqlSyntaxError, match=match):
        parse_query(text)


def test_syntax_error_carries_position():
    with pytest.raises(SparqlSyntaxError) as excinfo:
        parse_query("SELECT ?x WHERE { ?x <http://e.org/p> }")
    assert excinfo.value.line == 1
    assert excinfo.value.column > 1


@pytest.mark.parametrize(
    "text",
    [
        "SELECT ?x WHERE { GRAPH <http://e.org/g> { ?x <http://e.org/p> ?y } }",
        "SELECT ?x WHERE { BIND(?x) }",
        "BASE <http://e.org/> SELECT ?x WHERE { }",
    ],
)
def test_unsupported_features_raise_unsupported(text):
    with pytest.raises(UnsupportedSparqlError):
        parse_query(text)


def test_optional_parses_into_optional_pattern():
    from repro.sparql.ast import OptionalPattern

    ast = parse_query(
        "SELECT ?x ?a WHERE { ?x <http://e.org/p> ?y "
        "OPTIONAL { ?y <http://e.org/age> ?a } }"
    )
    optionals = [
        e for e in ast.where.elements if isinstance(e, OptionalPattern)
    ]
    assert len(optionals) == 1
    assert len(optionals[0].group.triple_patterns()) == 1


def test_literal_subject_parses_but_matches_nothing():
    # RDF forbids literal subjects, so the pattern is satisfiable by no
    # triple; the engine prunes it rather than the parser rejecting it.
    from repro.rdf.graph import Graph
    from repro.rdf.terms import IRI
    from repro.rdf.triples import Triple
    from repro.sparql.engine import select

    g = Graph([Triple(IRI("http://e.org/s"), IRI("http://e.org/p"),
                      Literal("lit"))])
    result = select(g, 'SELECT ?x WHERE { "lit" <http://e.org/p> ?x }')
    assert len(result) == 0


def test_unknown_prefix_is_an_error():
    with pytest.raises(Exception):
        parse_query("SELECT ?x WHERE { ?x ex:p ?y }")
