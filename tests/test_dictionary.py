"""Tests for the term dictionary and the Graph ID-level access path."""

import pytest

from repro.errors import TermError
from repro.rdf.dictionary import TermDictionary, default_dictionary
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import BlankNode, IRI, Literal, Variable
from repro.rdf.triples import Triple

EX = Namespace("http://example.org/")


def test_encode_decode_round_trip():
    d = TermDictionary()
    terms = [
        IRI("http://example.org/a"),
        BlankNode("b0"),
        Literal("plain"),
        Literal("tagged", language="en"),
        Literal("5", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")),
    ]
    ids = [d.encode(t) for t in terms]
    assert ids == list(range(5))
    assert [d.decode(i) for i in ids] == terms
    assert len(d) == 5


def test_encode_is_idempotent_and_lookup_is_side_effect_free():
    d = TermDictionary()
    a = EX.term("a")
    tid = d.encode(a)
    assert d.encode(IRI(str(a))) == tid
    assert len(d) == 1
    assert d.lookup(EX.term("not-interned")) is None
    assert len(d) == 1  # lookup must never intern
    assert a in d and EX.term("not-interned") not in d


def test_equal_but_distinct_literals_get_distinct_ids():
    d = TermDictionary()
    plain = d.encode(Literal("x"))
    tagged = d.encode(Literal("x", language="en"))
    typed = d.encode(
        Literal("x", datatype=IRI("http://www.w3.org/2001/XMLSchema#string"))
    )
    assert len({plain, tagged, typed}) == 3


def test_variables_are_rejected():
    d = TermDictionary()
    with pytest.raises(TermError):
        d.encode(Variable("x"))


def test_decode_unknown_id_raises():
    d = TermDictionary()
    with pytest.raises(KeyError):
        d.decode(42)
    d.encode(EX.term("only"))
    # Negative IDs must not wrap around to the end of the term list.
    with pytest.raises(KeyError):
        d.decode(-1)


def test_chase_solution_uses_private_dictionary(three_peer_chain):
    """Fresh chase blanks must not leak into the shared dictionary."""
    from repro.peers.chase import chase_universal_solution

    rps, _ = three_peer_chain
    solution = chase_universal_solution(rps).solution
    assert solution.dictionary is not default_dictionary()


def test_triple_round_trip():
    d = TermDictionary()
    t = Triple(EX.term("s"), EX.term("p"), Literal("o"))
    assert d.decode_triple(d.encode_triple(t)) == t


def test_graphs_share_default_dictionary():
    g1, g2 = Graph(), Graph()
    assert g1.dictionary is g2.dictionary is default_dictionary()
    t = Triple(EX.term("shared"), EX.term("p"), EX.term("x"))
    g1.add(t)
    assert g1.term_id(t.subject) == g2.term_id(t.subject)


def test_graph_id_level_access_agrees_with_term_level():
    g = Graph(
        [
            Triple(EX.term("a"), EX.term("p"), EX.term("b")),
            Triple(EX.term("a"), EX.term("q"), EX.term("c")),
        ]
    )
    a_id = g.term_id(EX.term("a"))
    assert a_id is not None
    rows = list(g.triples_ids(subject=a_id))
    assert len(rows) == 2
    decoded = {g.dictionary.decode_triple(row) for row in rows}
    assert decoded == set(g.triples(subject=EX.term("a")))
    assert g.decode_id(a_id) == EX.term("a")


def test_private_dictionary_isolation():
    private = TermDictionary()
    g = Graph(dictionary=private)
    g.add(Triple(EX.term("iso"), EX.term("p"), EX.term("x")))
    assert private.lookup(EX.term("iso")) is not None
    assert len(private) == 3
