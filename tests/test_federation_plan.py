"""The federated physical-operator layer: plans, explain, pipelining."""

import pytest

from repro.federation import (
    ADAPTIVE,
    PARALLEL,
    STRATEGIES,
    FederatedExecutor,
    NetworkModel,
    PreparedQuery,
)
from repro.federation.plan import (
    BoundJoinStream,
    FedOp,
    LeftJoinNode,
    ProjectDedupe,
    PullScan,
    RemoteScan,
)
from repro.gpq.evaluation import evaluate_query_star
from repro.workload.federation import (
    federated_exclusive_query,
    federated_optional_sparql,
    federated_path_query,
    federated_rps,
    federated_selective_query,
)

#: Cheap round trips, expensive transfer: prices consecutive bound
#: joins cheaper than shipping/pulling, so plans produce multi-batch
#: pipelines (mirrors the streaming bench suite's network).
DEEP_NET = dict(
    latency_seconds=0.01, per_solution_seconds=0.01, per_triple_seconds=0.05
)


@pytest.fixture(scope="module")
def system():
    return federated_rps(peers=3, entities=20, facts=60, seed=7)


def _deep_executors(system, streaming):
    return FederatedExecutor(
        system,
        network=NetworkModel(**DEEP_NET),
        batch_size=1,
        concurrency=4,
        streaming=streaming,
    )


# ---------------------------------------------------------------------------
# The monolith is gone; results carry operator plans
# ---------------------------------------------------------------------------


def test_strategy_monolith_methods_are_gone():
    for name in (
        "_branch_naive",
        "_branch_bound",
        "_branch_adaptive",
        "_branch_parallel",
    ):
        assert not hasattr(FederatedExecutor, name)


@pytest.mark.parametrize("strategy", ["adaptive", "parallel", "naive", "bound"])
def test_results_carry_an_operator_plan(system, strategy):
    result = FederatedExecutor(system).execute(
        federated_path_query(hops=2), strategy
    )
    assert len(result.plans) == 1
    root = result.plans[0]
    assert isinstance(root, ProjectDedupe)
    assert isinstance(root, FedOp)


def test_collect_baseline_has_no_federated_plan(system):
    result = FederatedExecutor(system).execute(
        federated_path_query(hops=2), "collect"
    )
    assert result.plans == ()


def test_plan_operator_kinds_reflect_decisions(system):
    executor = _deep_executors(system, streaming=True)
    result = executor.execute(
        federated_selective_query(entity=3, hops=3), PARALLEL
    )
    kinds = set()

    def walk(node):
        kinds.add(type(node))
        for child in node.children():
            walk(child)

    walk(result.plans[0])
    assert RemoteScan in kinds  # the anchored first hop ships
    assert BoundJoinStream in kinds  # later hops bound-join
    # Decision trace and plan agree on the constructed operators.
    for decision in result.decisions:
        assert decision.operator() in {
            "RemoteScan",
            "ExclusiveGroupScan",
            "BoundJoinStream",
            "PullScan",
        }


# ---------------------------------------------------------------------------
# Explain over the plan layer
# ---------------------------------------------------------------------------


def test_serial_and_parallel_explains_render_plan_deterministically(system):
    executor = FederatedExecutor(system)
    query = federated_exclusive_query(hops=1)
    for strategy in (ADAPTIVE, PARALLEL):
        traces = {executor.explain(query, strategy=strategy) for _ in range(3)}
        assert len(traces) == 1
        trace = traces.pop()
        assert "plan:" in trace
        assert "Project" in trace
        # One operator line per plan node, indented under "plan:".
        assert any(
            line.startswith("  ") for line in trace.split("\n")[2:]
        )


def test_parallel_explain_of_exclusive_group_names_the_operator(system):
    trace = FederatedExecutor(system).explain(
        federated_exclusive_query(hops=1), strategy=PARALLEL
    )
    assert "ExclusiveGroupScan" in trace or "[group 2]" in trace


def test_pipelined_bound_join_explain_shows_batch_overlap(system):
    # Multi-batch workload (batch_size=1, fan-out >> 1): the pipelined
    # bound join's explain must report in-flight overlap above 1.
    executor = _deep_executors(system, streaming=True)
    trace = executor.explain(
        federated_selective_query(entity=3, hops=3), strategy=PARALLEL
    )
    assert "BoundJoinStream" in trace
    assert "mode=pipelined" in trace
    in_flights = [
        int(token.split("=", 1)[1])
        for line in trace.split("\n")
        for token in line.split()
        if token.startswith("in_flight=")
    ]
    assert in_flights and max(in_flights) > 1


def test_wave_barrier_explain_reports_wave_mode(system):
    executor = _deep_executors(system, streaming=False)
    trace = executor.explain(
        federated_selective_query(entity=3, hops=3), strategy=PARALLEL
    )
    assert "mode=waves" in trace
    assert "mode=pipelined" not in trace


# ---------------------------------------------------------------------------
# Pipelining invariants
# ---------------------------------------------------------------------------


def test_pipelining_never_changes_answers_or_traffic(system):
    query = federated_selective_query(entity=3, hops=3)
    expected = evaluate_query_star(system.stored_database(), query)
    wave = _deep_executors(system, streaming=False).execute(query, PARALLEL)
    pipelined = _deep_executors(system, streaming=True).execute(
        query, PARALLEL
    )
    assert wave.rows == pipelined.rows == expected
    assert wave.stats.messages == pipelined.stats.messages
    assert (
        wave.stats.solutions_transferred
        == pipelined.stats.solutions_transferred
    )
    assert wave.stats.busy_seconds == pytest.approx(
        pipelined.stats.busy_seconds
    )


def test_pipelining_strictly_beats_wave_barriers_on_multi_batch(system):
    query = federated_selective_query(entity=3, hops=3)
    wave = _deep_executors(system, streaming=False).execute(query, PARALLEL)
    pipelined = _deep_executors(system, streaming=True).execute(
        query, PARALLEL
    )
    assert (
        pipelined.stats.elapsed_seconds
        < wave.stats.elapsed_seconds - 1e-9
    )


@pytest.mark.parametrize("hops", [1, 2, 3])
def test_pipelining_never_slower_across_depths(system, hops):
    query = federated_selective_query(entity=3, hops=hops)
    wave = _deep_executors(system, streaming=False).execute(query, PARALLEL)
    pipelined = _deep_executors(system, streaming=True).execute(
        query, PARALLEL
    )
    assert (
        pipelined.stats.elapsed_seconds
        <= wave.stats.elapsed_seconds + 1e-9
    )
    # Elapsed can never exceed the summed serial durations.
    assert (
        pipelined.stats.elapsed_seconds
        <= pipelined.stats.busy_seconds + 1e-9
    )


def test_streaming_is_deterministic(system):
    query = federated_selective_query(entity=3, hops=3)
    elapsed = {
        _deep_executors(system, streaming=True)
        .execute(query, PARALLEL)
        .stats.elapsed_seconds
        for _ in range(3)
    }
    assert len(elapsed) == 1


# ---------------------------------------------------------------------------
# Prepared queries: normalisation runs once per run_all_strategies
# ---------------------------------------------------------------------------


def test_run_all_strategies_normalises_once(system, monkeypatch):
    import repro.federation.executor as executor_module

    calls = []
    original = executor_module.sparql_to_branches

    def counting(query, nsm=None):
        calls.append(query)
        return original(query, nsm)

    monkeypatch.setattr(executor_module, "sparql_to_branches", counting)
    executor = FederatedExecutor(system)
    results = executor.run_all_strategies(federated_optional_sparql())
    assert set(results) == set(STRATEGIES)
    # One normalisation for five strategy executions.
    assert len(calls) == 1


def test_prepared_query_is_reusable_across_strategies(system):
    executor = FederatedExecutor(system)
    query = federated_path_query(hops=2)
    prepared = executor.prepare(query)
    assert isinstance(prepared, PreparedQuery)
    direct = executor.execute(query, ADAPTIVE)
    via_prepared = executor.execute(prepared, ADAPTIVE)
    assert via_prepared.rows == direct.rows
    assert via_prepared.stats.messages == direct.stats.messages


# ---------------------------------------------------------------------------
# Operator-level behaviour
# ---------------------------------------------------------------------------


def test_pull_scan_records_pulled_endpoints(system):
    # The plain path query's cost model pulls small relations.
    result = FederatedExecutor(system).execute(
        federated_path_query(hops=2), ADAPTIVE
    )
    pulls = []

    def walk(node):
        if isinstance(node, PullScan):
            pulls.append(node)
        for child in node.children():
            walk(child)

    walk(result.plans[0])
    pull_decisions = [d for d in result.decisions if d.action == "pull"]
    assert len([p for p in pulls if p.pulled]) == len(pull_decisions)


def test_left_join_node_appears_for_optional(system):
    result = FederatedExecutor(system).execute(
        federated_optional_sparql(), ADAPTIVE
    )
    found = []

    def walk(node):
        if isinstance(node, LeftJoinNode):
            found.append(node)
        for child in node.children():
            walk(child)

    walk(result.plans[0])
    assert len(found) == 1
