"""Fault injection, retry/backoff, replica failover, partial answers."""

import pytest

from repro.errors import (
    EndpointUnavailableError,
    FederationError,
    SimulationError,
)
from repro.federation import (
    ADAPTIVE,
    PARALLEL,
    STRATEGIES,
    FaultModel,
    FaultSpec,
    FederatedExecutor,
    RetryPolicy,
)
from repro.runtime import OverlapScheduler
from repro.workload.federation import (
    blackout_fault_model,
    federated_path_query,
    federated_rps,
    flaky_fault_model,
    outage_fault_model,
)


@pytest.fixture(scope="module")
def system():
    return federated_rps(peers=3, entities=20, facts=60, seed=7)


QUERY = federated_path_query()


# ---------------------------------------------------------------------------
# FaultSpec / RetryPolicy / FaultSession units
# ---------------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="failure_rate"):
        FaultSpec(failure_rate=1.5)
    with pytest.raises(ValueError, match="timeout_rate"):
        FaultSpec(timeout_rate=-0.1)
    with pytest.raises(ValueError, match="exceeds 1"):
        FaultSpec(failure_rate=0.6, timeout_rate=0.6)
    with pytest.raises(ValueError, match="fail_first"):
        FaultSpec(fail_first=-1)
    with pytest.raises(ValueError, match="outage window"):
        FaultSpec(outages=((2.0, 1.0),))


def test_outage_window_is_half_open():
    spec = FaultSpec(outages=((1.0, 2.0),))
    assert not spec.in_outage(0.999)
    assert spec.in_outage(1.0)
    assert spec.in_outage(1.999)
    assert not spec.in_outage(2.0)


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff_seconds"):
        RetryPolicy(backoff_seconds=-0.1)
    with pytest.raises(ValueError, match="backoff_factor"):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError, match="timeout_seconds"):
        RetryPolicy(timeout_seconds=-1.0)
    policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0)
    assert policy.backoff(0) == pytest.approx(0.1)
    assert policy.backoff(1) == pytest.approx(0.2)
    assert policy.backoff(2) == pytest.approx(0.4)


def test_fail_first_is_deterministic():
    model = FaultModel(specs={"p": FaultSpec(fail_first=2)}, seed=0)
    session = model.session()
    assert [session.outcome("p", 0.0) for _ in range(4)] == [
        "fail",
        "fail",
        "ok",
        "ok",
    ]
    assert session.attempts("p") == 4


def test_outcome_sequence_is_seeded_per_endpoint():
    model = FaultModel(
        specs={
            "a": FaultSpec(failure_rate=0.4, timeout_rate=0.2),
            "b": FaultSpec(failure_rate=0.4, timeout_rate=0.2),
        },
        seed=42,
    )
    first, second = model.session(), model.session()
    seq_a = [first.outcome("a", 0.0) for _ in range(30)]
    seq_b = [first.outcome("b", 0.0) for _ in range(30)]
    # Byte-identical replay from a fresh session of the same model.
    assert [second.outcome("a", 0.0) for _ in range(30)] == seq_a
    # Per-endpoint streams: one endpoint's draws are independent of the
    # other's (and, with this seed, actually differ).
    assert seq_a != seq_b
    assert {"fail", "timeout"} & set(seq_a)


def test_unconfigured_endpoint_never_fails():
    model = FaultModel(specs={"a": FaultSpec(failure_rate=1.0)}, seed=0)
    session = model.session()
    assert all(session.outcome("other", 0.0) == "ok" for _ in range(10))
    assert session.attempts("other") == 0


def test_endpoint_unavailable_error_carries_context():
    exc = EndpointUnavailableError("gone", endpoint="peer1", attempts=3)
    assert exc.endpoint == "peer1"
    assert exc.attempts == 3


# ---------------------------------------------------------------------------
# Scheduler / channel fault plumbing
# ---------------------------------------------------------------------------


def test_scheduler_delay_postpones_arrival():
    scheduler = OverlapScheduler()
    first = scheduler.submit("p0", 1.0)
    retried = scheduler.submit("p0", 1.0, after=[first], delay=2.0)
    assert scheduler.makespan() == pytest.approx(4.0)
    assert scheduler.timeline()[retried.index].arrived_at == pytest.approx(
        3.0
    )
    with pytest.raises(SimulationError, match="delay"):
        scheduler.submit("p0", 1.0, delay=-0.5)


def test_channel_counts_failed_attempts():
    scheduler = OverlapScheduler()
    scheduler.submit("p0", 0.5, failed=True)
    scheduler.submit("p0", 1.0)
    stats = scheduler.channel_stats()["p0"]
    assert stats.completed == 2
    assert stats.failed == 1


# ---------------------------------------------------------------------------
# Retry accounting through the executor
# ---------------------------------------------------------------------------


def _fail_first_model(k=1):
    return FaultModel(specs={"peer1": FaultSpec(fail_first=k)}, seed=0)


def test_fail_first_retry_accounting_serial(system):
    policy = RetryPolicy(max_retries=1, backoff_seconds=0.25)
    clean = FederatedExecutor(system).execute(QUERY, ADAPTIVE)
    faulty = FederatedExecutor(
        system, fault_model=_fail_first_model(), retry_policy=policy
    ).execute(QUERY, ADAPTIVE)
    assert faulty.rows == clean.rows
    assert faulty.partial is None
    stats = faulty.stats
    # One extra (failed) message, one retry, one error reply, one
    # backoff sleep — and the failed round trip is charged like traffic.
    assert stats.messages == clean.stats.messages + 1
    assert stats.retries == 1
    assert stats.failures == 1
    assert stats.timeouts == 0
    assert stats.backoff_seconds == pytest.approx(0.25)
    assert stats.busy_seconds > clean.stats.busy_seconds
    # Serial mode: the makespan is wire time plus the backoff sleep.
    assert stats.elapsed_seconds == pytest.approx(
        stats.busy_seconds + stats.backoff_seconds
    )


def test_timeouts_charged_at_policy_timeout(system):
    policy = RetryPolicy(max_retries=1, timeout_seconds=0.7)
    model = FaultModel(specs={"peer1": FaultSpec(timeout_rate=1.0)}, seed=0)
    result = FederatedExecutor(
        system, fault_model=model, retry_policy=policy
    ).execute(QUERY, ADAPTIVE)
    # Every attempt times out: budget exhausted, flagged partial.
    assert result.partial is not None
    assert result.stats.timeouts == 2
    assert result.stats.busy_seconds >= 2 * 0.7


def test_runtime_mode_prices_backoff_into_makespan(system):
    policy = RetryPolicy(max_retries=1, backoff_seconds=0.25)
    clean = FederatedExecutor(system).execute(QUERY, PARALLEL)
    faulty = FederatedExecutor(
        system, fault_model=_fail_first_model(), retry_policy=policy
    ).execute(QUERY, PARALLEL)
    assert faulty.rows == clean.rows
    assert faulty.partial is None
    assert faulty.stats.retries == 1
    # The backoff delay flows through the event kernel into the
    # makespan, not just into the busy-time total.
    assert (
        faulty.stats.elapsed_seconds
        > clean.stats.elapsed_seconds + policy.backoff_seconds - 1e-9
    )
    # The failed attempt occupied its channel and is counted there.
    assert sum(c.failed for c in faulty.channels.values()) == 1


def test_outage_window_escaped_by_retrying(system):
    model = outage_fault_model("peer1", start=0.0, end=0.12, seed=0)
    policy = RetryPolicy(max_retries=8, backoff_seconds=0.05)
    clean = FederatedExecutor(system).execute(QUERY, ADAPTIVE)
    result = FederatedExecutor(
        system, fault_model=model, retry_policy=policy
    ).execute(QUERY, ADAPTIVE)
    # Failed attempts advance busy time past the window's end, so the
    # retries eventually land outside the outage and recover fully.
    assert result.rows == clean.rows
    assert result.partial is None
    assert result.stats.failures > 0


# ---------------------------------------------------------------------------
# Replica failover
# ---------------------------------------------------------------------------


def test_failover_uses_replica_and_charges_it(system):
    clean = FederatedExecutor(system).execute(QUERY, ADAPTIVE)
    result = FederatedExecutor(
        system,
        fault_model=blackout_fault_model("peer1"),
        retry_policy=RetryPolicy(max_retries=1),
        replicas={"peer1": 1},
    ).execute(QUERY, ADAPTIVE)
    assert result.rows == clean.rows
    assert result.partial is None
    assert result.stats.failovers >= 1
    # Replica traffic is charged under the replica's own name.
    assert result.stats.per_endpoint_messages.get("peer1.r1", 0) >= 1


def test_executor_rejects_bad_replica_config(system):
    with pytest.raises(FederationError, match="unknown endpoint"):
        FederatedExecutor(system, replicas={"nope": 1})
    with pytest.raises(FederationError, match="must be >= 0"):
        FederatedExecutor(system, replicas={"peer1": -1})


# ---------------------------------------------------------------------------
# Flagged partial answers
# ---------------------------------------------------------------------------


def test_partial_answer_provenance_across_strategies(system):
    executor = FederatedExecutor(
        system,
        fault_model=blackout_fault_model("peer1"),
        retry_policy=RetryPolicy(max_retries=1),
    )
    clean = FederatedExecutor(system).execute(QUERY, ADAPTIVE)
    # run_all_strategies must not raise: flagged partial results are
    # exempt from the answer-agreement check.
    results = executor.run_all_strategies(QUERY)
    for strategy in STRATEGIES:
        result = results[strategy]
        assert result.partial is not None, strategy
        assert result.partial.endpoints() == ("peer1",), strategy
        assert "unreachable peer1" in result.partial.describe()
        # Degraded, never wrong: a subset of the full answer set.
        assert all(row in clean.rows for row in result.rows), strategy


def test_recoverable_faults_match_fault_free_on_all_strategies(system):
    model = flaky_fault_model(
        "peer1", failure_rate=0.3, timeout_rate=0.1, seed=15
    )
    executor = FederatedExecutor(
        system, fault_model=model, retry_policy=RetryPolicy(max_retries=8)
    )
    clean = FederatedExecutor(system)
    for strategy in STRATEGIES:
        expected = clean.execute(QUERY, strategy)
        result = executor.execute(QUERY, strategy)
        assert result.partial is None, strategy
        assert result.rows == expected.rows, strategy


# ---------------------------------------------------------------------------
# Determinism fuzz: same seed, byte-identical schedule and answers
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_seeded_fuzz_is_deterministic(system, seed):
    model = flaky_fault_model(
        "peer1", failure_rate=0.3, timeout_rate=0.15, seed=seed
    )
    policy = RetryPolicy(max_retries=8)

    def run(strategy):
        executor = FederatedExecutor(
            system, fault_model=model, retry_policy=policy
        )
        return executor.execute(QUERY, strategy)

    for strategy in (ADAPTIVE, PARALLEL):
        first, second = run(strategy), run(strategy)
        assert first.rows == second.rows
        for field in (
            "messages",
            "retries",
            "failures",
            "timeouts",
            "failovers",
            "busy_seconds",
            "elapsed_seconds",
            "backoff_seconds",
            "per_endpoint_messages",
        ):
            assert getattr(first.stats, field) == getattr(
                second.stats, field
            ), (strategy, field)
        assert first.channels == second.channels
        assert (first.partial is None) == (second.partial is None)
        # Recoverable with this retry budget: answers match fault-free.
        if first.partial is None:
            clean = FederatedExecutor(system).execute(QUERY, strategy)
            assert first.rows == clean.rows
