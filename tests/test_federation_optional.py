"""Federated OPTIONAL: equivalence with the single-graph evaluator."""

import random

import pytest

from repro.errors import UnsupportedSparqlError
from repro.federation import STRATEGIES, FederatedExecutor
from repro.sparql.algebra import evaluate_algebra, translate_group
from repro.sparql.ast import SelectQuery
from repro.sparql.bridge import sparql_to_branches
from repro.sparql.parser import parse_query
from repro.sparql.plan import select_rows
from repro.workload.federation import (
    SHARED,
    federated_optional_filter_sparql,
    federated_optional_sparql,
    federated_rps,
)
from repro.workload.topologies import peer_namespace


@pytest.fixture(scope="module")
def system():
    # Sparse on purpose: some optional extensions must miss, so the
    # keep-unmatched path of the left join is exercised.
    return federated_rps(peers=3, entities=30, facts=25, seed=13)


@pytest.fixture(scope="module")
def merged(system):
    return system.stored_database()


def reference_rows(merged, text):
    ast = parse_query(text)
    head = ast.projected() if isinstance(ast, SelectQuery) else ()
    return select_rows(merged, translate_group(ast.where), head)


def assert_all_strategies_match(system, merged, text):
    executor = FederatedExecutor(system)
    expected = reference_rows(merged, text)
    prepared = executor.prepare(text)
    for strategy in STRATEGIES:
        result = executor.execute(prepared, strategy)
        assert result.rows == expected, (
            f"{strategy}: {len(result.rows)} != {len(expected)} for {text}"
        )
    return expected


# ---------------------------------------------------------------------------
# The two committed OPTIONAL workloads
# ---------------------------------------------------------------------------


def test_optional_workload_matches_single_graph(system, merged):
    expected = assert_all_strategies_match(
        system, merged, federated_optional_sparql()
    )
    assert expected
    # Some rows extend, some keep the optional cell unbound.
    assert any(None in row for row in expected)
    assert any(None not in row for row in expected)


def test_optional_filter_workload_matches_single_graph(system, merged):
    expected = assert_all_strategies_match(
        system, merged, federated_optional_filter_sparql()
    )
    assert expected
    assert any(None in row for row in expected)


# ---------------------------------------------------------------------------
# Hand-picked OPTIONAL shapes
# ---------------------------------------------------------------------------


def test_nested_group_filter_is_not_hoisted_into_the_condition(
    system, merged
):
    # A filter inside a *nested* group of the OPTIONAL keeps that
    # group's scope: ?x is unbound there, the comparison collapses to
    # false, the optional side is empty, and every row stays
    # unextended.  Hoisting it into the LeftJoin condition (where ?x IS
    # bound on the merged row) would wrongly extend rows.
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    anchor = SHARED.term("e3").n3()
    nested = (
        f"SELECT ?x ?z WHERE {{ ?x {p0} ?y "
        f"OPTIONAL {{ {{ ?y {p1} ?z FILTER(?x != {anchor}) }} }} }}"
    )
    expected = assert_all_strategies_match(system, merged, nested)
    assert expected and all(row[1] is None for row in expected)
    # The same filter placed directly in the OPTIONAL group *is* the
    # LeftJoin condition and does see ?x — some rows extend.
    direct = (
        f"SELECT ?x ?z WHERE {{ ?x {p0} ?y "
        f"OPTIONAL {{ ?y {p1} ?z FILTER(?x != {anchor}) }} }}"
    )
    extended = assert_all_strategies_match(system, merged, direct)
    assert any(row[1] is not None for row in extended)
    assert extended != expected


def test_optional_condition_references_required_side(system, merged):
    # The top-level FILTER of the optional group becomes the LeftJoin
    # condition and sees the *merged* row — ?x is bound by the required
    # side only.
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    text = (
        f"SELECT ?x ?z WHERE {{ ?x {p0} ?y "
        f"OPTIONAL {{ ?y {p1} ?z FILTER(?z != ?x) }} }}"
    )
    assert_all_strategies_match(system, merged, text)


def test_optional_over_union_stays_inside_the_block(system, merged):
    # A UNION inside OPTIONAL must not distribute out: a row matched by
    # one alternative may not also surface unextended via the other.
    p0, p1, p2 = (peer_namespace(i).knows.n3() for i in range(3))
    text = (
        f"SELECT ?x ?z WHERE {{ ?x {p0} ?y OPTIONAL {{ "
        f"{{ ?y {p1} ?z }} UNION {{ ?y {p2} ?z }} }} }}"
    )
    assert_all_strategies_match(system, merged, text)


def test_union_on_required_side_distributes(system, merged):
    p0, p1, p2 = (peer_namespace(i).knows.n3() for i in range(3))
    text = (
        f"SELECT ?x ?z WHERE {{ {{ ?x {p0} ?y }} UNION {{ ?x {p1} ?y }} "
        f"OPTIONAL {{ ?y {p2} ?z }} }}"
    )
    assert_all_strategies_match(system, merged, text)


def test_two_optional_blocks_apply_in_order(system, merged):
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    a1, a2 = peer_namespace(1).age.n3(), peer_namespace(2).age.n3()
    text = (
        f"SELECT ?x ?a ?b WHERE {{ ?x {p0} ?y "
        f"OPTIONAL {{ ?x {a1} ?a }} OPTIONAL {{ ?x {a2} ?b }} }}"
    )
    assert_all_strategies_match(system, merged, text)
    # Filter above both left joins sees optional variables.
    filtered = (
        f"SELECT ?x WHERE {{ ?x {p0} ?y "
        f"OPTIONAL {{ ?x {a1} ?a }} . FILTER(?a != ?x) }}"
    )
    assert_all_strategies_match(system, merged, filtered)


def test_optional_anchored_at_ground_term(system, merged):
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    anchor = SHARED.term("e3").n3()
    text = (
        f"SELECT ?y ?z WHERE {{ {anchor} {p0} ?y "
        f"OPTIONAL {{ ?y {p1} ?z }} }}"
    )
    assert_all_strategies_match(system, merged, text)


def test_empty_required_side_yields_nothing_and_ships_no_optional(system):
    # Nobody holds peer9's vocabulary: the required side is empty, so
    # the optional block is never contacted under bound/adaptive.
    p9 = "<http://peer9.example.org/knows>"
    p1 = peer_namespace(1).knows.n3()
    text = f"SELECT ?x ?z WHERE {{ ?x {p9} ?y OPTIONAL {{ ?y {p1} ?z }} }}"
    executor = FederatedExecutor(system)
    bound = executor.execute(text, "bound")
    adaptive = executor.execute(text, "adaptive")
    assert bound.rows == adaptive.rows == set()
    assert bound.stats.messages == 0
    assert adaptive.stats.messages == 0


def test_nested_optional_is_rejected():
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    text = (
        f"SELECT ?x WHERE {{ ?x {p0} ?y OPTIONAL {{ ?y {p1} ?z "
        f"OPTIONAL {{ ?z {p0} ?w }} }} }}"
    )
    with pytest.raises(UnsupportedSparqlError, match="nested OPTIONAL"):
        sparql_to_branches(text)


def test_non_well_designed_optional_is_rejected():
    p0, p1, p2 = (peer_namespace(i).knows.n3() for i in range(3))
    # ?z is bound only inside the optional group but joined from outside.
    text = (
        f"SELECT ?x WHERE {{ {{ ?x {p0} ?y OPTIONAL {{ ?y {p1} ?z }} }} . "
        f"?z {p2} ?w }}"
    )
    with pytest.raises(UnsupportedSparqlError, match="well-designed"):
        sparql_to_branches(text)


def test_non_well_designed_optional_condition_is_rejected():
    # The leak can also hide in the block's hoisted FILTER condition:
    # per the SPARQL algebra the condition evaluates at the *inner*
    # LeftJoin where ?w is still unbound (false), while the flattened
    # branch would see ?w bound by the outer join — so the query must
    # be rejected, not silently answered against the wrong semantics.
    p0, p1, p2 = (peer_namespace(i).knows.n3() for i in range(3))
    text = (
        f"SELECT ?x ?z ?w WHERE {{ {{ ?x {p0} ?y "
        f"OPTIONAL {{ ?y {p1} ?z FILTER(?z != ?w) }} }} . ?w {p2} ?v }}"
    )
    with pytest.raises(UnsupportedSparqlError, match="well-designed"):
        sparql_to_branches(text)


# ---------------------------------------------------------------------------
# Single-graph oracle agreement (plan executor vs reference algebra)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "text_factory",
    [federated_optional_sparql, federated_optional_filter_sparql],
)
def test_single_graph_plan_matches_reference_on_optional(
    merged, text_factory
):
    ast = parse_query(text_factory())
    node = translate_group(ast.where)
    head = ast.projected()
    plan_rows = select_rows(merged, node, head)
    reference = {
        tuple(mu.get(v) for v in head)
        for mu in evaluate_algebra(merged, node)
    }
    assert plan_rows == reference


# ---------------------------------------------------------------------------
# Randomized equivalence with OPTIONAL in the mix
# ---------------------------------------------------------------------------


def _random_optional_query(rng, peers=3):
    """A random SELECT with a required BGP and 1-2 OPTIONAL blocks."""

    def predicate():
        ns = peer_namespace(rng.randrange(peers))
        return (ns.knows if rng.random() < 0.7 else ns.age).n3()

    required_vars = ["?x", "?y", "?z"]
    optional_vars = ["?o1", "?o2"]

    def required_bgp():
        patterns = []
        for _ in range(rng.randint(1, 2)):
            s = rng.choice(required_vars)
            o = rng.choice(
                required_vars
                + [SHARED.term(f"e{rng.randrange(30)}").n3()]
            )
            patterns.append(f"{s} {predicate()} {o} .")
        return " ".join(patterns)

    def optional_block(var):
        join_var = rng.choice(required_vars)
        body = f"{join_var} {predicate()} {var} ."
        if rng.random() < 0.4:
            right = (
                rng.choice(required_vars)
                if rng.random() < 0.5
                else SHARED.term(f"e{rng.randrange(30)}").n3()
            )
            op = rng.choice(["=", "!="])
            body += f" FILTER({var} {op} {right})"
        return f"OPTIONAL {{ {body} }}"

    parts = [required_bgp()]
    parts.append(optional_block("?o1"))
    if rng.random() < 0.4:
        parts.append(optional_block("?o2"))
    body = " ".join(parts)
    projection = " ".join(
        rng.sample(required_vars, rng.randint(1, 2)) + ["?o1"]
    )
    return f"SELECT {projection} WHERE {{ {body} }}"


@pytest.mark.parametrize("seed", range(10))
def test_randomized_optional_matches_single_graph_planner(
    system, merged, seed
):
    rng = random.Random(seed)
    for _ in range(4):
        text = _random_optional_query(rng)
        try:
            assert_all_strategies_match(system, merged, text)
        except UnsupportedSparqlError:
            pytest.skip("randomized query fell outside the fragment")
