"""Shared fixtures for the test suite.

Ensures ``src/`` is importable even when the package is not installed,
then exposes the small graphs, workloads and peer systems most test
modules build on.
"""

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import (
    Literal,
    Variable,
    reset_blank_node_counter,
)
from repro.rdf.triples import Triple
from repro.workload.generators import random_graph

EX = Namespace("http://example.org/")


@pytest.fixture(autouse=True)
def _deterministic_blank_nodes():
    """Fresh blank-node labels start at 0 in every test."""
    reset_blank_node_counter()
    yield


@pytest.fixture
def ex():
    """The shared example namespace."""
    return EX


@pytest.fixture
def film_graph():
    """A hand-written graph mirroring the paper's film-domain examples."""
    g = Graph(name="films")
    spiderman = EX.term("Spiderman")
    raimi = EX.term("Raimi")
    directed = EX.term("directedBy")
    year = EX.term("year")
    title = EX.term("title")
    g.add(Triple(spiderman, directed, raimi))
    g.add(Triple(spiderman, year, Literal("2002")))
    g.add(Triple(spiderman, title, Literal("Spider-Man", language="en")))
    g.add(Triple(EX.term("DarkMan"), directed, raimi))
    g.add(Triple(EX.term("DarkMan"), year, Literal("1990")))
    return g


@pytest.fixture
def medium_random_graph():
    """A seeded ~300-triple generator graph (no blanks)."""
    return random_graph(triples=300, seed=5)


@pytest.fixture
def blanky_random_graph():
    """A seeded generator graph with a 30% blank-node fraction."""
    return random_graph(triples=200, seed=9, blank_fraction=0.3)


@pytest.fixture
def path_query_2(medium_random_graph):
    """A 2-hop path query over the generator vocabulary."""
    predicates = sorted(medium_random_graph.predicates())[:2]
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return GraphPatternQuery(
        (x, z), make_pattern((x, predicates[0], y), (y, predicates[1], z))
    )


@pytest.fixture
def three_peer_chain():
    """A 3-peer chain RPS with hand-computable certain answers.

    peer0 stores ``a knows0 b`` and ``b knows0 c``; assertions translate
    ``knows0 -> knows1 -> knows2``; peer1 and peer2 each hold one local
    fact; one equivalence identifies ``peer0:a`` with ``peer1:d``.
    Tests assert the exact certain-answer sets derived in
    ``tests/test_chase.py``.
    """
    from repro.peers.mappings import EquivalenceMapping, GraphMappingAssertion
    from repro.peers.system import RPS

    ns = [Namespace(f"http://peer{i}.example.org/") for i in range(3)]
    knows = [n.term("knows") for n in ns]
    a, b, c = (ns[0].term(x) for x in "abc")
    d, e = ns[1].term("d"), ns[1].term("e")
    f, g = ns[2].term("f"), ns[2].term("g")

    graphs = {
        "peer0": Graph([Triple(a, knows[0], b), Triple(b, knows[0], c)]),
        "peer1": Graph([Triple(d, knows[1], e)]),
        "peer2": Graph([Triple(f, knows[2], g)]),
    }

    def translation(i, j):
        x, y = Variable("x"), Variable("y")
        return GraphMappingAssertion(
            GraphPatternQuery((x, y), make_pattern((x, knows[i], y))),
            GraphPatternQuery((x, y), make_pattern((x, knows[j], y))),
            source_peer=f"peer{i}",
            target_peer=f"peer{j}",
            label=f"peer{i}->peer{j}",
        )

    rps = RPS.from_graphs(
        graphs,
        assertions=[translation(0, 1), translation(1, 2)],
        equivalences=[EquivalenceMapping(a, d)],
    )
    terms = {
        "a": a, "b": b, "c": c, "d": d, "e": e, "f": f, "g": g,
        "knows": knows,
    }
    return rps, terms
