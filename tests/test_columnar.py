"""Columnar batch engine and plan cache: equivalence and invalidation.

Three layers of guarantees:

* the batch engine (:mod:`repro.sparql.batch`) returns exactly the
  reference evaluator's solution set — and the row engine's — on
  randomized BGP/UNION/OPTIONAL/FILTER/ORDER/LIMIT queries;
* the cross-query plan cache serves byte-identical answers on hits,
  verifiably skips parse and plan, and is invalidated by graph
  mutation (local) and statistics-epoch bumps (federated);
* the graph count probes (``count_ids``/``count_pattern``) answer
  every shape from leaf lengths, matching brute-force enumeration.

A ``slow``-marked test repeats the equivalence and the >=5x batch win
at the 1M-triple bench scale (excluded from tier-1; see pytest.ini).
"""

import random
import time

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.sparql import engine
from repro.sparql.algebra import (
    evaluate_algebra,
    reference_select,
    translate_group,
)
from repro.sparql.batch import (
    UNBOUND,
    Batch,
    batch_top_k,
    build_batch_plan,
    extend_bindings_batch,
    select_id_rows_batch,
)
from repro.sparql.cache import PlanCache, default_plan_cache, nsm_fingerprint
from repro.sparql.engine import execute, select
from repro.sparql.parser import parse_query
from repro.sparql.plan import plan_bgp, select_id_rows
from repro.gpq.evaluation import compile_conjunct, extend_id_bindings
from repro.workload.generators import GeneratorConfig, random_entity_graph

NS = "http://gen.example.org/"


def fanout_graph(scale: int, seed: int = 11) -> Graph:
    """The bench's higher-fanout workload shape (multi-valued preds)."""
    return random_entity_graph(
        GeneratorConfig(
            entities=max(8, scale // 50),
            predicates=20,
            triples=scale,
            attributes=max(4, scale // 50),
            seed=seed,
        )
    )


# ---------------------------------------------------------------------------
# Randomized equivalence fuzz
# ---------------------------------------------------------------------------


def random_queries(rng: random.Random, count: int):
    """Yield (query text, has_order) covering the supported fragment."""

    def pattern(vars_pool):
        subject = rng.choice(vars_pool + [f"<{NS}e{rng.randint(0, 15)}>"])
        predicate = rng.choice(
            [f"<{NS}p{i}>" for i in range(4)]
            + [f"<{NS}value>", rng.choice(vars_pool)]
        )
        object_ = rng.choice(
            vars_pool
            + [f"<{NS}e{rng.randint(0, 15)}>", f'"{rng.randint(0, 99)}"']
        )
        return f"{subject} {predicate} {object_} ."

    for _ in range(count):
        vars_pool = ["?a", "?b", "?c", "?d"][: rng.randint(2, 4)]
        group = " ".join(pattern(vars_pool) for _ in range(rng.randint(1, 3)))
        shape = rng.randint(0, 4)
        if shape == 1:
            group = (
                f"{{ {group} }} UNION "
                f"{{ {' '.join(pattern(vars_pool) for _ in range(2))} }}"
            )
        elif shape == 2:
            group += (
                f" OPTIONAL {{ {pattern(vars_pool)} }}"
            )
        elif shape == 3:
            left = rng.choice(vars_pool)
            right = rng.choice(
                vars_pool + [f'"{rng.randint(0, 99)}"', '"unseen-term"']
            )
            op = rng.choice(["=", "!="])
            group += f" FILTER({left} {op} {right})"
        elif shape == 4:
            group = (
                f"{{ {group} }} UNION {{ {pattern(vars_pool)} }} "
                f"OPTIONAL {{ {pattern(vars_pool)} }}"
            )
        projected = " ".join(vars_pool)
        text = f"SELECT {projected} WHERE {{ {group} }}"
        has_order = False
        modifier = rng.randint(0, 3)
        if modifier == 1:
            direction = rng.choice(["", "DESC"])
            key = rng.choice(vars_pool)
            order = f"{direction}({key})" if direction else key
            text += f" ORDER BY {order}"
            has_order = True
            if rng.random() < 0.5:
                text += f" LIMIT {rng.randint(0, 10)}"
        elif modifier == 2:
            text += f" OFFSET {rng.choice([0, 3])} LIMIT {rng.randint(0, 8)}"
        yield text, has_order


@pytest.mark.parametrize("seed", [3, 17, 29])
def test_fuzz_batch_equals_reference_and_row_engine(seed):
    rng = random.Random(seed)
    graph = random_entity_graph(
        GeneratorConfig(
            entities=18, predicates=4, triples=260, attributes=40, seed=seed
        )
    )
    for text, has_order in random_queries(rng, 30):
        ast = parse_query(text)
        node = translate_group(ast.where)
        projected = ast.projected()
        # Layer 1: WHERE-clause solution sets, all three evaluators.
        reference = {
            tuple(
                graph.term_id(sol[v]) if v in sol else None
                for v in projected
            )
            for sol in evaluate_algebra(graph, node)
        }
        batch_rows = select_id_rows_batch(graph, node, projected)
        row_rows = select_id_rows(graph, node, projected)
        assert batch_rows == reference, text
        assert row_rows == reference, text
        # Layer 2: full engine output against the oracle, twice — the
        # second execution takes the plan-cache hit path and must not
        # change the answer.
        expected = reference_select(graph, ast)
        first = select(graph, text).rows
        second = select(graph, text).rows
        assert first == second, text
        if has_order or (ast.limit is None and ast.offset is None):
            assert first == expected, text
        else:
            # Unordered slices admit any distinct window of the right
            # cardinality.
            full = {
                tuple(sol.get(v) for v in projected)
                for sol in evaluate_algebra(graph, node)
            }
            assert len(first) == len(expected), text
            assert len(set(first)) == len(first), text
            assert set(first) <= full, text


def test_fuzz_includes_blank_exclusion_path():
    graph = random_entity_graph(
        GeneratorConfig(
            entities=14,
            predicates=3,
            triples=150,
            attributes=20,
            blank_fraction=0.3,
            seed=5,
        )
    )
    text = f"SELECT ?a ?b WHERE {{ ?a <{NS}p0> ?b }} ORDER BY ?b"
    with_blanks = select(graph, text).rows
    without = select(graph, text, include_blanks=False).rows
    assert set(without) <= set(with_blanks)
    assert with_blanks == reference_select(graph, parse_query(text))


# ---------------------------------------------------------------------------
# Plan cache: local engine
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    default_plan_cache.clear()
    yield
    default_plan_cache.clear()


def test_plan_cache_hit_skips_parse_and_plan(monkeypatch):
    graph = fanout_graph(2000)
    text = f"SELECT ?a ?c WHERE {{ ?a <{NS}p0> ?b . ?b <{NS}p1> ?c }}"
    first = select(graph, text).rows
    stats = engine.plan_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 0

    def _no_parse(*args, **kwargs):
        raise AssertionError("cache hit must not re-parse")

    def _no_plan(*args, **kwargs):
        raise AssertionError("cache hit must not re-plan")

    monkeypatch.setattr(engine, "parse_query", _no_parse)
    monkeypatch.setattr(engine, "build_batch_plan", _no_plan)
    monkeypatch.setattr(engine, "build_plan", _no_plan)
    second = select(graph, text).rows
    assert second == first
    stats = engine.plan_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_plan_cache_invalidated_by_graph_mutation():
    graph = fanout_graph(1000)
    text = f"SELECT ?a ?b WHERE {{ ?a <{NS}p0> ?b }}"
    before = select(graph, text).rows
    subject = IRI(f"{NS}e0")
    graph.add(Triple(subject, IRI(f"{NS}p0"), IRI(f"{NS}e1")))
    after = select(graph, text).rows
    # The mutation changed the epoch, so the second execution was a
    # fresh plan (a miss), and the new triple is visible.
    assert engine.plan_cache_stats()["misses"] == 2
    assert set(before) <= set(after)
    assert after == reference_select(graph, parse_query(text))


def test_plan_cache_distinguishes_graphs_and_nsm():
    g1 = fanout_graph(500, seed=1)
    g2 = fanout_graph(500, seed=2)
    text = f"SELECT ?a ?b WHERE {{ ?a <{NS}p0> ?b }}"
    select(g1, text)
    select(g2, text)
    stats = engine.plan_cache_stats()
    assert stats["misses"] == 2  # distinct graph serials, no collision


def test_plan_cache_lru_and_counters():
    cache = PlanCache(capacity=2)
    assert cache.get("a") is None  # miss
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # hit; refreshes recency
    cache.put("c", 3)  # evicts "b" (LRU)
    assert cache.get("b") is None
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats == {"hits": 2, "misses": 2, "size": 2, "capacity": 2}
    cache.clear()
    assert cache.stats() == {
        "hits": 0,
        "misses": 0,
        "size": 0,
        "capacity": 2,
    }
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_nsm_fingerprint_is_binding_based():
    from repro.rdf.namespaces import NamespaceManager

    a = NamespaceManager()
    b = NamespaceManager()
    assert nsm_fingerprint(a) == nsm_fingerprint(b)
    b.bind("ex", NS)
    assert nsm_fingerprint(a) != nsm_fingerprint(b)
    assert nsm_fingerprint(None) is None


# ---------------------------------------------------------------------------
# Graph count probes
# ---------------------------------------------------------------------------


def test_count_ids_matches_enumeration_on_all_shapes():
    graph = fanout_graph(1500, seed=3)
    ids = list(graph.id_triples())
    rng = random.Random(9)
    samples = rng.sample(ids, 25)
    for s, p, o in samples:
        for args in [
            (s, None, None),
            (None, p, None),
            (None, None, o),
            (s, p, None),
            (s, None, o),
            (None, p, o),
            (s, p, o),
            (None, None, None),
        ]:
            expected = sum(1 for _ in graph.triples_ids(*args))
            assert graph.count_ids(*args) == expected, args
    # Absent IDs count zero without raising.
    missing = max(tid for triple in ids for tid in triple) + 1000
    assert graph.count_ids(subject=missing) == 0
    assert graph.count_ids(predicate=missing) == 0
    assert graph.count_ids(object=missing) == 0


def test_count_pattern_repeated_variable_shapes():
    graph = Graph()
    e = [IRI(f"{NS}r{i}") for i in range(4)]
    p = IRI(f"{NS}loop")
    q = IRI(f"{NS}other")
    graph.add(Triple(e[0], p, e[0]))  # s == o
    graph.add(Triple(e[0], p, e[1]))
    graph.add(Triple(e[1], q, e[1]))  # s == o under q
    graph.add(Triple(e[2], p, e[3]))
    x, y = Variable("x"), Variable("y")
    assert graph.count_pattern(TriplePattern(x, p, x)) == 1
    assert graph.count_pattern(TriplePattern(x, y, x)) == 2
    assert graph.count_pattern(TriplePattern(x, x, y)) == 0
    assert graph.count_pattern(TriplePattern(x, x, x)) == 0
    # Brute-force cross-check via match().
    for tp in [
        TriplePattern(x, p, x),
        TriplePattern(x, y, x),
        TriplePattern(x, x, y),
        TriplePattern(x, y, y),
    ]:
        assert graph.count_pattern(tp) == sum(1 for _ in graph.match(tp))


def test_counts_survive_removal_and_copy():
    graph = fanout_graph(400, seed=4)
    triple = next(iter(graph))
    epoch_before = graph.epoch
    count_before = graph.count(predicate=triple.predicate)
    copied = graph.copy()
    graph.remove(triple)
    assert graph.epoch > epoch_before
    assert graph.count(predicate=triple.predicate) == count_before - 1
    # The copy is unaffected and maintains its own counts.
    assert copied.count(predicate=triple.predicate) == count_before
    assert copied.serial != graph.serial


# ---------------------------------------------------------------------------
# Columnar internals
# ---------------------------------------------------------------------------


def test_extend_bindings_batch_preserves_row_loop_order():
    graph = fanout_graph(800, seed=6)
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    first = compile_conjunct(graph, TriplePattern(a, IRI(f"{NS}p0"), b))
    rows = [{}]
    for slots in [
        first,
        compile_conjunct(graph, TriplePattern(b, IRI(f"{NS}p1"), c)),
        compile_conjunct(graph, TriplePattern(a, IRI(f"{NS}p2"), c)),
    ]:
        expected = []
        expected_sel = []
        for i, partial in enumerate(rows):
            for extended in extend_id_bindings(graph, slots, partial):
                expected.append(extended)
                expected_sel.append(i)
        got, got_sel = extend_bindings_batch(graph, slots, rows)
        assert got == expected  # exact order, not just set equality
        assert got_sel == expected_sel
        rows = got or rows
        if not got:
            break


def test_batch_id_rows_translates_unbound():
    v, w = Variable("v"), Variable("w")
    batch = Batch((v, w), [[1, 2], [UNBOUND, 3]], 2)
    assert batch.id_rows([v, w]) == {(1, None), (2, 3)}
    assert batch.id_rows([w]) == {(None,), (3,)}
    assert batch.id_rows([Variable("absent")]) == {(None,)}


def test_batch_top_k_matches_engine_order():
    graph = fanout_graph(600, seed=8)
    text = (
        f"SELECT ?a ?b WHERE {{ ?a <{NS}p0> ?b }} "
        "ORDER BY DESC(?b) ?a OFFSET 2 LIMIT 5"
    )
    ast = parse_query(text)
    node = translate_group(ast.where)
    batch = build_batch_plan(graph, node).execute()
    rows = batch_top_k(
        graph, batch, ast.projected(), ast.order, ast.offset or 0, ast.limit
    )
    decoded = [
        tuple(None if tid is None else graph.decode_id(tid) for tid in row)
        for row in rows
    ]
    assert decoded == reference_select(graph, ast)


def test_shared_planner_order():
    graph = fanout_graph(500, seed=2)
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    patterns = [
        TriplePattern(a, IRI(f"{NS}p0"), b),
        TriplePattern(b, IRI(f"{NS}p1"), c),
    ]
    ordered, compiled, estimate = plan_bgp(graph, patterns)
    assert len(ordered) == len(compiled) == 2
    assert estimate >= 0.0
    # The batch BGP reuses the same ordering (one planner, two engines).
    node = translate_group(parse_query(
        f"SELECT ?a WHERE {{ ?a <{NS}p0> ?b . ?b <{NS}p1> ?c }}"
    ).where)
    plan = build_batch_plan(graph, node)
    assert [tp.n3() for tp in plan.ordered] == [tp.n3() for tp in ordered]


# ---------------------------------------------------------------------------
# ASK and bare-LIMIT keep the streaming row engine
# ---------------------------------------------------------------------------


def test_ask_and_bare_limit_semantics_unchanged():
    graph = fanout_graph(300, seed=1)
    assert execute(graph, f"ASK {{ ?a <{NS}p0> ?b }}").value is True
    assert execute(
        graph, f"ASK {{ ?a <{NS}missing-pred> ?b }}"
    ).value is False
    limited = select(graph, f"SELECT ?a WHERE {{ ?a <{NS}p0> ?b }} LIMIT 3")
    assert len(limited.rows) == 3
    assert len(set(limited.rows)) == 3


# ---------------------------------------------------------------------------
# 1M-scale equivalence + performance gate (slow CI job only)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_batch_engine_1m_equivalence_and_speedup():
    graph = fanout_graph(1_000_000)
    text = f"SELECT ?a ?c WHERE {{ ?a <{NS}p0> ?b . ?b <{NS}p1> ?c }}"
    ast = parse_query(text)
    node = translate_group(ast.where)
    projected = ast.projected()

    start = time.perf_counter()
    row_rows = select_id_rows(graph, node, projected)
    row_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = build_batch_plan(graph, node).execute()
    batch_seconds = time.perf_counter() - start
    batch_rows = batch.id_rows(projected)

    assert batch_rows == row_rows
    assert row_seconds >= 5.0 * batch_seconds, (
        f"batch {batch_seconds:.2f}s vs row {row_seconds:.2f}s"
    )
