"""Early termination through the federated streaming layer (PR 6).

Demand propagation must (a) leave answer sets correct — limited and
ordered federated queries agree with the single-graph oracle across
every strategy — and (b) actually save work: a ``LIMIT`` over a deep
multi-batch bound-join pipeline ships strictly fewer messages and
finishes strictly earlier than the unlimited run, and ``ASK``
short-circuits after the first surviving row.
"""

import random

import pytest

from repro.federation.executor import STRATEGIES, FederatedExecutor
from repro.federation.network import NetworkModel
from repro.federation.plan import SliceNode, TopKNode
from repro.sparql.algebra import (
    evaluate_algebra,
    reference_select,
    translate_group,
)
from repro.sparql.parser import parse_query
from repro.workload.federation import (
    federated_ask_sparql,
    federated_limit_sparql,
    federated_rps,
    federated_topk_sparql,
)
from repro.workload.topologies import peer_namespace

#: Slow enough per-solution that shipped rows dominate the simulated
#: clock; batch_size=1 makes every bound-join binding its own message,
#: the deep multi-batch shape demand propagation exists to cut short.
DEEP_NETWORK = dict(
    latency_seconds=0.01, per_solution_seconds=0.01, per_triple_seconds=0.05
)


@pytest.fixture(scope="module")
def system():
    return federated_rps(peers=3, entities=20, facts=60, seed=7)


@pytest.fixture(scope="module")
def merged(system):
    return system.stored_database()


def deep_executor(system):
    return FederatedExecutor(
        system,
        network=NetworkModel(**DEEP_NETWORK),
        batch_size=1,
        concurrency=4,
    )


def stats_for(system, text, strategy):
    result = deep_executor(system).execute(text, strategy)
    return result, result.stats


# ---------------------------------------------------------------------------
# The work actually stops: messages and makespan
# ---------------------------------------------------------------------------


def test_limit_cuts_messages_and_time_on_deep_bound_join(system):
    """Serial bound joins: LIMIT 10 must stop issuing sub-queries."""
    unlimited, full = stats_for(
        system, federated_limit_sparql(hops=3), "bound"
    )
    limited, cut = stats_for(
        system, federated_limit_sparql(hops=3, limit=10), "bound"
    )
    assert len(limited.rows) == 10
    assert len(unlimited.rows) > 10
    assert cut.messages < full.messages
    assert cut.elapsed_seconds < full.elapsed_seconds
    # A deep pipeline's savings are large, not marginal.
    assert cut.messages * 10 < full.messages


def test_limit_cuts_messages_and_time_on_pipelined_runtime(system):
    """PARALLEL strategy: demand flows through the recorded runtime.

    The anchored path keeps the unlimited plan on bound joins too, so
    both runs ship the same kind of messages and the comparison
    isolates what the demand cap saves.
    """
    unlimited, full = stats_for(
        system, federated_limit_sparql(hops=3, anchor=3), "parallel"
    )
    limited, cut = stats_for(
        system, federated_limit_sparql(hops=3, limit=10, anchor=3), "parallel"
    )
    assert len(limited.rows) == 10
    assert len(unlimited.rows) > 10
    assert cut.messages < full.messages
    assert cut.elapsed_seconds < full.elapsed_seconds


def test_ask_short_circuits_the_pipeline(system):
    """ASK plans with demand one: first surviving row ends the run."""
    enumerate_all, full = stats_for(
        system, federated_limit_sparql(hops=3), "bound"
    )
    asked, cut = stats_for(system, federated_ask_sparql(hops=3), "bound")
    assert asked.rows == {()}
    assert cut.messages < full.messages
    assert cut.messages * 10 < full.messages


def test_ask_agrees_with_oracle_for_empty_answers(system, merged):
    # hops=4 names peer3's predicate, which no peer stores: provably
    # empty, and the federated ASK must say so without inventing rows.
    text = federated_ask_sparql(hops=4)
    ast = parse_query(text)
    expected = bool(evaluate_algebra(merged, translate_group(ast.where)))
    for strategy in STRATEGIES:
        result = deep_executor(system).execute(text, strategy)
        assert bool(result.rows) == expected, strategy


def test_unlimited_traffic_is_unchanged_by_the_demand_machinery(system):
    """No cap, no behaviour change: a query without modifiers must cost
    exactly what it did before demand propagation existed (the lazy
    interpreter drains fully and reproduces the eager batch order)."""
    text = federated_limit_sparql(hops=2)
    first = deep_executor(system).execute(text, "parallel")
    second = deep_executor(system).execute(text, "parallel")
    assert first.stats.messages == second.stats.messages
    assert first.stats.elapsed_seconds == second.stats.elapsed_seconds


# ---------------------------------------------------------------------------
# Answers stay right while stopping early
# ---------------------------------------------------------------------------


def test_limited_answers_are_a_window_of_the_oracle(system, merged):
    text = federated_limit_sparql(hops=3, limit=10)
    ast = parse_query(text)
    full = set(reference_select(merged, parse_query(federated_limit_sparql(hops=3))))
    for strategy in STRATEGIES:
        result = deep_executor(system).execute(text, strategy)
        assert len(result.rows) == 10, strategy
        assert result.rows <= full, strategy


def test_offset_past_end_and_limit_zero_are_empty(system):
    for text in (
        federated_limit_sparql(hops=2, limit=0),
        federated_limit_sparql(hops=2, limit=3, offset=10_000),
    ):
        for strategy in STRATEGIES:
            result = deep_executor(system).execute(text, strategy)
            assert result.rows == set(), (strategy, text)


def test_federated_topk_matches_oracle_exactly(system, merged):
    """ORDER BY pins the window: every strategy must return exactly the
    oracle's top-k rows (as a set; the executor reports sets)."""
    text = federated_topk_sparql(hops=2, limit=5)
    expected = set(reference_select(merged, parse_query(text)))
    executor = deep_executor(system)
    for strategy in STRATEGIES:
        result = executor.execute(text, strategy)
        assert result.rows == expected, strategy


def test_run_all_strategies_accepts_divergent_unordered_windows(system):
    # The built-in cross-checker must compare cardinality, not content,
    # for unordered slices — different strategies legally pick
    # different windows.
    results = deep_executor(system).run_all_strategies(
        federated_limit_sparql(hops=3, limit=7)
    )
    assert all(len(r.rows) == 7 for r in results.values())


def test_plan_root_reflects_the_modifier(system):
    executor = deep_executor(system)
    sliced = executor.execute(federated_limit_sparql(hops=2, limit=4))
    assert isinstance(sliced.plans[0], SliceNode)
    ordered = executor.execute(federated_topk_sparql(hops=2, limit=4))
    assert isinstance(ordered.plans[0], TopKNode)


def test_explain_renders_slice_and_topk(system):
    executor = deep_executor(system)
    sliced = executor.explain(federated_limit_sparql(hops=2, limit=4, offset=1))
    assert "Slice offset=1 limit=4" in sliced
    ordered = executor.explain(federated_topk_sparql(hops=2, limit=4))
    assert "TopK" in ordered
    assert "desc(?x1)" in ordered


# ---------------------------------------------------------------------------
# Randomized modifier equivalence across every strategy
# ---------------------------------------------------------------------------


def _random_federated_modifier_queries(count, seed, peers=3):
    rng = random.Random(seed)
    names = ["a", "b", "c"]
    predicates = [peer_namespace(k).knows.n3() for k in range(peers)] + [
        peer_namespace(k).age.n3() for k in range(peers)
    ]
    for _ in range(count):
        hops = rng.randint(1, 2)
        body = " . ".join(
            f"?{names[i]} {rng.choice(predicates)} ?{names[i + 1]}"
            for i in range(hops)
        )
        variables = names[: hops + 1]
        projected = rng.sample(variables, rng.randint(1, len(variables)))
        head = " ".join(f"?{v}" for v in projected)
        base = f"SELECT {head} WHERE {{ {body} }}"
        ordered = rng.random() < 0.6
        modifiers = ""
        if ordered:
            conditions = [
                f"DESC(?{v})" if rng.random() < 0.5 else f"?{v}"
                for v in rng.sample(variables, rng.randint(1, 2))
            ]
            modifiers += " ORDER BY " + " ".join(conditions)
        shape = rng.randrange(4)
        if shape == 1:
            modifiers += f" LIMIT {rng.choice([0, 1, 5, 40])}"
        elif shape == 2:
            modifiers += f" OFFSET {rng.choice([2, 1000])}"
        elif shape == 3:
            modifiers += f" OFFSET {rng.choice([0, 3])} LIMIT {rng.randint(1, 9)}"
        yield base, modifiers, ordered


@pytest.mark.parametrize("seed", [5, 29])
def test_randomized_federated_modifier_equivalence(system, merged, seed):
    """Fuzz every strategy against the single-graph oracle.

    Ordered queries must match the oracle's window exactly; unordered
    slices admit any distinct window of the right size drawn from the
    full answer set.
    """
    executor = deep_executor(system)
    for base, modifiers, ordered in _random_federated_modifier_queries(
        12, seed
    ):
        text = base + modifiers
        expected = reference_select(merged, parse_query(text))
        full = set(reference_select(merged, parse_query(base)))
        for strategy in STRATEGIES:
            got = executor.execute(text, strategy).rows
            if ordered:
                assert got == set(expected), (strategy, text)
            else:
                assert len(got) == len(expected), (strategy, text)
                assert got <= full, (strategy, text)
