"""Equivalence tests for the ID-level GPQ evaluator.

The rewritten evaluator must agree with (a) the frozen seed evaluator
from ``repro.bench.baseline`` and (b) the paper's definitions on small
hand-checkable cases, under both the blank-dropping ``Q_D`` and
blank-keeping ``Q*_D`` semantics.
"""

import pytest

from repro.bench.baseline import BaselineGraph, baseline_evaluate_query
from repro.gpq.evaluation import (
    ask,
    evaluate_pattern,
    evaluate_query,
    evaluate_query_star,
    match_pattern_bindings,
)
from repro.gpq.bindings import SolutionMapping
from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery, obj_query, pred_query, subj_query
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import BlankNode, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.workload.generators import random_graph
from repro.workload.queries import path_query, random_queries, star_query

EX = Namespace("http://example.org/")
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("blanks", [0.0, 0.3])
def test_query_star_agrees_with_seed_evaluator(seed, blanks):
    graph = random_graph(triples=250, seed=seed, blank_fraction=blanks)
    baseline = BaselineGraph(graph)
    predicates = sorted(graph.predicates())
    for query in random_queries(predicates, count=8, max_length=3, seed=seed):
        expected = baseline_evaluate_query(baseline, query)
        assert evaluate_query_star(graph, query) == expected
        assert evaluate_query_star(graph, query, optimize=False) == expected


def test_query_drops_blank_tuples_star_keeps_them():
    p = EX.term("p")
    b = BlankNode("null0")
    graph = Graph([Triple(EX.term("a"), p, b), Triple(EX.term("a"), p, EX.term("c"))])
    query = GraphPatternQuery((Y,), make_pattern((X, p, Y)))
    assert evaluate_query_star(graph, query) == {(b,), (EX.term("c"),)}
    assert evaluate_query(graph, query) == {(EX.term("c"),)}


def test_evaluate_pattern_domain_covers_all_variables(film_graph):
    pattern = make_pattern(
        (X, EX.term("directedBy"), Y), (X, EX.term("year"), Z)
    )
    omega = evaluate_pattern(film_graph, pattern)
    assert omega, "expected at least one mapping"
    for mu in omega:
        assert mu.domain() == {X, Y, Z}
        # Every conjunct instantiated by mu must be a graph triple.
        for tp in pattern.conjuncts():
            assert tp.to_triple(mu.as_dict()) in film_graph


def test_join_across_conjuncts_is_consistent(film_graph):
    directed, year = EX.term("directedBy"), EX.term("year")
    query = GraphPatternQuery(
        (X, Z), make_pattern((X, directed, EX.term("Raimi")), (X, year, Z))
    )
    assert evaluate_query(film_graph, query) == {
        (EX.term("Spiderman"), Literal("2002")),
        (EX.term("DarkMan"), Literal("1990")),
    }


def test_repeated_variable_across_positions():
    p = EX.term("p")
    a, b = EX.term("a"), EX.term("b")
    graph = Graph([Triple(a, p, a), Triple(a, p, b)])
    query = GraphPatternQuery((X,), make_pattern((X, p, X)))
    assert evaluate_query(graph, query) == {(a,)}


def test_unknown_ground_term_prunes_to_empty(medium_random_graph):
    query = GraphPatternQuery(
        (X,), make_pattern((X, EX.term("never-seen-predicate"), Y))
    )
    assert evaluate_query(medium_random_graph, query) == set()
    assert not ask(medium_random_graph, query)


def test_literal_subject_conjunct_yields_empty(medium_random_graph):
    predicate = sorted(medium_random_graph.predicates())[0]
    query = GraphPatternQuery(
        (X,), make_pattern((Literal("5"), predicate, X))
    )
    assert evaluate_query(medium_random_graph, query) == set()


def test_boolean_ask_semantics(film_graph):
    ground_true = GraphPatternQuery(
        (), make_pattern((EX.term("Spiderman"), EX.term("directedBy"), EX.term("Raimi")))
    )
    ground_false = GraphPatternQuery(
        (), make_pattern((EX.term("Raimi"), EX.term("directedBy"), EX.term("Spiderman")))
    )
    assert ask(film_graph, ground_true)
    assert not ask(film_graph, ground_false)
    assert evaluate_query_star(film_graph, ground_true) == {()}
    assert evaluate_query_star(film_graph, ground_false) == set()


def test_probe_queries(film_graph):
    spiderman = EX.term("Spiderman")
    raimi = EX.term("Raimi")
    directed = EX.term("directedBy")
    subj_answers = evaluate_query_star(film_graph, subj_query(spiderman))
    assert (directed, raimi) in subj_answers
    assert len(subj_answers) == 3
    pred_answers = evaluate_query_star(film_graph, pred_query(directed))
    assert pred_answers == {
        (spiderman, raimi),
        (EX.term("DarkMan"), raimi),
    }
    obj_answers = evaluate_query_star(film_graph, obj_query(raimi))
    assert obj_answers == {
        (spiderman, directed),
        (EX.term("DarkMan"), directed),
    }


def test_conjunct_order_does_not_change_results(medium_random_graph):
    predicates = sorted(medium_random_graph.predicates())[:3]
    query = path_query(predicates, project_all=True)
    reversed_pattern = make_pattern(*reversed(query.pattern.conjuncts()))
    reversed_query = GraphPatternQuery(query.head, reversed_pattern)
    assert evaluate_query_star(medium_random_graph, query) == evaluate_query_star(
        medium_random_graph, reversed_query
    )


def test_match_pattern_bindings_extends_partial(film_graph):
    partial = SolutionMapping({X: EX.term("Spiderman")})
    results = list(
        match_pattern_bindings(
            film_graph, TriplePattern(X, EX.term("directedBy"), Y), partial
        )
    )
    assert results == [
        SolutionMapping({X: EX.term("Spiderman"), Y: EX.term("Raimi")})
    ]


def test_star_query_on_workload(medium_random_graph):
    predicates = sorted(medium_random_graph.predicates())[:2]
    query = star_query(predicates)
    baseline = BaselineGraph(medium_random_graph)
    assert evaluate_query_star(medium_random_graph, query) == baseline_evaluate_query(
        baseline, query
    )
