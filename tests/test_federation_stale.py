"""Statistics staleness: TTL catalog, charged refreshes, plan recovery."""

import pytest

from repro.errors import FederationError
from repro.federation import (
    FederatedExecutor,
    NetworkModel,
    NetworkStats,
    StatisticsCatalog,
)
from repro.federation.endpoint import PeerEndpoint
from repro.gpq.evaluation import evaluate_query_star
from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.peers.system import RPS
from repro.workload.federation import (
    federated_path_query,
    federated_rps,
    federated_selective_query,
    grow_knows_relation,
)
from repro.workload.topologies import peer_namespace


def _scenario_model():
    """Volume-sensitive parameters: pull is cheap per triple, so a small
    relation is worth pulling — until it silently grows."""
    return NetworkModel(
        latency_seconds=0.005,
        per_solution_seconds=0.0001,
        per_triple_seconds=0.000002,
    )


# ---------------------------------------------------------------------------
# Catalog unit behaviour
# ---------------------------------------------------------------------------


def _endpoint():
    ns = peer_namespace(0)
    graph = Graph(name="p0")
    graph.add(Triple(ns.term("a"), ns.knows, ns.term("b")))
    return PeerEndpoint("p0", graph), ns


def test_live_catalog_reads_free_and_fresh():
    endpoint, ns = _endpoint()
    network = NetworkModel()
    catalog = StatisticsCatalog(network, ttl=None)
    stats = NetworkStats()
    catalog.begin_execution(stats)
    tp = TriplePattern(Variable("x"), ns.knows, Variable("y"))
    assert catalog.pattern_count(endpoint, tp) == 1
    endpoint.graph.add(Triple(ns.term("b"), ns.knows, ns.term("c")))
    assert catalog.pattern_count(endpoint, tp) == 2  # live
    assert stats.messages == 0  # and free


def test_ttl_zero_refreshes_every_execution():
    endpoint, ns = _endpoint()
    network = NetworkModel()
    catalog = StatisticsCatalog(network, ttl=0)
    tp = TriplePattern(Variable("x"), ns.knows, Variable("y"))
    for epoch in range(1, 4):
        stats = NetworkStats()
        catalog.begin_execution(stats)
        catalog.pattern_count(endpoint, tp)
        catalog.relation_count(endpoint, tp)
        assert stats.stats_refreshes == 1  # one refresh per endpoint
        assert stats.messages == 1


def test_cached_counts_age_until_ttl_lapses():
    endpoint, ns = _endpoint()
    catalog = StatisticsCatalog(NetworkModel(), ttl=2)
    tp = TriplePattern(Variable("x"), ns.knows, Variable("y"))

    def read(expect_refresh):
        stats = NetworkStats()
        catalog.begin_execution(stats)
        value = catalog.pattern_count(endpoint, tp)
        assert (stats.stats_refreshes == 1) is expect_refresh
        return value

    assert read(True) == 1  # epoch 1 fetches
    endpoint.graph.add(Triple(ns.term("b"), ns.knows, ns.term("c")))
    assert read(False) == 1  # epochs 2 and 3 serve the stale value
    assert read(False) == 1
    assert read(True) == 2  # epoch 4: TTL lapsed, refresh sees growth


def test_catalog_validation():
    with pytest.raises(FederationError, match="ttl"):
        StatisticsCatalog(NetworkModel(), ttl=-1)
    endpoint, ns = _endpoint()
    catalog = StatisticsCatalog(NetworkModel(), ttl=1)
    with pytest.raises(FederationError, match="begin_execution"):
        catalog.pattern_count(
            endpoint, TriplePattern(Variable("x"), ns.knows, Variable("y"))
        )


# ---------------------------------------------------------------------------
# Stale plans: correctness is untouchable
# ---------------------------------------------------------------------------


def test_stale_zero_count_does_not_prune_answers():
    # peer0 publishes a count of 0 for the anchored pattern, then gains
    # matches; a stale executor must still return them (staleness may
    # degrade the plan, never the answer set).
    ns = peer_namespace(0)
    anchor = ns.term("anchor")
    graph = Graph(name="p0")
    graph.add(Triple(anchor, ns.age, ns.term("x")))  # anchor is in schema
    graph.add(Triple(ns.term("a"), ns.knows, ns.term("b")))
    system = RPS.from_graphs({"p0": graph})
    executor = FederatedExecutor(system, stats_ttl=5)
    query = GraphPatternQuery(
        (Variable("y"),),
        make_pattern((anchor, ns.knows, Variable("y"))),
    )
    assert executor.execute(query).rows == set()  # fetches count 0
    graph.add(Triple(anchor, ns.knows, ns.term("c")))
    stale = executor.execute(query)  # within TTL: count still reads 0
    assert stale.stats.stats_refreshes == 0
    assert stale.rows == evaluate_query_star(
        system.stored_database(), query
    )


@pytest.mark.parametrize("strategy", ["adaptive", "parallel"])
def test_stale_answers_equal_single_graph_after_growth(strategy):
    system = federated_rps(peers=2, entities=20, facts=40, seed=7)
    query = federated_path_query(hops=2)
    executor = FederatedExecutor(system, stats_ttl=10)
    executor.execute(query, strategy)  # fetch statistics
    grow_knows_relation(system, peer=0, extra_facts=300, seed=5)
    stale = executor.execute(query, strategy)
    assert stale.stats.stats_refreshes == 0
    assert stale.rows == evaluate_query_star(
        system.stored_database(), query
    )


# ---------------------------------------------------------------------------
# The degradation-and-recovery workload
# ---------------------------------------------------------------------------


def test_stale_plan_degrades_and_recovers():
    """Hub growth flips the fresh pull-vs-ship decision; the stale
    catalog keeps pulling the (now huge) relation until its TTL lapses,
    then recovers the oracle plan — with refreshes charged as real
    messages."""
    model = _scenario_model()
    system = federated_rps(peers=2, entities=20, facts=40, seed=7)
    query = federated_selective_query(entity=3, hops=2)

    stale_ex = FederatedExecutor(system, network=model, stats_ttl=2)
    first = stale_ex.execute(query)  # epoch 1: fetch + plan
    assert first.stats.stats_refreshes == 2  # one per endpoint
    assert first.decisions[0].action == "pull"  # small relation: pull

    grow_knows_relation(system, peer=0, extra_facts=1500, seed=5, hub=9)

    oracle = FederatedExecutor(system, network=model).execute(query)
    assert oracle.decisions[0].action == "ship"  # fresh stats flip

    stale = stale_ex.execute(query)  # epoch 2: within TTL
    assert stale.stats.stats_refreshes == 0
    assert stale.decisions[0].action == "pull"  # yesterday's plan
    # Degradation: the stale plan transfers the whole grown relation.
    assert stale.stats.transfer_units > 10 * oracle.stats.transfer_units

    stale_ex.execute(query)  # epoch 3: still within TTL
    recovered = stale_ex.execute(query)  # epoch 4: TTL lapsed
    assert recovered.stats.stats_refreshes == 2
    assert recovered.decisions[0].action == "ship"
    assert (
        recovered.stats.transfer_units - recovered.stats.stats_refreshes
        <= oracle.stats.transfer_units
    )

    # Answers never depended on the catalog's age.
    expected = evaluate_query_star(system.stored_database(), query)
    for result in (first, oracle, stale, recovered):
        if result is first:
            continue  # pre-growth answer set differs by construction
        assert result.rows == expected


def test_refreshes_are_real_messages_per_endpoint():
    system = federated_rps(peers=3, entities=20, facts=40, seed=7)
    query = federated_path_query(hops=2)
    executor = FederatedExecutor(system, stats_ttl=0)
    baseline = FederatedExecutor(system).execute(query)
    charged = executor.execute(query)
    assert charged.rows == baseline.rows
    # The path touches peer0 and peer1; each paid one refresh message.
    assert charged.stats.stats_refreshes == 2
    assert (
        charged.stats.messages
        == baseline.stats.messages + charged.stats.stats_refreshes
    )
    for endpoint in ("peer0", "peer1"):
        assert (
            charged.stats.per_endpoint_messages[endpoint]
            == baseline.stats.per_endpoint_messages.get(endpoint, 0) + 1
        )
