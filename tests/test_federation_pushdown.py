"""Federated FILTER/UNION pushdown: answer equality and accounting."""

import random

import pytest

from repro.errors import UnsupportedSparqlError
from repro.federation import ADAPTIVE, STRATEGIES, FederatedExecutor
from repro.sparql.algebra import translate_group
from repro.sparql.ast import SelectQuery
from repro.sparql.bridge import MAX_BRANCHES, sparql_to_branches
from repro.sparql.parser import parse_query
from repro.sparql.plan import select_rows
from repro.workload.federation import SHARED, federated_rps
from repro.workload.topologies import peer_namespace


@pytest.fixture(scope="module")
def system():
    return federated_rps(peers=3, entities=20, facts=60, seed=7)


@pytest.fixture(scope="module")
def merged(system):
    return system.stored_database()


def reference_rows(merged, text):
    ast = parse_query(text)
    head = ast.projected() if isinstance(ast, SelectQuery) else ()
    return select_rows(merged, translate_group(ast.where), head)


def assert_all_strategies_match(system, merged, text):
    executor = FederatedExecutor(system)
    expected = reference_rows(merged, text)
    for strategy in STRATEGIES:
        result = executor.execute(text, strategy)
        assert result.rows == expected, (
            f"{strategy}: {len(result.rows)} != {len(expected)} for {text}"
        )
    return expected


# ---------------------------------------------------------------------------
# Hand-picked shapes
# ---------------------------------------------------------------------------


def test_filter_inside_union_branch_scopes_to_branch(system, merged):
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    anchor = SHARED.term("e3").n3()
    text = (
        f"SELECT ?x ?y WHERE {{ {{ ?x {p0} ?y . FILTER(?x = {anchor}) }} "
        f"UNION {{ ?x {p1} ?y }} }}"
    )
    assert_all_strategies_match(system, merged, text)


def test_union_branches_with_unequal_domains_project_none(system, merged):
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    text = (
        f"SELECT ?x ?y ?w WHERE {{ {{ ?x {p0} ?y }} UNION "
        f"{{ ?x {p1} ?w }} }}"
    )
    expected = assert_all_strategies_match(system, merged, text)
    # Each branch leaves one head variable unbound.
    assert any(None in row for row in expected)


def test_filter_over_join_of_union(system, merged):
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    a0 = peer_namespace(0).age.n3()
    text = (
        f"SELECT ?x ?z WHERE {{ {{ ?x {p0} ?y }} UNION {{ ?x {p1} ?y }} . "
        f"?x {a0} ?z . FILTER(?x != ?y) }}"
    )
    assert_all_strategies_match(system, merged, text)


def test_group_scoped_filter_does_not_see_outer_bindings(system, merged):
    # SPARQL filters scope to their group: ?z is unbound *inside* the
    # braced group, so the filter error-collapses to false there even
    # though the outer pattern binds ?z.  A normalisation that hoists
    # the filter to the flattened branch would wrongly defer it until
    # ?z is bound and return 17 rows here instead of 0 (regression).
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    text = (
        f"SELECT ?x WHERE {{ {{ ?x {p0} ?y . FILTER(?z = ?x) }} "
        f"?z {p1} ?w }}"
    )
    expected = assert_all_strategies_match(system, merged, text)
    assert expected == set()
    # The same filter at top level *is* in scope of both patterns.
    joined = (
        f"SELECT ?x WHERE {{ {{ ?x {p0} ?y }} ?z {p1} ?w . "
        "FILTER(?z = ?x) }"
    )
    assert assert_all_strategies_match(system, merged, joined)


def test_group_scoped_filter_or_branch_survives(system, merged):
    # Inside the group only the ?x-side of the OR is decidable; the
    # ?z-side is out of scope and must simplify away, not kill the row.
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    anchor = SHARED.term("e3").n3()
    text = (
        f"SELECT ?x WHERE {{ {{ ?x {p0} ?y . "
        f"FILTER(?z = ?x || ?x = {anchor}) }} ?z {p1} ?w }}"
    )
    expected = assert_all_strategies_match(system, merged, text)
    assert expected  # the ?x = e3 disjunct keeps matching rows


def test_filter_on_never_bound_variable_is_false(system, merged):
    p0 = peer_namespace(0).knows.n3()
    text = f"SELECT ?x WHERE {{ ?x {p0} ?y . FILTER(?ghost = ?x) }}"
    expected = assert_all_strategies_match(system, merged, text)
    assert expected == set()


def test_filter_with_uninterned_constant(system, merged):
    p0 = peer_namespace(0).knows.n3()
    text = (
        f"SELECT ?x WHERE {{ ?x {p0} ?y . "
        "FILTER(?y != <http://nowhere.example.org/no>) }"
    )
    expected = assert_all_strategies_match(system, merged, text)
    assert expected  # != an impossible constant keeps every row


def test_ask_queries_execute_federated(system, merged):
    p0 = peer_namespace(0).knows.n3()
    assert_all_strategies_match(system, merged, f"ASK {{ ?x {p0} ?y }}")
    assert_all_strategies_match(
        system, merged, f"ASK {{ ?x <http://peer9.example.org/knows> ?y }}"
    )


def test_branch_explosion_is_rejected():
    p0 = peer_namespace(0).knows.n3()
    union = f"{{ ?x {p0} ?y }} UNION {{ ?y {p0} ?x }}"
    # 2^7 = 128 branches > MAX_BRANCHES.
    joined = " . ".join(f"{{ {union} }}" for _ in range(7))
    with pytest.raises(UnsupportedSparqlError, match="branches"):
        sparql_to_branches(f"SELECT ?x WHERE {{ {joined} }}")
    assert MAX_BRANCHES == 64


def test_duplicate_union_branches_are_collapsed():
    p0 = peer_namespace(0).knows.n3()
    head, branches = sparql_to_branches(
        f"SELECT ?x WHERE {{ {{ ?x {p0} ?y }} UNION {{ ?x {p0} ?y }} }}"
    )
    assert len(branches) == 1


# ---------------------------------------------------------------------------
# Randomized equality against the single-graph planner
# ---------------------------------------------------------------------------


def _random_query(rng, peers=3):
    """A random SELECT in the BGP + UNION + FILTER fragment over the
    federation vocabulary."""
    def predicate():
        ns = peer_namespace(rng.randrange(peers))
        return (ns.knows if rng.random() < 0.7 else ns.age).n3()

    variables = ["?x", "?y", "?z", "?w"]

    def filter_text():
        left = rng.choice(variables)
        if rng.random() < 0.5:
            right = rng.choice(variables)
        else:
            right = SHARED.term(f"e{rng.randrange(20)}").n3()
        op = rng.choice(["=", "!="])
        return f"FILTER({left} {op} {right})"

    def bgp(depth):
        patterns = []
        for _ in range(rng.randint(1, 3)):
            s = rng.choice(variables)
            o = rng.choice(variables + [SHARED.term(f"e{rng.randrange(20)}").n3()])
            patterns.append(f"{s} {predicate()} {o} .")
        body = " ".join(patterns)
        if rng.random() < 0.3:
            # Group-scoped filter: may reference out-of-scope variables,
            # exercising the unbound-collapse specialisation.
            body += " " + filter_text()
        return body

    parts = []
    if rng.random() < 0.6:
        parts.append(f"{{ {bgp(0)} }} UNION {{ {bgp(0)} }}")
    else:
        parts.append(bgp(0))
    if rng.random() < 0.5:
        parts.append(f"{{ {bgp(0)} }}" if rng.random() < 0.4 else bgp(0))
    filters = [filter_text() for _ in range(rng.randint(0, 2))]
    body = " . ".join(parts) + " " + " ".join(filters)
    projection = " ".join(rng.sample(variables, rng.randint(1, 3)))
    return f"SELECT {projection} WHERE {{ {body} }}"


@pytest.mark.parametrize("seed", range(12))
def test_randomized_pushdown_matches_single_graph_planner(
    system, merged, seed
):
    rng = random.Random(seed)
    for _ in range(4):
        text = _random_query(rng)
        try:
            assert_all_strategies_match(system, merged, text)
        except UnsupportedSparqlError:
            pytest.skip("randomized query fell outside the fragment")


# ---------------------------------------------------------------------------
# Accounting invariants
# ---------------------------------------------------------------------------


def test_bound_messages_monotone_in_batch_size(system):
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    text = f"SELECT ?x ?z WHERE {{ ?x {p0} ?y . ?y {p1} ?z }}"
    previous_messages = None
    solutions = set()
    for batch_size in (1, 2, 8, 32, 256):
        executor = FederatedExecutor(system, batch_size=batch_size)
        stats = executor.execute(text, "bound").stats
        if previous_messages is not None:
            # Bigger batches can only merge messages, never add them.
            assert stats.messages <= previous_messages
        previous_messages = stats.messages
        solutions.add(stats.solutions_transferred)
    # The payload is batching-invariant: same rows, different envelopes.
    assert len(solutions) == 1


def test_adaptive_transfer_never_exceeds_collect(system):
    # Collect ships every stored triple; any adaptive plan must move at
    # most that (it could always have chosen to pull everything).
    total = system.total_stored_triples()
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    for text in (
        f"SELECT ?x ?y WHERE {{ ?x {p0} ?y }}",
        f"SELECT ?x ?z WHERE {{ ?x {p0} ?y . ?y {p1} ?z }}",
    ):
        stats = FederatedExecutor(system).execute(text, ADAPTIVE).stats
        assert stats.transfer_units <= total


def test_accounting_is_deterministic(system):
    p0, p1 = peer_namespace(0).knows.n3(), peer_namespace(1).knows.n3()
    text = (
        f"SELECT ?x ?y WHERE {{ {{ ?x {p0} ?y }} UNION {{ ?x {p1} ?y }} . "
        "FILTER(?x != ?y) }"
    )
    executor = FederatedExecutor(system)
    first = executor.execute(text, ADAPTIVE)
    second = executor.execute(text, ADAPTIVE)
    # Repeat runs on a fresh executor (empty relation cache) agree.
    third = FederatedExecutor(system).execute(text, ADAPTIVE)
    for other in (second, third):
        assert other.stats.messages == first.stats.messages
        assert other.stats.transfer_units == first.stats.transfer_units
        assert other.rows == first.rows


def test_filter_pushdown_reduces_transfer(system):
    # The same query with a highly selective pushable filter must ship
    # fewer solutions under the bound strategy than without it.
    p0 = peer_namespace(0).knows.n3()
    anchor = SHARED.term("e3").n3()
    executor = FederatedExecutor(system)
    plain = executor.execute(f"SELECT ?x ?y WHERE {{ ?x {p0} ?y }}", "bound")
    filtered = executor.execute(
        f"SELECT ?x ?y WHERE {{ ?x {p0} ?y . FILTER(?x = {anchor}) }}",
        "bound",
    )
    assert (
        filtered.stats.solutions_transferred
        < plain.stats.solutions_transferred
    )
