"""Adaptive federated optimizer: cost model, decisions, invariants."""

import pytest

from repro.federation import (
    ADAPTIVE,
    PARALLEL,
    FIXED_STRATEGIES,
    STRATEGIES,
    CostModel,
    EndpointStats,
    FederatedExecutor,
    NetworkModel,
)
from repro.federation.cost import FILTER_SELECTIVITY, bound_variable_positions
from repro.gpq.evaluation import evaluate_query_star
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.workload.federation import (
    federated_path_query,
    federated_rps,
    federated_selective_query,
    federated_union_filter_sparql,
)
from repro.workload.topologies import peer_namespace

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
TP = TriplePattern(X, peer_namespace(0).knows, Y)


@pytest.fixture(scope="module")
def three_peer_system():
    return federated_rps(peers=3, entities=20, facts=60, seed=7)


@pytest.fixture(scope="module")
def five_peer_system():
    return federated_rps(peers=5, entities=40, facts=150, seed=11)


def model(batch_size=64, **network_kwargs):
    return CostModel(NetworkModel(**network_kwargs), batch_size)


# ---------------------------------------------------------------------------
# Cost model unit behaviour
# ---------------------------------------------------------------------------


def test_ship_estimate_skips_empty_endpoints():
    stats = [
        EndpointStats("p0", 10, 12),
        EndpointStats("p1", 0, 0),
        EndpointStats("p2", 5, 9),
    ]
    estimate = model().estimate_ship(stats)
    assert estimate.messages == 2  # p1 has no matches, no message
    assert estimate.solutions == 15.0


def test_bound_estimate_infeasible_without_join_variable():
    stats = [EndpointStats("p0", 10, 12)]
    no_bindings = model().estimate_bound(stats, bindings=0, bound_positions=1)
    no_join_var = model().estimate_bound(stats, bindings=5, bound_positions=0)
    assert not no_bindings.feasible
    assert not no_join_var.feasible


def test_bound_estimate_batches_and_discount():
    stats = [EndpointStats("p0", 80, 90)]
    estimate = model(batch_size=10).estimate_bound(
        stats, bindings=25, bound_positions=1
    )
    assert estimate.messages == 3  # ceil(25/10) batches x 1 endpoint
    assert estimate.solutions == pytest.approx(25 * 80 / 8.0)


def test_pull_estimate_prices_only_uncached_relations():
    stats = [
        EndpointStats("p0", 10, 40, cached=True),
        EndpointStats("p1", 5, 25, cached=False),
    ]
    estimate = model().estimate_pull(stats)
    assert estimate.action == "pull"
    assert estimate.messages == 1
    assert estimate.triples == 25
    fully_cached = model().estimate_pull(
        [EndpointStats("p0", 10, 40, cached=True)]
    )
    assert fully_cached.action == "local"
    assert fully_cached.seconds == 0.0


def test_decide_prefers_bound_for_selective_bindings():
    # Few bindings against a big relation: batches are cheap, shipping
    # or pulling the whole relation is not.
    stats = [EndpointStats("p0", 1000, 1200)]
    decision = model(batch_size=64).decide(
        TP, stats, bindings=3, bound_positions=1
    )
    assert decision.action == "bound"
    assert decision.endpoints == ("p0",)
    # The trace keeps the rejected alternatives for explain().
    assert {e.action for e in decision.alternatives} >= {"ship", "bound"}


def test_decide_prefers_ship_when_bindings_explode():
    # Huge binding set: bound joins would cost many batch messages.
    stats = [EndpointStats("p0", 50, 60)]
    decision = model(batch_size=8).decide(
        TP, stats, bindings=1000, bound_positions=1
    )
    assert decision.action in ("ship", "pull")
    assert decision.chosen.messages == 1


def test_pushed_filters_discount_ship_and_bound_only():
    stats = [EndpointStats("p0", 100, 100)]
    plain = model().estimate_ship(stats, pushed_filters=0)
    filtered = model().estimate_ship(stats, pushed_filters=2)
    assert filtered.solutions == pytest.approx(
        plain.solutions * FILTER_SELECTIVITY**2
    )
    # Pull ships the raw relation; filters cannot discount it.
    assert model().estimate_pull(stats).triples == 100


def test_bound_variable_positions():
    tp = TriplePattern(X, peer_namespace(0).knows, Y)
    assert bound_variable_positions(tp, frozenset()) == 0
    assert bound_variable_positions(tp, frozenset({X})) == 1
    assert bound_variable_positions(tp, frozenset({X, Y})) == 2


# ---------------------------------------------------------------------------
# Adaptive execution: answers and the Pareto invariant
# ---------------------------------------------------------------------------


def _transfer(result):
    return result.stats.transfer_units


@pytest.mark.parametrize(
    "query_factory",
    [
        lambda: federated_path_query(hops=2),
        lambda: federated_path_query(hops=3),
        lambda: federated_selective_query(entity=3, hops=2),
        federated_union_filter_sparql,
    ],
)
def test_adaptive_never_pareto_dominated(three_peer_system, query_factory):
    executor = FederatedExecutor(three_peer_system)
    results = executor.run_all_strategies(query_factory())
    adaptive = results[ADAPTIVE]
    for strategy in FIXED_STRATEGIES:
        other = results[strategy]
        dominated = (
            adaptive.stats.messages > other.stats.messages
            and _transfer(adaptive) > _transfer(other)
        )
        assert not dominated, (
            f"adaptive ({adaptive.stats.messages}m, {_transfer(adaptive)}t) "
            f"dominated by {strategy} ({other.stats.messages}m, "
            f"{_transfer(other)}t)"
        )


def test_adaptive_on_larger_shared_entity_workload(five_peer_system):
    executor = FederatedExecutor(five_peer_system)
    query = federated_path_query(hops=3)
    expected = evaluate_query_star(five_peer_system.stored_database(), query)
    results = executor.run_all_strategies(query)
    adaptive = results[ADAPTIVE]
    assert adaptive.rows == expected
    for strategy in FIXED_STRATEGIES:
        other = results[strategy]
        assert not (
            adaptive.stats.messages > other.stats.messages
            and _transfer(adaptive) > _transfer(other)
        )


def test_adaptive_is_default_strategy(three_peer_system):
    executor = FederatedExecutor(three_peer_system)
    result = executor.execute(federated_path_query(hops=2))
    assert result.strategy == ADAPTIVE
    assert result.decisions  # the cost model's trace is attached


def test_fixed_strategies_carry_no_decisions(three_peer_system):
    executor = FederatedExecutor(three_peer_system)
    for strategy in FIXED_STRATEGIES:
        result = executor.execute(federated_path_query(hops=2), strategy)
        assert result.decisions == ()


def test_strategy_constants():
    assert STRATEGIES[0] == ADAPTIVE
    assert set(STRATEGIES) == set(FIXED_STRATEGIES) | {ADAPTIVE, PARALLEL}


# ---------------------------------------------------------------------------
# Relation cache and cardinality feedback
# ---------------------------------------------------------------------------


def test_pulled_relation_is_reused_across_union_branches(three_peer_system):
    # Both branches touch peer0's knows relation; once pulled for the
    # first branch it answers the second locally, for free.
    p0 = peer_namespace(0).knows.n3()
    text = (
        f"SELECT ?x ?y WHERE {{ {{ ?x {p0} ?y }} UNION {{ ?y {p0} ?x }} }}"
    )
    executor = FederatedExecutor(three_peer_system)
    result = executor.execute(text, ADAPTIVE)
    pull_decisions = [d for d in result.decisions if d.action == "pull"]
    local_decisions = [d for d in result.decisions if d.action == "local"]
    if pull_decisions:  # the cost model chose to pull at all
        assert result.stats.messages == len(pull_decisions)
        assert local_decisions  # the second branch rode the cache


def test_decisions_record_cardinality_feedback(three_peer_system):
    executor = FederatedExecutor(three_peer_system)
    result = executor.execute(federated_path_query(hops=3), ADAPTIVE)
    assert len(result.decisions) == 3
    # The first conjunct decides with the singleton seed binding; later
    # conjuncts see the actual intermediate binding counts.
    assert result.decisions[0].bindings == 1
    assert all(d.bindings >= 1 for d in result.decisions)


def test_explain_trace_mentions_actions_and_estimates(three_peer_system):
    executor = FederatedExecutor(three_peer_system)
    trace = executor.explain(federated_selective_query(entity=3, hops=2))
    assert "adaptive:" in trace
    assert "messages=" in trace
    assert "est msgs=" in trace
    assert any(
        action in trace for action in ("ship", "bound", "pull", "local")
    )
    assert "rejected" in trace


# ---------------------------------------------------------------------------
# Conjunct ordering: relevance precomputed once (regression)
# ---------------------------------------------------------------------------


def test_order_conjuncts_checks_relevance_once_per_conjunct(
    three_peer_system,
):
    executor = FederatedExecutor(three_peer_system)
    calls = []
    original = executor._relevant

    def counting_relevant(tp):
        calls.append(tp)
        return original(tp)

    executor._relevant = counting_relevant
    conjuncts = federated_path_query(hops=3).conjuncts()
    ordered = executor._order_conjuncts(conjuncts)
    assert sorted(ordered, key=id) == sorted(conjuncts, key=id)
    # O(n) schema checks, not O(n^2) re-derivation inside the min() key.
    assert len(calls) == len(conjuncts)
