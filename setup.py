"""Packaging for the src/ layout.

``pip install -e .`` works on any environment with ``wheel`` available
(CI does this).  The offline development image ships setuptools without
``wheel``, where ``python setup.py develop`` is the editable fallback —
both paths read the ``package_dir``/``find_packages`` declaration below.
All metadata lives here; there is deliberately no ``pyproject.toml`` so
the wheel-less legacy path keeps working.
"""

from setuptools import find_packages, setup

setup(
    name="repro-rps",
    version="0.1.0",
    description=(
        "Reproduction of an RDF peer system with dictionary-encoded "
        "storage, GPQ evaluation, TGD chase and certain answers"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["networkx"],
    extras_require={
        "test": ["pytest"],
        "dev": ["pytest", "ruff"],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Operating System :: OS Independent",
        "Programming Language :: Python",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Database :: Database Engines/Servers",
    ],
)
