"""Run one traced federated workload and export its telemetry.

Usage::

    python tools/export_trace.py [--out-dir DIR]

Executes the benchmark suite's 3-peer federated path query on the
parallel runtime with a live :class:`~repro.obs.Tracer` and
``analyze=True``, then writes two artifacts into ``--out-dir``
(default: the current directory):

* ``TRACE.json`` — the tracer's span forest in Chrome ``trace_event``
  object format (load it at ``chrome://tracing`` or in Perfetto).  The
  virtual-domain events are a pure function of the seeded workload, so
  repeated runs produce byte-identical documents; wall-clock events
  ride along under their own category.
* ``METRICS.json`` — the executor's cumulative
  :class:`~repro.obs.MetricsRegistry` snapshot plus this run's
  network counters.

The exported trace is validated against the ``trace_event`` shape with
:func:`~repro.obs.validate_trace_events`; any problem (or an empty
trace, or a missing per-operator actuals annotation in the ANALYZE
explain) exits non-zero, so CI fails when the telemetry layer stops
producing loadable traces.  Runs on a bare checkout: only the standard
library and ``src/`` are imported.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.federation.executor import (  # noqa: E402
    PARALLEL,
    FederatedExecutor,
)
from repro.obs import (  # noqa: E402
    Tracer,
    chrome_trace_events,
    validate_trace_events,
)
from repro.workload.federation import (  # noqa: E402
    federated_path_query,
    federated_rps,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory receiving TRACE.json and METRICS.json",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    system = federated_rps(peers=3, entities=20, facts=60, seed=7)
    query = federated_path_query(hops=2)
    executor = FederatedExecutor(system)
    tracer = Tracer()
    result = executor.execute(query, PARALLEL, tracer=tracer, analyze=True)

    document = chrome_trace_events(tracer)
    problems = validate_trace_events(document)
    if problems:
        for problem in problems:
            print(f"export_trace: invalid trace event: {problem}")
        return 1
    if not document["traceEvents"]:
        print("export_trace: traced execution produced no events")
        return 1

    explain = executor.explain(query, strategy=PARALLEL, analyze=True)
    if "(actual " not in explain:
        print("export_trace: ANALYZE explain carries no actual counters")
        return 1

    trace_path = out_dir / "TRACE.json"
    trace_path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    stats = result.stats
    metrics = {
        "executor": executor.metrics().snapshot(),
        "run": {
            "strategy": PARALLEL,
            "results": len(result.rows),
            "messages": stats.messages,
            "solutions_transferred": stats.solutions_transferred,
            "triples_transferred": stats.triples_transferred,
            "busy_seconds": stats.busy_seconds,
            "elapsed_seconds": stats.elapsed_seconds,
            "events": len(document["traceEvents"]),
        },
    }
    metrics_path = out_dir / "METRICS.json"
    metrics_path.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"export_trace: wrote {trace_path} "
        f"({len(document['traceEvents'])} events) and {metrics_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
