"""Dependency-free Markdown link checker for the docs tree.

Usage::

    python tools/check_links.py README.md docs

Each argument is a Markdown file or a directory scanned recursively for
``*.md``.  For every inline link ``[text](target)`` the checker
verifies:

* **relative file links** resolve to an existing file or directory
  (relative to the linking file);
* **fragment links** (``file.md#anchor`` or ``#anchor``) point at a
  heading that actually exists in the target file, using GitHub's
  heading-slug rules (lowercase, spaces to hyphens, punctuation
  stripped);
* ``http(s)``/``mailto`` links are skipped — CI must not depend on
  external availability.

Exit status is non-zero when any link is broken, printing one
``file:line: message`` per failure.  No third-party imports: the
checker must run in a bare CI Python before any project install.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline Markdown links: ``[text](target)``, ignoring images' leading
#: ``!`` (images are checked the same way) and ``(url "title")`` forms.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

CODE_FENCE_RE = re.compile(r"^(```|~~~)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    # Drop inline code/emphasis markers and links, keep their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", "_")
    text = text.strip().lower()
    # Keep word characters, spaces and hyphens; spaces become hyphens.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    """All heading anchors of a Markdown file (with GitHub dedup)."""
    slugs: set = set()
    counts: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every inline link."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> List[str]:
    """All broken-link messages for one Markdown file."""
    failures = []
    for number, target in iter_links(path):
        if target.startswith(SKIP_SCHEMES):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                failures.append(
                    f"{path}:{number}: broken link '{target}' "
                    f"(no such file: {resolved})"
                )
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # anchors into non-Markdown are not checked
            if fragment not in heading_slugs(resolved):
                failures.append(
                    f"{path}:{number}: broken anchor '#{fragment}' "
                    f"(no such heading in {resolved.name})"
                )
    return failures


def collect(arguments: List[str]) -> List[Path]:
    """Markdown files named by the CLI arguments (dirs recurse)."""
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python tools/check_links.py FILE_OR_DIR...")
        return 2
    files = collect(argv)
    missing = [str(f) for f in files if not f.exists()]
    if missing:
        print(f"no such file(s): {', '.join(missing)}")
        return 2
    failures: List[str] = []
    for path in files:
        failures.extend(check_file(path))
    for failure in failures:
        print(failure)
    print(
        f"check_links: {len(files)} file(s), "
        f"{len(failures)} broken link(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
