"""Homomorphism search between conjunctions of atoms and instances.

A homomorphism from a set of atoms ``A`` (with variables) into an
instance ``I`` maps every variable to a constant/null such that each atom
image is a fact of ``I``.  The chase, CQ evaluation and CQ containment
all reduce to this search.  The implementation is a backtracking join
with most-constrained-atom-first ordering and index-driven candidate
enumeration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.tgd.atoms import Atom, Instance, RelTerm, RelVar

__all__ = [
    "find_homomorphisms",
    "find_one_homomorphism",
    "match_atom",
    "extend_homomorphism",
]


def match_atom(
    atom: Atom, fact: Atom, partial: Dict[RelVar, RelTerm]
) -> Optional[Dict[RelVar, RelTerm]]:
    """Try to extend ``partial`` so that ``atom`` maps onto ``fact``.

    Returns the *extension only* (new bindings), or None on mismatch.
    """
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    extension: Dict[RelVar, RelTerm] = {}
    for pattern_arg, fact_arg in zip(atom.args, fact.args):
        if isinstance(pattern_arg, RelVar):
            bound = partial.get(pattern_arg)
            if bound is None:
                bound = extension.get(pattern_arg)
            if bound is None:
                extension[pattern_arg] = fact_arg
            elif bound != fact_arg:
                return None
        elif pattern_arg != fact_arg:
            return None
    return extension


def _order_atoms(atoms: Sequence[Atom], instance: Instance) -> List[Atom]:
    """Most-constrained-first ordering: fewer candidate facts first,
    preferring atoms sharing variables with already-ordered ones."""
    remaining = list(atoms)
    ordered: List[Atom] = []
    bound: Set[RelVar] = set()

    def cost(atom: Atom) -> Tuple[int, int]:
        shared = sum(1 for v in atom.variables() if v in bound)
        size = len(instance.facts_with_predicate(atom.predicate))
        return (-shared, size)

    while remaining:
        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def find_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Optional[Dict[RelVar, RelTerm]] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[RelVar, RelTerm]]:
    """Enumerate homomorphisms from ``atoms`` into ``instance``.

    Args:
        atoms: conjunction to map (order irrelevant).
        instance: target instance.
        partial: pre-bound variables (the homomorphism must extend it).
        limit: stop after this many homomorphisms.

    Yields:
        Complete variable bindings (including the ``partial`` entries).
    """
    base: Dict[RelVar, RelTerm] = dict(partial or {})
    ordered = _order_atoms(atoms, instance)
    count = 0
    stack: List[Tuple[int, Dict[RelVar, RelTerm]]] = [(0, base)]
    while stack:
        index, bindings = stack.pop()
        if index == len(ordered):
            yield bindings
            count += 1
            if limit is not None and count >= limit:
                return
            continue
        atom = ordered[index]
        for fact in instance.candidates(atom, bindings):
            extension = match_atom(atom, fact, bindings)
            if extension is None:
                continue
            merged = dict(bindings)
            merged.update(extension)
            stack.append((index + 1, merged))


def find_one_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Optional[Dict[RelVar, RelTerm]] = None,
) -> Optional[Dict[RelVar, RelTerm]]:
    """First homomorphism or None (the satisfaction check of the chase)."""
    for hom in find_homomorphisms(atoms, instance, partial, limit=1):
        return hom
    return None


def extend_homomorphism(
    head: Sequence[Atom],
    instance: Instance,
    frontier_binding: Dict[RelVar, RelTerm],
) -> Optional[Dict[RelVar, RelTerm]]:
    """Check whether a TGD head is already satisfied under a frontier map.

    Searches for an extension of ``frontier_binding`` covering the head's
    existential variables such that all head atoms are facts of the
    instance.  This is the 'restricted chase' applicability test: the
    dependency only fires when no such extension exists.
    """
    return find_one_homomorphism(head, instance, frontier_binding)
