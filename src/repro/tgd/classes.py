"""Syntactic TGD classes: linear, guarded, weakly acyclic, sticky(-join).

Section 4 observes that RPS dependency sets are "neither sticky, nor
linear, nor weakly-acyclic, nor guarded, nor weakly-guarded" in general —
incomparable to the known decidable classes.  This module implements the
classifiers so that claim is checkable on concrete systems, and so the
rewriting engine can decide when Proposition 2 applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Set, Tuple

import networkx as nx

from repro.tgd.atoms import RelVar
from repro.tgd.dependencies import TGD
from repro.tgd.marking import is_sticky

__all__ = [
    "is_linear_set",
    "is_guarded_set",
    "is_full_set",
    "is_weakly_acyclic",
    "is_sticky_join",
    "TGDClassification",
    "classify",
]

Position = Tuple[str, int]


def is_linear_set(tgds: Sequence[TGD]) -> bool:
    """Every TGD has a single body atom."""
    return all(tgd.is_linear() for tgd in tgds)


def is_guarded_set(tgds: Sequence[TGD]) -> bool:
    """Every TGD has a body atom containing all its universal variables."""
    return all(tgd.is_guarded() for tgd in tgds)


def is_full_set(tgds: Sequence[TGD]) -> bool:
    """No TGD has existential head variables."""
    return all(tgd.is_full() for tgd in tgds)


def _position_graph(tgds: Sequence[TGD]) -> nx.DiGraph:
    """The Fagin-et-al. dependency graph over positions.

    Regular edge ``π → π'`` when a frontier variable occurs in the body at
    π and in the head at π'; special edge ``π ⇒ π''`` when a frontier
    variable occurs in the body at π and the head introduces an
    existential variable at π''.
    """
    graph = nx.DiGraph()
    for tgd in tgds:
        frontier = tgd.frontier()
        existential = tgd.existential_variables()
        body_positions: Dict[RelVar, Set[Position]] = {}
        for atom in tgd.body:
            for i, arg in enumerate(atom.args, start=1):
                if isinstance(arg, RelVar):
                    body_positions.setdefault(arg, set()).add(
                        (atom.predicate, i)
                    )
        head_positions: Dict[RelVar, Set[Position]] = {}
        for atom in tgd.head:
            for i, arg in enumerate(atom.args, start=1):
                if isinstance(arg, RelVar):
                    head_positions.setdefault(arg, set()).add(
                        (atom.predicate, i)
                    )
        existential_positions: Set[Position] = set()
        for var in existential:
            existential_positions.update(head_positions.get(var, set()))
        for var in frontier:
            for source in body_positions.get(var, set()):
                for target in head_positions.get(var, set()):
                    _add_edge(graph, source, target, special=False)
                for target in existential_positions:
                    _add_edge(graph, source, target, special=True)
    return graph


def _add_edge(
    graph: nx.DiGraph, source: Position, target: Position, special: bool
) -> None:
    if graph.has_edge(source, target):
        if special:
            graph[source][target]["special"] = True
    else:
        graph.add_edge(source, target, special=special)


def is_weakly_acyclic(tgds: Sequence[TGD]) -> bool:
    """No cycle through a special edge in the position dependency graph."""
    graph = _position_graph(tgds)
    for component in nx.strongly_connected_components(graph):
        if len(component) == 1:
            node = next(iter(component))
            if not graph.has_edge(node, node):
                continue
        for source in component:
            for target in graph.successors(source):
                if target in component and graph[source][target]["special"]:
                    return False
    return True


def is_sticky_join(tgds: Sequence[TGD]) -> bool:
    """Sticky-join membership (conservative approximation).

    Sticky-join sets (Calì, Gottlob & Pieris 2010) generalise both sticky
    and linear sets.  This implementation returns True when the set is
    sticky or linear — a *sound but incomplete* test: every set it
    accepts is sticky-join, but some sticky-join sets are rejected.  The
    paper's Proposition 2 only relies on the linear and sticky cases, for
    which this test is exact.
    """
    return is_linear_set(tgds) or is_sticky(tgds)


@dataclass(frozen=True)
class TGDClassification:
    """Membership flags for one TGD set across the standard classes."""

    linear: bool
    guarded: bool
    full: bool
    weakly_acyclic: bool
    sticky: bool
    sticky_join: bool

    def fo_rewritable_fragment(self) -> bool:
        """Does Proposition 2 apply (linear / sticky / sticky-join)?"""
        return self.linear or self.sticky or self.sticky_join

    def chase_terminating_fragment(self) -> bool:
        """Known syntactic guarantee that the chase terminates."""
        return self.weakly_acyclic or self.full

    def summary(self) -> str:
        flags = [
            name
            for name, value in (
                ("linear", self.linear),
                ("guarded", self.guarded),
                ("full", self.full),
                ("weakly-acyclic", self.weakly_acyclic),
                ("sticky", self.sticky),
                ("sticky-join", self.sticky_join),
            )
            if value
        ]
        return ", ".join(flags) if flags else "none"


def classify(tgds: Sequence[TGD]) -> TGDClassification:
    """Classify a TGD set across all implemented classes."""
    return TGDClassification(
        linear=is_linear_set(tgds),
        guarded=is_guarded_set(tgds),
        full=is_full_set(tgds),
        weakly_acyclic=is_weakly_acyclic(tgds),
        sticky=is_sticky(tgds),
        sticky_join=is_sticky_join(tgds),
    )
