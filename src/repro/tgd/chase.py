"""The restricted (standard) chase for TGDs.

Given an instance and a set of TGDs, the chase repeatedly looks for a
homomorphism from a TGD body into the instance whose frontier image does
not extend to a homomorphism of the head ("the dependency is not
satisfied"), and repairs it by adding the head image with fresh labelled
nulls for existential variables (Fagin et al., Section 3 of the paper).

The implementation runs in rounds: each round snapshots the current body
homomorphisms, then re-checks head satisfaction against the live instance
before firing, so no redundant nulls are created for triggers satisfied
earlier in the same round.  Rounds repeat until a fixpoint; a configurable
step budget guards against the non-terminating cases the paper's general
TGDs admit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ChaseNonTerminationError
from repro.tgd.atoms import Instance, RelTerm, RelVar, fresh_null
from repro.tgd.dependencies import TGD
from repro.tgd.homomorphism import extend_homomorphism, find_homomorphisms

__all__ = ["ChaseResult", "chase", "is_satisfied", "violations"]


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    Attributes:
        instance: the chased instance (a universal solution on success).
        fired: total number of chase steps that added facts.
        rounds: number of fixpoint rounds executed.
        fired_per_tgd: firing count per TGD label (or repr when unlabeled).
        facts_added: number of facts added over the initial instance.
        nulls_created: number of fresh labelled nulls minted.
    """

    instance: Instance
    fired: int = 0
    rounds: int = 0
    fired_per_tgd: Dict[str, int] = field(default_factory=dict)
    facts_added: int = 0
    nulls_created: int = 0


def _tgd_key(tgd: TGD) -> str:
    return tgd.label or repr(tgd)


def is_satisfied(tgd: TGD, instance: Instance) -> bool:
    """Does the instance satisfy the TGD (no active trigger)?"""
    for hom in find_homomorphisms(tgd.body, instance):
        frontier_map = {v: hom[v] for v in tgd.frontier()}
        if extend_homomorphism(tgd.head, instance, frontier_map) is None:
            return False
    return True


def violations(
    tgds: Sequence[TGD], instance: Instance
) -> List[Tuple[TGD, Dict[RelVar, RelTerm]]]:
    """All active triggers: (TGD, frontier binding) pairs not satisfied."""
    out: List[Tuple[TGD, Dict[RelVar, RelTerm]]] = []
    for tgd in tgds:
        frontier = tgd.frontier()
        seen_frontiers = set()
        for hom in find_homomorphisms(tgd.body, instance):
            frontier_map = {v: hom[v] for v in frontier}
            key = tuple(sorted((v.name, repr(t)) for v, t in frontier_map.items()))
            if key in seen_frontiers:
                continue
            seen_frontiers.add(key)
            if extend_homomorphism(tgd.head, instance, frontier_map) is None:
                out.append((tgd, frontier_map))
    return out


def chase(
    instance: Instance,
    tgds: Sequence[TGD],
    max_steps: int = 1_000_000,
    in_place: bool = False,
) -> ChaseResult:
    """Run the restricted chase to a fixpoint.

    Args:
        instance: the starting instance (e.g. the stored database image).
        tgds: the dependencies.
        max_steps: firing budget; exceeded budget raises.
        in_place: mutate ``instance`` instead of chasing a copy.

    Returns:
        A :class:`ChaseResult` whose instance satisfies every TGD.

    Raises:
        ChaseNonTerminationError: when ``max_steps`` firings did not reach
            a fixpoint (the paper's general mapping TGDs can be
            non-terminating; RPS dependencies are not — Theorem 1).
    """
    work = instance if in_place else instance.copy()
    initial_size = len(work)
    result = ChaseResult(instance=work)

    changed = True
    while changed:
        changed = False
        result.rounds += 1
        for tgd in tgds:
            frontier = tgd.frontier()
            # Snapshot the triggers found against the instance as it was
            # when this TGD's turn started; satisfaction is re-checked
            # live before firing.
            triggers = []
            seen_frontiers = set()
            for hom in find_homomorphisms(tgd.body, work):
                frontier_map = {v: hom[v] for v in frontier}
                key = tuple(
                    sorted((v.name, repr(t)) for v, t in frontier_map.items())
                )
                if key in seen_frontiers:
                    continue
                seen_frontiers.add(key)
                triggers.append(frontier_map)
            for frontier_map in triggers:
                if extend_homomorphism(tgd.head, work, frontier_map) is not None:
                    continue
                _fire(tgd, frontier_map, work, result)
                changed = True
                if result.fired > max_steps:
                    raise ChaseNonTerminationError(
                        f"chase exceeded {max_steps} steps "
                        f"(last TGD: {_tgd_key(tgd)})",
                        steps=result.fired,
                    )
    result.facts_added = len(work) - initial_size
    return result


def _fire(
    tgd: TGD,
    frontier_map: Dict[RelVar, RelTerm],
    work: Instance,
    result: ChaseResult,
) -> None:
    """One chase step: add the head image under fresh nulls."""
    assignment = dict(frontier_map)
    for var in sorted(tgd.existential_variables(), key=lambda v: v.name):
        assignment[var] = fresh_null()
        result.nulls_created += 1
    for atom in tgd.head:
        work.add(atom.substitute(assignment))
    result.fired += 1
    key = _tgd_key(tgd)
    result.fired_per_tgd[key] = result.fired_per_tgd.get(key, 0) + 1
