"""Tuple-generating dependencies (TGDs).

A TGD is a first-order sentence

.. code-block:: text

    ∀x ∀y  φ(x, y)  →  ∃z  ψ(x, z)

where φ (the *body*) and ψ (the *head*) are conjunctions of atoms.  The
*frontier* x is the set of universal variables shared between body and
head; z are the existential variables.  The paper expresses both its
source-to-target dependencies and the peer-mapping target dependencies in
this form (Section 3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence

from repro.errors import TGDError
from repro.tgd.atoms import Atom, Constant, RelTerm, RelVar

__all__ = ["TGD", "rename_apart"]


class TGD:
    """A tuple-generating dependency ``body → ∃z head``.

    Args:
        body: non-empty conjunction of atoms (may contain constants).
        head: non-empty conjunction of atoms.
        label: optional human-readable name used in explanations.

    Raises:
        TGDError: if body or head is empty.
    """

    __slots__ = ("body", "head", "label", "_hash")

    def __init__(
        self,
        body: Sequence[Atom],
        head: Sequence[Atom],
        label: str = "",
    ) -> None:
        body_tuple = tuple(body)
        head_tuple = tuple(head)
        if not body_tuple:
            raise TGDError("TGD body must be non-empty")
        if not head_tuple:
            raise TGDError("TGD head must be non-empty")
        object.__setattr__(self, "body", body_tuple)
        object.__setattr__(self, "head", head_tuple)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((body_tuple, head_tuple)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TGD is immutable")

    # -- variable sets ------------------------------------------------------

    def body_variables(self) -> FrozenSet[RelVar]:
        out: set = set()
        for atom in self.body:
            out.update(atom.variables())
        return frozenset(out)

    def head_variables(self) -> FrozenSet[RelVar]:
        out: set = set()
        for atom in self.head:
            out.update(atom.variables())
        return frozenset(out)

    def frontier(self) -> FrozenSet[RelVar]:
        """Universal variables shared by body and head (the paper's x)."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> FrozenSet[RelVar]:
        """Head variables not occurring in the body (the paper's z)."""
        return self.head_variables() - self.body_variables()

    # -- syntactic properties ------------------------------------------------

    def is_linear(self) -> bool:
        """Linear TGD: exactly one body atom."""
        return len(self.body) == 1

    def is_full(self) -> bool:
        """Full TGD: no existential variables."""
        return not self.existential_variables()

    def is_single_head(self) -> bool:
        return len(self.head) == 1

    def is_guarded(self) -> bool:
        """Guarded: some body atom contains all body universal variables."""
        all_vars = self.body_variables()
        return any(atom.variables() >= all_vars for atom in self.body)

    def predicates(self) -> FrozenSet[str]:
        return frozenset(
            a.predicate for a in self.body
        ) | frozenset(a.predicate for a in self.head)

    def constants(self) -> FrozenSet[Constant]:
        out: set = set()
        for atom in self.body + self.head:
            out.update(atom.constants())
        return frozenset(out)

    # -- operations ----------------------------------------------------------

    def substitute(self, mapping: Dict[RelVar, RelTerm]) -> "TGD":
        """Apply a substitution to both body and head."""
        return TGD(
            [a.substitute(mapping) for a in self.body],
            [a.substitute(mapping) for a in self.head],
            label=self.label,
        )

    def rename(self, suffix: str) -> "TGD":
        """Uniformly rename all variables by appending ``suffix``."""
        mapping: Dict[RelVar, RelTerm] = {
            v: RelVar(v.name + suffix)
            for v in self.body_variables() | self.head_variables()
        }
        return self.substitute(mapping)

    # -- value object -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TGD):
            return NotImplemented
        return self.body == other.body and self.head == other.head

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = " ∧ ".join(repr(a) for a in self.body)
        head = " ∧ ".join(repr(a) for a in self.head)
        exists = self.existential_variables()
        prefix = (
            "∃" + ",".join(sorted(v.name for v in exists)) + " " if exists else ""
        )
        name = f"[{self.label}] " if self.label else ""
        return f"{name}{body} → {prefix}{head}"


_RENAME_COUNTER = 0


def rename_apart(tgd: TGD, taken: Iterable[RelVar]) -> TGD:
    """Rename the TGD's variables away from a set of variables in use.

    Used before unifying a query atom with a TGD head so variable scopes
    cannot collide.
    """
    taken_names = {v.name for v in taken}
    mapping: Dict[RelVar, RelTerm] = {}
    for var in sorted(
        tgd.body_variables() | tgd.head_variables(), key=lambda v: v.name
    ):
        if var.name in taken_names:
            candidate = var.name
            counter = 0
            while candidate in taken_names:
                candidate = f"{var.name}_r{counter}"
                counter += 1
            mapping[var] = RelVar(candidate)
            taken_names.add(candidate)
    if not mapping:
        return tgd
    return tgd.substitute(mapping)
