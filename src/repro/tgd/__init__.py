"""Relational TGD machinery (Section 3/4 substrate).

Atoms and instances, tuple-generating dependencies, homomorphism search,
the restricted chase with labelled nulls, the Definition-4 variable
marking / sticky test, syntactic class membership (linear, guarded,
weakly acyclic, sticky-join), conjunctive queries with containment, and
the UCQ perfect-rewriting engine used by Proposition 2.
"""

from repro.tgd.atoms import (
    Atom,
    Constant,
    Instance,
    LabeledNull,
    RelTerm,
    RelVar,
    fresh_null,
    reset_null_counter,
)
from repro.tgd.chase import ChaseResult, chase, is_satisfied, violations
from repro.tgd.classes import (
    TGDClassification,
    classify,
    is_full_set,
    is_guarded_set,
    is_linear_set,
    is_sticky_join,
    is_weakly_acyclic,
)
from repro.tgd.cq import ConjunctiveQuery, UnionOfCQs
from repro.tgd.dependencies import TGD, rename_apart
from repro.tgd.homomorphism import (
    find_homomorphisms,
    find_one_homomorphism,
    match_atom,
)
from repro.tgd.marking import (
    MarkingResult,
    is_sticky,
    mark_variables,
    sticky_witnesses,
)
from repro.tgd.rewrite import (
    AUX_PREFIX,
    RewriteResult,
    decompose_heads,
    rewrite_ucq,
)

__all__ = [
    "AUX_PREFIX",
    "Atom",
    "ChaseResult",
    "ConjunctiveQuery",
    "Constant",
    "Instance",
    "LabeledNull",
    "MarkingResult",
    "RelTerm",
    "RelVar",
    "RewriteResult",
    "TGD",
    "TGDClassification",
    "UnionOfCQs",
    "chase",
    "classify",
    "decompose_heads",
    "find_homomorphisms",
    "find_one_homomorphism",
    "fresh_null",
    "is_full_set",
    "is_guarded_set",
    "is_linear_set",
    "is_satisfied",
    "is_sticky",
    "is_sticky_join",
    "is_weakly_acyclic",
    "mark_variables",
    "match_atom",
    "rename_apart",
    "reset_null_counter",
    "rewrite_ucq",
    "sticky_witnesses",
    "violations",
]
