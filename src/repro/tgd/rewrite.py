"""UCQ perfect rewriting of conjunctive queries under TGDs.

Implements the rewriting algorithm the paper invokes for Proposition 2
(after Gottlob, Orsi & Pieris: *Ontological queries: rewriting and
optimization*): given a CQ ``q`` and a set Σ of TGDs, produce a union of
CQs ``q_Σ`` such that evaluating ``q_Σ`` over any source database D gives
exactly the certain answers ``q(chase(D, Σ))``.

Pipeline:

1. **Head decomposition** — every TGD is normalised to single-head TGDs
   whose head has at most one existential variable occurring once, via a
   chain of auxiliary predicates (the logspace transformation the GOP
   paper describes).  Auxiliary atoms are internal: disjuncts still
   mentioning them at the end are discarded.
2. **Rewriting step** — unify a query atom with a (renamed-apart) TGD
   head under the *applicability* condition: classes of the unifier that
   touch an existential head variable may contain only that existential
   variable and non-shared query variables (no constants, no second
   existential, no frontier variable).  The atom is then replaced by the
   TGD body under the unifier.
3. **Factorisation step** — two body atoms sharing a variable at an
   existential position of some TGD head are unified into one, producing
   a more specific (hence sound) disjunct that enables further rewriting
   steps blocked by the shared-variable condition.
4. **Dedup & budget** — disjuncts are deduplicated up to variable
   renaming; a query budget bounds non-terminating inputs.

Termination is guaranteed for linear and sticky TGD sets (the
Proposition-2 fragment); for other sets the budget raises
:class:`~repro.errors.RewritingError` — Proposition 3 shows genuine
non-FO-rewritability for general RPS mappings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RewritingError
from repro.tgd.atoms import Atom, Constant, RelTerm, RelVar
from repro.tgd.cq import ConjunctiveQuery, UnionOfCQs
from repro.tgd.dependencies import TGD, rename_apart

__all__ = ["RewriteResult", "rewrite_ucq", "decompose_heads", "AUX_PREFIX"]

AUX_PREFIX = "_aux_"


# ---------------------------------------------------------------------------
# Head decomposition
# ---------------------------------------------------------------------------

_DECOMPOSE_COUNTER = [0]


def decompose_heads(tgds: Sequence[TGD]) -> List[TGD]:
    """Normalise TGDs to single-head, single-existential-occurrence form.

    A TGD ``body → ∃z₁…zₖ h₁ ∧ … ∧ hₘ`` becomes a chain

    .. code-block:: text

        body                →  ∃z₁ aux₁(x, z₁)
        aux₁(x, z₁)         →  ∃z₂ aux₂(x, z₁, z₂)
        ...
        auxₖ(x, z₁…zₖ)      →  hᵢ          (one full TGD per head atom)

    where x is the frontier.  TGDs already in normal form pass through
    unchanged.  Auxiliary predicate names start with :data:`AUX_PREFIX`
    and must not occur in user queries.
    """
    out: List[TGD] = []
    for tgd in tgds:
        existentials = sorted(tgd.existential_variables(), key=lambda v: v.name)
        single_existential_once = False
        if len(tgd.head) == 1 and len(existentials) <= 1:
            if not existentials:
                single_existential_once = True
            else:
                occurrences = sum(
                    1 for arg in tgd.head[0].args if arg == existentials[0]
                )
                single_existential_once = occurrences == 1
        if single_existential_once:
            out.append(tgd)
            continue
        _DECOMPOSE_COUNTER[0] += 1
        stem = f"{AUX_PREFIX}{_DECOMPOSE_COUNTER[0]}"
        frontier = sorted(tgd.frontier(), key=lambda v: v.name)
        carried: List[RelVar] = list(frontier)
        previous_body: Tuple[Atom, ...] = tgd.body
        for depth, z in enumerate(existentials, start=1):
            aux_atom = Atom(f"{stem}_{depth}", *carried, z)
            out.append(
                TGD(
                    previous_body,
                    [aux_atom],
                    label=f"{tgd.label or 'tgd'}#aux{depth}",
                )
            )
            carried = carried + [z]
            previous_body = (aux_atom,)
        if not existentials:
            # Multi-head but full: emit one full TGD per head atom.
            for i, head_atom in enumerate(tgd.head, start=1):
                out.append(
                    TGD(tgd.body, [head_atom], label=f"{tgd.label or 'tgd'}#h{i}")
                )
            continue
        for i, head_atom in enumerate(tgd.head, start=1):
            out.append(
                TGD(previous_body, [head_atom], label=f"{tgd.label or 'tgd'}#h{i}")
            )
    return out


# ---------------------------------------------------------------------------
# Unification
# ---------------------------------------------------------------------------


class _UnionFind:
    """Union-find over relational terms; constants clash on merge."""

    def __init__(self) -> None:
        self.parent: Dict[RelTerm, RelTerm] = {}

    def find(self, term: RelTerm) -> RelTerm:
        root = term
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        # Path compression.
        while self.parent.get(term, term) != root:
            self.parent[term], term = root, self.parent[term]
        return root

    def union(self, a: RelTerm, b: RelTerm) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if isinstance(ra, Constant) and isinstance(rb, Constant):
            return False
        # Keep constants as roots.
        if isinstance(ra, Constant):
            self.parent[rb] = ra
        else:
            self.parent[ra] = rb
        return True

    def classes(self) -> Dict[RelTerm, Set[RelTerm]]:
        groups: Dict[RelTerm, Set[RelTerm]] = {}
        seen: Set[RelTerm] = set(self.parent.keys())
        for term in list(self.parent.keys()):
            seen.add(self.find(term))
        for term in seen:
            groups.setdefault(self.find(term), set()).add(term)
        return groups


def _unify_positionwise(a: Atom, b: Atom) -> Optional[_UnionFind]:
    if a.predicate != b.predicate or a.arity != b.arity:
        return None
    uf = _UnionFind()
    for left, right in zip(a.args, b.args):
        if not uf.union(left, right):
            return None
    return uf


# ---------------------------------------------------------------------------
# Rewriting steps
# ---------------------------------------------------------------------------


def _build_substitution(
    uf: _UnionFind,
    answer_vars: Set[RelVar],
) -> Optional[Dict[RelVar, RelTerm]]:
    """Choose representatives: constant > answer var > other variable.

    Returns None when two answer variables... never fails here; failures
    are handled by the applicability filter.
    """
    substitution: Dict[RelVar, RelTerm] = {}
    for root, members in uf.classes().items():
        rep: RelTerm
        constants = [m for m in members if isinstance(m, Constant)]
        if constants:
            rep = constants[0]
        else:
            answer_members = sorted(
                (m for m in members if m in answer_vars),
                key=lambda v: v.name,
            )
            if answer_members:
                rep = answer_members[0]
            else:
                rep = sorted(
                    (m for m in members if isinstance(m, RelVar)),
                    key=lambda v: v.name,
                )[0]
        for member in members:
            if isinstance(member, RelVar) and member != rep:
                substitution[member] = rep
    return substitution


def _applicable(
    query: ConjunctiveQuery,
    atom: Atom,
    tgd: TGD,
    uf: _UnionFind,
) -> bool:
    """GOP applicability: existential classes are clean.

    Every unification class containing an existential head variable must
    consist of that variable (once) plus non-shared query variables only.
    Answer variables must not be bound to constants.
    """
    shared = query.shared_variables()
    existentials = tgd.existential_variables()
    frontier = tgd.frontier()
    query_vars = query.variables()
    classes = uf.classes()
    for members in classes.values():
        exist_members = [m for m in members if m in existentials]
        if exist_members:
            if len(exist_members) > 1:
                return False
            if any(isinstance(m, Constant) for m in members):
                return False
            if any(m in frontier for m in members):
                return False
            for member in members:
                if member in exist_members:
                    continue
                if not isinstance(member, RelVar):
                    return False
                if member in query_vars and member in shared:
                    return False
        else:
            # Answer variables must survive as variables.
            if any(isinstance(m, Constant) for m in members) and any(
                isinstance(m, RelVar) and m in set(query.head) for m in members
            ):
                return False
    return True


def _rewrite_step(
    query: ConjunctiveQuery, atom: Atom, tgd: TGD
) -> Optional[ConjunctiveQuery]:
    """Replace ``atom`` by the TGD body when the head unifies applicably."""
    renamed = rename_apart(tgd, query.variables())
    uf = _unify_positionwise(atom, renamed.head[0])
    if uf is None:
        return None
    if not _applicable(query, atom, renamed, uf):
        return None
    substitution = _build_substitution(uf, set(query.head))
    if substitution is None:
        return None
    new_body: List[Atom] = [
        a.substitute(substitution) for a in query.body if a != atom
    ]
    new_body.extend(a.substitute(substitution) for a in renamed.body)
    # Remove duplicate atoms while preserving order.
    deduped: List[Atom] = []
    seen_atoms: Set[Atom] = set()
    for a in new_body:
        if a not in seen_atoms:
            seen_atoms.add(a)
            deduped.append(a)
    head = [substitution.get(v, v) for v in query.head]
    if any(not isinstance(h, RelVar) for h in head):
        return None
    return ConjunctiveQuery(head, deduped, label=query.label)


def _existential_positions(tgds: Sequence[TGD]) -> Dict[str, Set[int]]:
    """Positions (predicate → 1-based indexes) that can hold chase nulls."""
    out: Dict[str, Set[int]] = {}
    for tgd in tgds:
        existentials = tgd.existential_variables()
        for atom in tgd.head:
            for i, arg in enumerate(atom.args, start=1):
                if isinstance(arg, RelVar) and arg in existentials:
                    out.setdefault(atom.predicate, set()).add(i)
    return out


def _factorize_step(
    query: ConjunctiveQuery,
    a1: Atom,
    a2: Atom,
    existential_positions: Dict[str, Set[int]],
) -> Optional[ConjunctiveQuery]:
    """Unify two atoms sharing a variable at an existential position."""
    if a1.predicate != a2.predicate or a1 == a2:
        return None
    positions = existential_positions.get(a1.predicate)
    if not positions:
        return None
    shares_existential_var = any(
        i in positions
        and isinstance(a1.args[i - 1], RelVar)
        and a1.args[i - 1] == a2.args[i - 1]
        for i in range(1, a1.arity + 1)
    )
    if not shares_existential_var:
        return None
    uf = _unify_positionwise(a1, a2)
    if uf is None:
        return None
    substitution = _build_substitution(uf, set(query.head))
    if substitution is None:
        return None
    head = [substitution.get(v, v) for v in query.head]
    if any(not isinstance(h, RelVar) for h in head):
        return None
    new_body: List[Atom] = []
    seen_atoms: Set[Atom] = set()
    for a in query.body:
        image = a.substitute(substitution)
        if image not in seen_atoms:
            seen_atoms.add(image)
            new_body.append(image)
    return ConjunctiveQuery(head, new_body, label=query.label)


# ---------------------------------------------------------------------------
# Main loop
# ---------------------------------------------------------------------------


@dataclass
class RewriteResult:
    """Outcome of a rewriting run.

    Attributes:
        ucq: the final union of CQs (auxiliary-free, deduplicated).
        explored: how many distinct CQs were generated (incl. internal
            disjuncts mentioning auxiliary predicates).
        rewrite_steps: number of successful atom/TGD rewriting steps.
        factorization_steps: number of successful factorisations.
        complete: True when the rewriting closure was fully explored;
            False when a depth/size bound truncated it (the UCQ is then
            a *sound under-approximation* of the perfect rewriting).
    """

    ucq: UnionOfCQs
    explored: int = 0
    rewrite_steps: int = 0
    factorization_steps: int = 0
    complete: bool = True


def rewrite_ucq(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    max_queries: int = 20_000,
    max_depth: Optional[int] = None,
    strict: bool = True,
) -> RewriteResult:
    """Compute the UCQ perfect rewriting of ``query`` under ``tgds``.

    Args:
        query: the input CQ (answer variables allowed; the Proposition-2
            pipeline feeds Boolean queries, per the paper's Example 3).
        tgds: the dependency set (multi-head TGDs are decomposed
            internally).
        max_queries: exploration budget.
        max_depth: bound on rewriting-step chains from the input query
            (``None`` = unbounded).  Bounded runs return a *partial*
            rewriting with ``complete=False`` — the tool behind the
            Proposition-3 demonstration that no finite depth suffices.
        strict: raise on budget exhaustion instead of returning the
            partial result.

    Raises:
        RewritingError: when ``strict`` and the budget is exhausted
            before the rewriting closure is complete (expected exactly
            when the TGD set is outside the terminating fragment —
            Proposition 3).
    """
    for atom in query.body:
        if atom.predicate.startswith(AUX_PREFIX):
            raise RewritingError(
                f"query must not mention auxiliary predicate {atom.predicate}"
            )
    normalised = decompose_heads(tgds)
    existential_positions = _existential_positions(normalised)

    result_queries: List[ConjunctiveQuery] = []
    seen: Set[Tuple] = set()
    queue: deque = deque()
    stats = RewriteResult(ucq=UnionOfCQs([query]))

    def push(cq: ConjunctiveQuery, depth: int) -> None:
        key = cq.canonical_form()
        if key in seen:
            return
        if len(seen) >= max_queries:
            if strict:
                raise RewritingError(
                    f"rewriting exceeded the budget of {max_queries} queries; "
                    "the TGD set is likely not first-order rewritable "
                    "(cf. Proposition 3)"
                )
            stats.complete = False
            return
        seen.add(key)
        queue.append((cq, depth))
        stats.explored += 1
        result_queries.append(cq)

    push(query, 0)
    while queue:
        current, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            stats.complete = False
            continue
        # Rewriting steps.
        for tgd in normalised:
            for atom in current.body:
                if atom.predicate != tgd.head[0].predicate:
                    continue
                rewritten = _rewrite_step(current, atom, tgd)
                if rewritten is not None:
                    stats.rewrite_steps += 1
                    push(rewritten, depth + 1)
        # Factorisation steps (do not consume rewrite depth).
        body = current.body
        for i in range(len(body)):
            for j in range(i + 1, len(body)):
                factored = _factorize_step(
                    current, body[i], body[j], existential_positions
                )
                if factored is not None:
                    stats.factorization_steps += 1
                    push(factored, depth)

    final = [
        cq
        for cq in result_queries
        if not any(a.predicate.startswith(AUX_PREFIX) for a in cq.body)
    ]
    stats.ucq = UnionOfCQs(final, label=query.label).deduplicate()
    return stats
