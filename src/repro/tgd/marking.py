"""Definition 4: the variable-marking procedure and the sticky test.

The marking runs in two phases over a set Σ of TGDs:

1. *Initial marking* — for each TGD σ and each variable V in body(σ), if
   some head atom of σ does not contain V, mark every occurrence of V in
   body(σ).  (Existential-head positions never carry body variables, so
   this also marks body variables that vanish entirely.)

2. *Propagation* — to a fixpoint: if a marked variable occurs in some
   body at position π = r[i], then in every TGD whose head contains a
   variable at position π, mark all body occurrences of that variable.

Σ is **sticky** iff no TGD has a marked variable occurring more than once
in its body.  The paper uses this to show equivalence mappings are sticky
while graph mapping assertions in general are not (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.tgd.atoms import RelVar
from repro.tgd.dependencies import TGD

__all__ = ["MarkingResult", "mark_variables", "is_sticky", "sticky_witnesses"]

Position = Tuple[str, int]


@dataclass
class MarkingResult:
    """Outcome of the Definition-4 marking.

    Attributes:
        marked: per-TGD index, the set of marked body variables.
        marked_positions: all positions ``r[i]`` at which some marked
            variable occurs in some body (the propagation frontier).
        rounds: number of propagation rounds until the fixpoint.
    """

    marked: Dict[int, Set[RelVar]] = field(default_factory=dict)
    marked_positions: Set[Position] = field(default_factory=set)
    rounds: int = 0

    def is_marked(self, tgd_index: int, var: RelVar) -> bool:
        return var in self.marked.get(tgd_index, set())


def _body_positions_of(tgd: TGD, var: RelVar) -> Set[Position]:
    out: Set[Position] = set()
    for atom in tgd.body:
        for i, arg in enumerate(atom.args, start=1):
            if arg == var:
                out.add((atom.predicate, i))
    return out


def _head_vars_at(tgd: TGD, position: Position) -> Set[RelVar]:
    predicate, index = position
    out: Set[RelVar] = set()
    for atom in tgd.head:
        if atom.predicate == predicate and atom.arity >= index:
            arg = atom.args[index - 1]
            if isinstance(arg, RelVar):
                out.add(arg)
    return out


def mark_variables(tgds: Sequence[TGD]) -> MarkingResult:
    """Run the Definition-4 marking procedure to its fixpoint."""
    result = MarkingResult(marked={i: set() for i in range(len(tgds))})

    # Phase 1: initial marking.
    for index, tgd in enumerate(tgds):
        for var in tgd.body_variables():
            if any(var not in atom.variables() for atom in tgd.head):
                result.marked[index].add(var)

    # Collect positions of marked body occurrences.
    def positions_of_marked() -> Set[Position]:
        out: Set[Position] = set()
        for index, tgd in enumerate(tgds):
            for var in result.marked[index]:
                out.update(_body_positions_of(tgd, var))
        return out

    # Phase 2: propagate to fixpoint.
    result.marked_positions = positions_of_marked()
    while True:
        result.rounds += 1
        new_marks = False
        for index, tgd in enumerate(tgds):
            body_vars = tgd.body_variables()
            for position in result.marked_positions:
                for var in _head_vars_at(tgd, position):
                    if var in body_vars and var not in result.marked[index]:
                        result.marked[index].add(var)
                        new_marks = True
        if not new_marks:
            break
        result.marked_positions = positions_of_marked()
    return result


def sticky_witnesses(
    tgds: Sequence[TGD],
) -> List[Tuple[int, RelVar]]:
    """TGD/variable pairs violating stickiness.

    A pair ``(i, V)`` is a witness when V is marked in TGD i and occurs
    more than once in that TGD's body.
    """
    marking = mark_variables(tgds)
    witnesses: List[Tuple[int, RelVar]] = []
    for index, tgd in enumerate(tgds):
        for var in marking.marked[index]:
            occurrences = 0
            for atom in tgd.body:
                occurrences += sum(1 for arg in atom.args if arg == var)
            if occurrences > 1:
                witnesses.append((index, var))
    return witnesses


def is_sticky(tgds: Sequence[TGD]) -> bool:
    """Is the TGD set sticky (Definition 4)?"""
    return not sticky_witnesses(tgds)
