"""Relational atoms and terms for the TGD machinery.

Section 3 of the paper encodes an RPS as a relational data-exchange
setting over the alphabets ``Rs = {ts, rs}`` and ``Rt = {tt, rt}``.  This
module provides the first-order building blocks for that encoding:

* :class:`Constant` — wraps an arbitrary hashable value (here, RDF terms);
* :class:`RelVar` — a first-order variable;
* :class:`LabeledNull` — a chase-invented value (the relational twin of a
  fresh blank node);
* :class:`Atom` — ``r(t₁, …, tₖ)``.

Instances (sets of ground atoms) are handled by :class:`Instance`, which
indexes facts by predicate and by (predicate, position, value) for fast
homomorphism search.
"""

from __future__ import annotations

import threading
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.errors import TGDError

__all__ = [
    "Constant",
    "RelVar",
    "LabeledNull",
    "RelTerm",
    "Atom",
    "Instance",
    "fresh_null",
    "reset_null_counter",
]


class Constant:
    """A constant value in the relational model.

    Wraps any hashable payload; in the RPS encoding the payload is an RDF
    term (IRI or literal or blank node from the *stored* database).
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("Constant", value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constant is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class RelVar:
    """A first-order variable in TGD bodies/heads and CQs."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        if not name:
            raise TGDError("variable name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("RelVar", name)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RelVar is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RelVar) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"RelVar({self.name!r})"

    def __str__(self) -> str:
        return self.name


class LabeledNull:
    """A labelled null invented by the chase.

    Nulls compare by identity of their numeric id; the paper identifies
    them with freshly created blank nodes.
    """

    __slots__ = ("id", "_hash")

    def __init__(self, id: int) -> None:
        object.__setattr__(self, "id", id)
        object.__setattr__(self, "_hash", hash(("LabeledNull", id)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LabeledNull is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabeledNull) and other.id == self.id

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"LabeledNull({self.id})"

    def __str__(self) -> str:
        return f"⊥{self.id}"


RelTerm = Union[Constant, RelVar, LabeledNull]


class _NullCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def fresh(self) -> LabeledNull:
        with self._lock:
            value = self._next
            self._next += 1
        return LabeledNull(value)

    def reset(self) -> None:
        with self._lock:
            self._next = 0


_NULLS = _NullCounter()


def fresh_null() -> LabeledNull:
    """Mint a process-wide fresh labelled null."""
    return _NULLS.fresh()


def reset_null_counter() -> None:
    """Reset null ids (tests only)."""
    _NULLS.reset()


class Atom:
    """A relational atom ``predicate(args…)``.

    Args:
        predicate: relation symbol name.
        args: terms (constants, variables or nulls).
    """

    __slots__ = ("predicate", "args", "_hash")

    def __init__(self, predicate: str, *args: RelTerm) -> None:
        if not predicate:
            raise TGDError("predicate name must be non-empty")
        for arg in args:
            if not isinstance(arg, (Constant, RelVar, LabeledNull)):
                raise TGDError(
                    f"atom argument must be a relational term, got {arg!r}"
                )
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "_hash", hash((predicate, self.args)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> FrozenSet[RelVar]:
        return frozenset(a for a in self.args if isinstance(a, RelVar))

    def constants(self) -> FrozenSet[Constant]:
        return frozenset(a for a in self.args if isinstance(a, Constant))

    def nulls(self) -> FrozenSet[LabeledNull]:
        return frozenset(a for a in self.args if isinstance(a, LabeledNull))

    def is_ground(self) -> bool:
        return not any(isinstance(a, RelVar) for a in self.args)

    def substitute(self, mapping: Dict[RelVar, RelTerm]) -> "Atom":
        """Apply a substitution to the variable arguments."""
        return Atom(
            self.predicate,
            *(
                mapping.get(a, a) if isinstance(a, RelVar) else a
                for a in self.args
            ),
        )

    def positions(self) -> Iterator[Tuple[str, int]]:
        """Yield the positions ``r[i]`` of this atom (1-based, as in Def 4)."""
        for i in range(1, self.arity + 1):
            yield (self.predicate, i)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other.predicate == self.predicate
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"


class Instance:
    """A set of ground atoms (facts), indexed by predicate and by value.

    Supports the chase and homomorphism search.  Mutation is restricted
    to :meth:`add` so the indexes stay coherent.
    """

    __slots__ = ("_facts", "_by_predicate", "_by_pv")

    def __init__(self, facts: Optional[Iterable[Atom]] = None) -> None:
        self._facts: Set[Atom] = set()
        self._by_predicate: Dict[str, Set[Atom]] = {}
        # (predicate, position, value) -> atoms
        self._by_pv: Dict[Tuple[str, int, RelTerm], Set[Atom]] = {}
        if facts is not None:
            for fact in facts:
                self.add(fact)

    def add(self, fact: Atom) -> bool:
        """Add a ground fact; returns True if new.

        Raises:
            TGDError: if the atom contains variables.
        """
        if not fact.is_ground():
            raise TGDError(f"instance facts must be ground, got {fact!r}")
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_predicate.setdefault(fact.predicate, set()).add(fact)
        for i, arg in enumerate(fact.args, start=1):
            self._by_pv.setdefault((fact.predicate, i, arg), set()).add(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        return sum(1 for f in facts if self.add(f))

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts

    def __repr__(self) -> str:
        return f"<Instance with {len(self)} facts>"

    def facts_with_predicate(self, predicate: str) -> Set[Atom]:
        return self._by_predicate.get(predicate, set())

    def predicates(self) -> Set[str]:
        return set(self._by_predicate.keys())

    def candidates(self, atom: Atom, partial: Dict[RelVar, RelTerm]) -> Set[Atom]:
        """Facts that could match ``atom`` under the partial substitution.

        Uses the most selective (predicate, position, value) index entry
        among the atom's ground-or-bound positions; falls back to the
        predicate index when every position is an unbound variable.
        """
        best: Optional[Set[Atom]] = None
        for i, arg in enumerate(atom.args, start=1):
            value: Optional[RelTerm] = None
            if isinstance(arg, RelVar):
                value = partial.get(arg)
            else:
                value = arg
            if value is None:
                continue
            bucket = self._by_pv.get((atom.predicate, i, value), set())
            if best is None or len(bucket) < len(best):
                best = bucket
            if best is not None and not best:
                return set()
        if best is not None:
            return best
        return self.facts_with_predicate(atom.predicate)

    def values(self) -> Set[RelTerm]:
        """The active domain: all constants and nulls in any fact."""
        out: Set[RelTerm] = set()
        for fact in self._facts:
            out.update(fact.args)
        return out

    def constants(self) -> Set[Constant]:
        return {v for v in self.values() if isinstance(v, Constant)}

    def nulls(self) -> Set[LabeledNull]:
        return {v for v in self.values() if isinstance(v, LabeledNull)}

    def copy(self) -> "Instance":
        return Instance(self._facts)
