"""Conjunctive queries over relational atoms.

Provides evaluation over instances, homomorphism-based containment, the
canonical (frozen) database, core minimisation, and canonical renaming
for duplicate elimination — everything the UCQ rewriting engine of
Section 4 needs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.errors import TGDError
from repro.tgd.atoms import Atom, Constant, Instance, LabeledNull, RelTerm, RelVar
from repro.tgd.homomorphism import find_homomorphisms, find_one_homomorphism

__all__ = ["ConjunctiveQuery", "UnionOfCQs"]


class ConjunctiveQuery:
    """A conjunctive query ``q(x) :- body``.

    Args:
        head: answer variables (must occur in the body).
        body: non-empty conjunction of atoms.
        label: diagnostic name.

    Raises:
        TGDError: if the body is empty or a head variable is unsafe.
    """

    __slots__ = ("head", "body", "label", "_hash")

    def __init__(
        self,
        head: Sequence[RelVar],
        body: Sequence[Atom],
        label: str = "q",
    ) -> None:
        head_tuple = tuple(head)
        body_tuple = tuple(body)
        if not body_tuple:
            raise TGDError("conjunctive query body must be non-empty")
        body_vars: Set[RelVar] = set()
        for atom in body_tuple:
            body_vars.update(atom.variables())
        for var in head_tuple:
            if var not in body_vars:
                raise TGDError(f"unsafe head variable {var}")
        object.__setattr__(self, "head", head_tuple)
        object.__setattr__(self, "body", body_tuple)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((head_tuple, frozenset(body_tuple))))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ConjunctiveQuery is immutable")

    # -- structure ----------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.head)

    def variables(self) -> FrozenSet[RelVar]:
        out: Set[RelVar] = set()
        for atom in self.body:
            out.update(atom.variables())
        return frozenset(out)

    def existential_variables(self) -> FrozenSet[RelVar]:
        return self.variables() - set(self.head)

    def is_boolean(self) -> bool:
        return not self.head

    def variable_occurrences(self) -> Dict[RelVar, int]:
        """Total occurrence count of each variable across the body."""
        counts: Dict[RelVar, int] = {}
        for atom in self.body:
            for arg in atom.args:
                if isinstance(arg, RelVar):
                    counts[arg] = counts.get(arg, 0) + 1
        return counts

    def shared_variables(self) -> FrozenSet[RelVar]:
        """Answer variables plus variables occurring more than once.

        These are the variables the rewriting's applicability condition
        forbids from unifying with existential head positions.
        """
        counts = self.variable_occurrences()
        shared = {v for v, n in counts.items() if n > 1}
        shared.update(self.head)
        return frozenset(shared)

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, instance: Instance) -> Set[Tuple[RelTerm, ...]]:
        """All answer tuples over the instance (including nulls)."""
        return {
            tuple(hom[v] for v in self.head)
            for hom in find_homomorphisms(self.body, instance)
        }

    def evaluate_null_free(self, instance: Instance) -> Set[Tuple[RelTerm, ...]]:
        """Answer tuples containing no labelled nulls (certain answers
        over a universal solution)."""
        return {
            answer
            for answer in self.evaluate(instance)
            if not any(isinstance(t, LabeledNull) for t in answer)
        }

    def holds_in(self, instance: Instance) -> bool:
        """Boolean evaluation: is there any homomorphism into the instance?"""
        return find_one_homomorphism(self.body, instance) is not None

    # -- containment / equivalence ------------------------------------------------

    def freeze(self) -> Tuple[Instance, Tuple[RelTerm, ...]]:
        """The canonical database: variables become fresh constants.

        Returns the frozen instance and the image of the head.
        """
        mapping: Dict[RelVar, RelTerm] = {
            v: Constant(("frozen", v.name)) for v in self.variables()
        }
        frozen = Instance(atom.substitute(mapping) for atom in self.body)
        head_image = tuple(mapping[v] for v in self.head)
        return frozen, head_image

    def is_contained_in(self, other: "ConjunctiveQuery") -> bool:
        """Classical CQ containment: ``self ⊆ other``.

        Holds iff there is a homomorphism from ``other`` into the frozen
        body of ``self`` mapping head to head (Chandra-Merlin).
        """
        if self.arity != other.arity:
            return False
        frozen, head_image = self.freeze()
        partial = dict(zip(other.head, head_image))
        # Head variables may repeat; zip keeps the last binding, so check
        # consistency explicitly.
        for var, value in zip(other.head, head_image):
            if partial[var] != value:
                return False
        return find_one_homomorphism(other.body, frozen, partial) is not None

    def is_equivalent_to(self, other: "ConjunctiveQuery") -> bool:
        return self.is_contained_in(other) and other.is_contained_in(self)

    def minimize(self) -> "ConjunctiveQuery":
        """Compute the core: drop atoms while preserving equivalence."""
        body = list(self.body)
        changed = True
        while changed and len(body) > 1:
            changed = False
            for atom in list(body):
                candidate_body = [a for a in body if a is not atom]
                candidate_vars: Set[RelVar] = set()
                for a in candidate_body:
                    candidate_vars.update(a.variables())
                if not all(v in candidate_vars for v in self.head):
                    continue
                candidate = ConjunctiveQuery(self.head, candidate_body)
                if candidate.is_equivalent_to(self):
                    body = candidate_body
                    changed = True
                    break
        return ConjunctiveQuery(self.head, body, label=self.label)

    # -- canonical form -------------------------------------------------------------

    def canonical_form(self) -> Tuple:
        """A renaming-invariant key for duplicate elimination.

        Variables are renumbered in first-occurrence order after sorting
        atoms by a variable-name-independent skeleton; two queries equal
        up to variable renaming get equal keys (used by the rewriting's
        ``seen`` set).
        """
        def skeleton(atom: Atom) -> Tuple:
            return (
                atom.predicate,
                tuple(
                    ("v",) if isinstance(a, RelVar) else ("c", repr(a))
                    for a in atom.args
                ),
            )

        ordered = sorted(self.body, key=skeleton)
        numbering: Dict[RelVar, int] = {}
        for var in self.head:
            numbering.setdefault(var, len(numbering))
        for atom in ordered:
            for arg in atom.args:
                if isinstance(arg, RelVar):
                    numbering.setdefault(arg, len(numbering))
        canonical_atoms = tuple(
            (
                atom.predicate,
                tuple(
                    ("v", numbering[a]) if isinstance(a, RelVar) else ("c", repr(a))
                    for a in atom.args
                ),
            )
            for atom in ordered
        )
        canonical_head = tuple(numbering[v] for v in self.head)
        return (canonical_head, canonical_atoms)

    def rename(self, suffix: str) -> "ConjunctiveQuery":
        mapping: Dict[RelVar, RelTerm] = {
            v: RelVar(v.name + suffix) for v in self.variables()
        }
        return self.substitute(mapping)

    def substitute(self, mapping: Dict[RelVar, RelTerm]) -> "ConjunctiveQuery":
        """Substitute terms for variables; substituted head variables are
        dropped from the head (they become constants)."""
        new_head = tuple(
            mapping.get(v, v) for v in self.head
        )
        kept_head = tuple(v for v in new_head if isinstance(v, RelVar))
        return ConjunctiveQuery(
            kept_head,
            [atom.substitute(mapping) for atom in self.body],
            label=self.label,
        )

    # -- value object -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.head == other.head and frozenset(self.body) == frozenset(
            other.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = " ∧ ".join(repr(a) for a in self.body)
        return f"{self.label}({head}) :- {body}"


class UnionOfCQs:
    """A union of conjunctive queries of equal arity (a UCQ)."""

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], label: str = "Q") -> None:
        disjunct_list = list(disjuncts)
        if not disjunct_list:
            raise TGDError("a UCQ needs at least one disjunct")
        arity = disjunct_list[0].arity
        for cq in disjunct_list:
            if cq.arity != arity:
                raise TGDError("UCQ disjuncts must share the same arity")
        self.disjuncts: List[ConjunctiveQuery] = disjunct_list
        self.label = label

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def evaluate(self, instance: Instance) -> Set[Tuple[RelTerm, ...]]:
        out: Set[Tuple[RelTerm, ...]] = set()
        for cq in self.disjuncts:
            out.update(cq.evaluate(instance))
        return out

    def evaluate_null_free(self, instance: Instance) -> Set[Tuple[RelTerm, ...]]:
        out: Set[Tuple[RelTerm, ...]] = set()
        for cq in self.disjuncts:
            out.update(cq.evaluate_null_free(instance))
        return out

    def holds_in(self, instance: Instance) -> bool:
        return any(cq.holds_in(instance) for cq in self.disjuncts)

    def deduplicate(self) -> "UnionOfCQs":
        """Remove duplicates (up to renaming) and strictly-contained CQs."""
        unique: List[ConjunctiveQuery] = []
        seen = set()
        for cq in self.disjuncts:
            key = cq.canonical_form()
            if key not in seen:
                seen.add(key)
                unique.append(cq)
        kept: List[ConjunctiveQuery] = []
        for i, cq in enumerate(unique):
            redundant = False
            for j, other in enumerate(unique):
                if i == j:
                    continue
                if cq.is_contained_in(other):
                    # On mutual containment, keep the earlier one only.
                    if other.is_contained_in(cq) and i < j:
                        continue
                    redundant = True
                    break
            if not redundant:
                kept.append(cq)
        return UnionOfCQs(kept, label=self.label)

    def __repr__(self) -> str:
        return f"<UCQ {self.label} with {len(self.disjuncts)} disjuncts>"
