"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: RDF parsing, SPARQL parsing/evaluation, TGD/chase machinery,
peer-system validation and federation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class RDFError(ReproError):
    """Base class for errors in the RDF data model and serialisations."""


class TermError(RDFError):
    """An RDF term was constructed with an invalid value."""


class TripleError(RDFError):
    """A triple violates RDF positional constraints (e.g. literal subject)."""


class ParseError(RDFError):
    """A serialisation (N-Triples / Turtle) failed to parse.

    Attributes:
        line: 1-based line number of the offending input, when known.
        column: 1-based column number, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class SparqlError(ReproError):
    """Base class for SPARQL front-end errors."""


class SparqlSyntaxError(SparqlError):
    """The SPARQL query text failed to parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class SparqlEvaluationError(SparqlError):
    """The SPARQL algebra tree could not be evaluated."""


class UnsupportedSparqlError(SparqlError):
    """The query uses SPARQL features outside the conjunctive fragment."""


class QueryError(ReproError):
    """A graph pattern query is malformed (e.g. free variable not in body)."""


class TGDError(ReproError):
    """Base class for errors in the relational TGD machinery."""


class ChaseError(TGDError):
    """The chase failed or exceeded its configured bounds."""


class ChaseNonTerminationError(ChaseError):
    """The chase exceeded its step budget without reaching a fixpoint.

    Attributes:
        steps: number of chase steps performed before giving up.
    """

    def __init__(self, message: str, steps: int = 0) -> None:
        self.steps = steps
        super().__init__(message)


class RewritingError(TGDError):
    """Query rewriting failed (e.g. non-terminating TGD class)."""


class NotRewritableError(RewritingError):
    """The dependency set is provably outside the FO-rewritable classes.

    Raised when a perfect first-order rewriting is requested for a TGD set
    that is neither linear nor sticky nor sticky-join (Proposition 3 of the
    paper shows such sets exist for RPS mapping assertions).
    """


class PeerSystemError(ReproError):
    """Base class for RDF Peer System validation errors."""


class SchemaViolationError(PeerSystemError):
    """A mapping or a stored triple uses IRIs outside the peer's schema."""


class MappingError(PeerSystemError):
    """A graph mapping assertion or equivalence mapping is malformed."""


class FederationError(ReproError):
    """Base class for federated-execution errors."""


class SourceSelectionError(FederationError):
    """No peer can answer a required triple pattern."""


class EndpointError(FederationError):
    """A simulated endpoint rejected or failed a sub-query."""


class EndpointUnavailableError(EndpointError):
    """An endpoint (and every replica) exhausted its retry budget.

    Raised by the fault-aware request path
    (:func:`repro.federation.plan.issue_request`) when the primary
    endpoint and all of its replicas are marked down.  The federated
    interpreter catches it, drops the endpoint's contribution, and
    records the outage in the result's
    :class:`~repro.federation.faults.PartialAnswer` — so callers only
    ever see this exception when issuing requests outside the
    interpreter.

    Attributes:
        endpoint: the *primary* endpoint name (replica outages are
            attributed to the logical endpoint they replicate).
        attempts: total attempts charged before giving up (0 when the
            endpoint was already marked down and failed fast).
    """

    def __init__(
        self, message: str, endpoint: str = "", attempts: int = 0
    ) -> None:
        self.endpoint = endpoint
        self.attempts = attempts
        super().__init__(message)


class SimulationError(ReproError):
    """Base class for discrete-event runtime simulation errors.

    Raised by :mod:`repro.runtime` on misconfigured channels (zero
    concurrency, a window below the lane count) and on causality
    violations (an event scheduled before the current virtual instant).
    """
