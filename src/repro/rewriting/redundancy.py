"""SameAs-redundancy elimination (Listing 1's "Result without redundancy").

Equivalence mappings make certain answers redundant: every answer
appears once per equivalent IRI combination.  Listing 1 shows the
deduplicated result keeping one representative per equivalence class —
``DB1:Toby_Maguire`` rather than ``foaf:Toby_Maguire``, etc.  The
canonical representative is the least class member in the library-wide
term order, which reproduces the paper's choices exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.rdf.terms import IRI, Term
from repro.peers.system import RPS

__all__ = ["canonical_map", "canonicalize_answer", "deduplicate_answers"]


def canonical_map(system: RPS) -> Dict[IRI, IRI]:
    """IRI → canonical representative of its equivalence class.

    The representative is the smallest member under the deterministic
    term order; IRIs not mentioned by any equivalence map to themselves
    (and are omitted from the dict).
    """
    classes = system.equivalence_classes()
    out: Dict[IRI, IRI] = {}
    for iri, members in classes.items():
        out[iri] = min(members, key=lambda m: m.sort_key())
    return out


def canonicalize_answer(
    answer: Tuple[Term, ...], mapping: Dict[IRI, IRI]
) -> Tuple[Term, ...]:
    """Replace each IRI in an answer tuple by its class representative."""
    return tuple(
        mapping.get(term, term) if isinstance(term, IRI) else term
        for term in answer
    )


def deduplicate_answers(
    system: RPS, answers: Iterable[Tuple[Term, ...]]
) -> Set[Tuple[Term, ...]]:
    """Listing 1's "Result without redundancy".

    Each answer tuple is canonicalised through the equivalence classes;
    duplicates collapse.  The result contains only canonical
    representatives.
    """
    mapping = canonical_map(system)
    return {canonicalize_answer(answer, mapping) for answer in answers}
