"""Query rewriting over RPS mappings (Section 4).

Boolean (ASK) rewriting per Listing 2, the Proposition-2 perfect
rewriting pipelines (answer-atom method and the paper's tuple-check
reduction), the Proposition-3 bounded-rewriting machinery, and sameAs
redundancy elimination.
"""

from repro.rewriting.boolean import (
    BooleanRewriting,
    cq_to_ask_block,
    rewrite_boolean_query,
)
from repro.rewriting.limits import (
    CHAIN_NS,
    ancestor_query,
    bounded_rewriting_answers,
    rewriting_growth,
    transitive_closure_rps,
    transitivity_assertion,
)
from repro.rewriting.perfect import (
    ANS,
    RewritingAnswers,
    candidate_tuples,
    certain_answers_by_rewriting,
    certain_answers_by_tuple_check,
    check_fo_rewritable,
)
from repro.rewriting.redundancy import (
    canonical_map,
    canonicalize_answer,
    deduplicate_answers,
)

__all__ = [
    "ANS",
    "BooleanRewriting",
    "CHAIN_NS",
    "RewritingAnswers",
    "ancestor_query",
    "bounded_rewriting_answers",
    "candidate_tuples",
    "canonical_map",
    "canonicalize_answer",
    "certain_answers_by_rewriting",
    "certain_answers_by_tuple_check",
    "check_fo_rewritable",
    "cq_to_ask_block",
    "deduplicate_answers",
    "rewrite_boolean_query",
    "rewriting_growth",
    "transitive_closure_rps",
    "transitivity_assertion",
]
