"""Listing 2: Boolean (ASK) query rewriting over the peer mappings.

Example 3 reduces certain-answer computation to Boolean queries: a
candidate tuple t is substituted into the query's free variables, and
the resulting ASK query is rewritten into a union of ASK queries (an
FO-query) that entails the mapping assertions — evaluated *directly over
the stored database*, no chase required.

The pipeline:

1. GPQ → relational BCQ over ``tt`` (Section-3 encoding);
2. UCQ rewriting under the guard-free mapping TGDs
   (:func:`repro.peers.data_exchange.rewriting_tgds`);
3. disjuncts translated back to SPARQL ASK blocks (for display — the
   ``ASK {{...} UNION {...}}`` shape of Listing 2) and evaluated over
   the stored database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import RewritingError
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import IRI, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.bridge import sparql_to_gpq
from repro.tgd.atoms import Atom, Constant, RelVar
from repro.tgd.cq import ConjunctiveQuery, UnionOfCQs
from repro.tgd.rewrite import RewriteResult, rewrite_ucq
from repro.peers.data_exchange import TT, gpq_to_cq, graph_to_source_instance, rewriting_tgds
from repro.peers.system import RPS

__all__ = ["BooleanRewriting", "rewrite_boolean_query", "cq_to_ask_block"]


def _cq_to_patterns(cq: ConjunctiveQuery) -> List[TriplePattern]:
    """Translate ``tt`` atoms back into triple patterns."""
    patterns: List[TriplePattern] = []
    for atom in cq.body:
        if atom.predicate != TT:
            raise RewritingError(
                f"disjunct contains non-triple atom {atom!r}"
            )
        terms: List[Term] = []
        for arg in atom.args:
            if isinstance(arg, Constant):
                terms.append(arg.value)
            elif isinstance(arg, RelVar):
                terms.append(Variable(arg.name))
            else:
                raise RewritingError(f"null in rewritten query: {atom!r}")
        patterns.append(TriplePattern(terms[0], terms[1], terms[2]))
    return patterns


def cq_to_ask_block(
    cq: ConjunctiveQuery, nsm: Optional[NamespaceManager] = None
) -> str:
    """Render one disjunct as the body of a SPARQL ASK block."""
    lines = []
    for pattern in _cq_to_patterns(cq):
        parts = []
        for term in pattern:
            if nsm is not None and isinstance(term, IRI):
                parts.append(nsm.display(term))
            else:
                parts.append(term.n3())
        lines.append("  " + " ".join(parts) + " .")
    return "{\n" + "\n".join(lines) + "\n}"


@dataclass
class BooleanRewriting:
    """The rewriting of one Boolean query.

    Attributes:
        original: the input Boolean graph pattern query.
        ucq: the rewritten union of relational BCQs.
        stats: rewriting statistics.
    """

    original: GraphPatternQuery
    ucq: UnionOfCQs
    stats: RewriteResult

    def __len__(self) -> int:
        return len(self.ucq)

    def evaluate(self, stored: Graph) -> bool:
        """Evaluate the union over the stored database (no chase)."""
        instance = graph_to_source_instance(stored)
        # The rewriting is expressed over tt; stored facts are ts.
        # Re-encode stored triples as tt facts for evaluation.
        tt_instance = _as_tt_instance(stored)
        return self.ucq.holds_in(tt_instance)

    def to_sparql(self, nsm: Optional[NamespaceManager] = None) -> str:
        """The Listing-2 surface form: ``ASK {{...} UNION {...} ...}``."""
        blocks = [cq_to_ask_block(cq, nsm) for cq in self.ucq]
        if len(blocks) == 1:
            return "ASK " + blocks[0]
        return "ASK {" + "\nUNION\n".join(blocks) + "}"


def _as_tt_instance(stored: Graph):
    from repro.tgd.atoms import Instance

    instance = Instance()
    for triple in stored:
        instance.add(
            Atom(
                TT,
                Constant(triple.subject),
                Constant(triple.predicate),
                Constant(triple.object),
            )
        )
    return instance


def rewrite_boolean_query(
    system: RPS,
    query: Union[str, GraphPatternQuery],
    nsm: Optional[NamespaceManager] = None,
    max_queries: int = 20_000,
) -> BooleanRewriting:
    """Rewrite a Boolean query against the system's mapping TGDs.

    Args:
        system: the RPS supplying G and E.
        query: an arity-0 graph pattern query, or ASK SPARQL text.
        nsm: namespaces for SPARQL parsing.
        max_queries: rewriting budget.

    Raises:
        RewritingError: if the query is not Boolean, or the budget is
            exhausted (non-FO-rewritable mapping sets — Proposition 3).
    """
    gpq = query if isinstance(query, GraphPatternQuery) else sparql_to_gpq(query, nsm)
    if not gpq.is_boolean():
        raise RewritingError(
            "rewrite_boolean_query expects an arity-0 (ASK) query; "
            "use repro.rewriting.perfect for SELECT queries"
        )
    bcq = gpq_to_cq(gpq, label="ask")
    tgds = rewriting_tgds(system)
    stats = rewrite_ucq(bcq, tgds, max_queries=max_queries)
    return BooleanRewriting(original=gpq, ucq=stats.ucq, stats=stats)
