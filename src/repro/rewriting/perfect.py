"""Proposition 2: certain answers via perfect rewriting (no chase).

Two complete strategies are provided for FO-rewritable mapping sets:

* :func:`certain_answers_by_rewriting` — the *answer-atom* method: the
  SELECT query's head is reified as a reserved ``_ans(x₁,…,xₙ)`` body
  atom, the resulting Boolean query is UCQ-rewritten, and each disjunct
  is evaluated over the stored database, reading the answers off the
  ``_ans`` atom's image.  Constants that equivalence TGDs substituted
  into answer positions come through naturally.  One rewriting, no
  candidate enumeration.
* :func:`certain_answers_by_tuple_check` — the paper's own Example-3
  reduction: enumerate candidate tuples, substitute each into the query,
  rewrite the Boolean query and evaluate it.  Exponentially more
  rewritings (one per candidate) but exactly the construction in the
  paper; kept for fidelity and used by the E-P2 benchmark's baseline
  arm.

Both agree with the chase on every FO-rewritable system
(property-tested).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple, Union

from repro.errors import RewritingError
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import BlankNode, Term
from repro.sparql.bridge import sparql_to_gpq
from repro.tgd.atoms import Atom, Constant, Instance, RelVar
from repro.tgd.classes import classify
from repro.tgd.cq import ConjunctiveQuery
from repro.tgd.homomorphism import find_homomorphisms
from repro.tgd.rewrite import rewrite_ucq
from repro.peers.data_exchange import TT, gpq_to_cq, rewriting_tgds
from repro.peers.system import RPS
from repro.rewriting.boolean import rewrite_boolean_query

__all__ = [
    "ANS",
    "RewritingAnswers",
    "certain_answers_by_rewriting",
    "certain_answers_by_tuple_check",
    "candidate_tuples",
    "check_fo_rewritable",
]

ANS = "_ans"


def _stored_tt_instance(stored: Graph) -> Instance:
    instance = Instance()
    for triple in stored:
        instance.add(
            Atom(
                TT,
                Constant(triple.subject),
                Constant(triple.predicate),
                Constant(triple.object),
            )
        )
    return instance


def check_fo_rewritable(system: RPS) -> bool:
    """Does Proposition 2 syntactically apply to this system's mappings?

    True when the guard-free mapping TGDs are linear, sticky or
    sticky-join.
    """
    tgds = rewriting_tgds(system)
    classification = classify(tgds)
    return classification.fo_rewritable_fragment()


@dataclass
class RewritingAnswers:
    """Certain answers computed via rewriting, with statistics.

    Attributes:
        answers: the certain answer tuples.
        disjuncts: number of UCQ disjuncts evaluated.
        explored: CQs explored during rewriting.
        rewritings: number of rewriting runs (1 for the answer-atom
            method; |candidates| for the tuple-check method).
    """

    answers: Set[Tuple[Term, ...]]
    disjuncts: int = 0
    explored: int = 0
    rewritings: int = 1


def certain_answers_by_rewriting(
    system: RPS,
    query: Union[str, GraphPatternQuery],
    nsm: Optional[NamespaceManager] = None,
    max_queries: int = 20_000,
    require_fo_rewritable: bool = True,
) -> RewritingAnswers:
    """Certain answers via the answer-atom UCQ rewriting.

    Args:
        system: the RPS.
        query: graph pattern query or conjunctive SELECT SPARQL.
        nsm: namespaces for SPARQL parsing.
        max_queries: rewriting budget.
        require_fo_rewritable: raise upfront when the mapping TGDs are
            outside the Proposition-2 fragment instead of letting the
            budget catch it.

    Raises:
        RewritingError: outside the FO-rewritable fragment.
    """
    if require_fo_rewritable and not check_fo_rewritable(system):
        raise RewritingError(
            "mapping TGDs are neither linear nor sticky; Proposition 2 "
            "does not apply (see Proposition 3) — use the chase instead"
        )
    gpq = query if isinstance(query, GraphPatternQuery) else sparql_to_gpq(query, nsm)
    base = gpq_to_cq(gpq, label="q")
    # Reify the head as a reserved body atom so rewriting can specialise
    # answer positions; the query becomes Boolean.
    ans_atom = Atom(ANS, *[RelVar(v.name) for v in gpq.head])
    reified = ConjunctiveQuery([], list(base.body) + [ans_atom], label="q_ans")
    tgds = rewriting_tgds(system)
    stats = rewrite_ucq(reified, tgds, max_queries=max_queries)

    instance = _stored_tt_instance(system.stored_database())
    answers: Set[Tuple[Term, ...]] = set()
    for disjunct in stats.ucq:
        ans_atoms = [a for a in disjunct.body if a.predicate == ANS]
        if len(ans_atoms) != 1:
            raise RewritingError(
                f"disjunct lost its answer atom: {disjunct!r}"
            )
        ans = ans_atoms[0]
        rest = [a for a in disjunct.body if a.predicate != ANS]
        if not rest:
            continue
        for hom in find_homomorphisms(rest, instance):
            tuple_image: List[Term] = []
            ok = True
            for arg in ans.args:
                if isinstance(arg, Constant):
                    value = arg.value
                elif isinstance(arg, RelVar):
                    bound = hom.get(arg)
                    if bound is None or not isinstance(bound, Constant):
                        ok = False
                        break
                    value = bound.value
                else:
                    ok = False
                    break
                if isinstance(value, BlankNode):
                    ok = False
                    break
                tuple_image.append(value)
            if ok:
                answers.add(tuple(tuple_image))
    return RewritingAnswers(
        answers=answers,
        disjuncts=len(stats.ucq),
        explored=stats.explored,
        rewritings=1,
    )


def candidate_tuples(
    system: RPS, arity: int, max_candidates: int = 200_000
) -> List[Tuple[Term, ...]]:
    """The paper's candidate space: k-tuples of constants.

    Candidates are drawn from the IRIs and literals of the stored
    database plus the constants mentioned in mappings (equivalence sides
    and assertion-target IRIs) — every term a certain answer can contain.

    Raises:
        RewritingError: if the Cartesian product exceeds the guard.
    """
    stored = system.stored_database()
    terms: Set[Term] = set()
    for term in stored.terms():
        if not isinstance(term, BlankNode):
            terms.add(term)
    for equivalence in system.equivalences:
        terms.update(equivalence.terms())
    for assertion in system.assertions:
        terms.update(assertion.target.iris())
        terms.update(assertion.target.pattern.literals())
    universe = sorted(terms, key=lambda t: t.sort_key())
    total = len(universe) ** arity if arity else 1
    if total > max_candidates:
        raise RewritingError(
            f"candidate space of {total} tuples exceeds the guard of "
            f"{max_candidates}; use certain_answers_by_rewriting instead"
        )
    return [tuple(combo) for combo in itertools.product(universe, repeat=arity)]


def certain_answers_by_tuple_check(
    system: RPS,
    query: Union[str, GraphPatternQuery],
    nsm: Optional[NamespaceManager] = None,
    max_queries: int = 20_000,
    max_candidates: int = 200_000,
) -> RewritingAnswers:
    """The paper's Example-3 reduction, verbatim.

    Enumerate all candidate answer tuples, substitute each into the
    query to obtain a Boolean query, rewrite it, and evaluate the union
    over the stored database.
    """
    gpq = query if isinstance(query, GraphPatternQuery) else sparql_to_gpq(query, nsm)
    stored = system.stored_database()
    answers: Set[Tuple[Term, ...]] = set()
    total_disjuncts = 0
    total_explored = 0
    candidates = candidate_tuples(system, gpq.arity, max_candidates)
    rewritings = 0
    for candidate in candidates:
        try:
            boolean_query = gpq.bind_tuple(candidate)
        except Exception:
            continue
        rewriting = rewrite_boolean_query(
            system, boolean_query, max_queries=max_queries
        )
        rewritings += 1
        total_disjuncts += len(rewriting)
        total_explored += rewriting.stats.explored
        if rewriting.evaluate(stored):
            answers.add(candidate)
    return RewritingAnswers(
        answers=answers,
        disjuncts=total_disjuncts,
        explored=total_explored,
        rewritings=rewritings,
    )
