"""Proposition 3: RPS mapping TGDs are not FO-rewritable — empirically.

The paper's counterexample is the transitive-closure mapping assertion

.. code-block:: text

    ∀x∀y∃z  tt(x, A, z) ∧ tt(z, A, y) ∧ rt(x) ∧ rt(y)  →  tt(x, A, y)

whose certain answers include every ancestor pair of an A-chain, while
any *finite* UCQ rewriting has a maximal body size and therefore misses
pairs separated by longer chains.  This module builds that system and
the bounded-rewriting machinery used to demonstrate the gap:

* :func:`transitive_closure_rps` — one peer storing an A-chain of
  length n, with the transitivity assertion;
* :func:`bounded_rewriting_answers` — certain answers computed from the
  depth-d partial UCQ rewriting (sound but incomplete);
* :func:`rewriting_growth` — |UCQ| as a function of depth, the
  without-bound growth that contradicts FO-rewritability.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.gpq.pattern import make_pattern
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Variable
from repro.rdf.triples import Triple
from repro.tgd.atoms import Atom, Constant, Instance
from repro.tgd.rewrite import RewriteResult, rewrite_ucq
from repro.peers.data_exchange import TT, gpq_to_cq, rewriting_tgds
from repro.peers.mappings import GraphMappingAssertion
from repro.peers.system import RPS

__all__ = [
    "CHAIN_NS",
    "transitivity_assertion",
    "transitive_closure_rps",
    "bounded_rewriting_answers",
    "rewriting_growth",
    "ancestor_query",
]

CHAIN_NS = Namespace("http://chain.example.org/")


def transitivity_assertion() -> GraphMappingAssertion:
    """``(x, A, z) AND (z, A, y) ⇝ (x, A, y)`` — Section 4's example."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    source = GraphPatternQuery(
        (x, y),
        make_pattern((x, CHAIN_NS.A, z), (z, CHAIN_NS.A, y)),
        name="Qtrans",
    )
    target = GraphPatternQuery(
        (x, y), make_pattern((x, CHAIN_NS.A, y)), name="Qedge"
    )
    return GraphMappingAssertion(
        source, target,
        source_peer="chain", target_peer="chain",
        label="transitivity",
    )


def transitive_closure_rps(chain_length: int) -> RPS:
    """One peer storing ``n0 -A-> n1 -A-> … -A-> n_k`` plus transitivity."""
    graph = Graph(
        (
            Triple(CHAIN_NS.term(f"n{i}"), CHAIN_NS.A, CHAIN_NS.term(f"n{i+1}"))
            for i in range(chain_length)
        ),
        name="chain",
    )
    return RPS.from_graphs({"chain": graph}, assertions=[transitivity_assertion()])


def ancestor_query(start: int = 0, end: Optional[int] = None) -> GraphPatternQuery:
    """``ASK { n_start A n_end }`` — reachable across the whole chain?"""
    if end is None:
        raise ValueError("end node index required")
    pattern = make_pattern(
        (CHAIN_NS.term(f"n{start}"), CHAIN_NS.A, CHAIN_NS.term(f"n{end}"))
    )
    return GraphPatternQuery((), pattern, name="ancestor")


def bounded_rewriting_answers(
    system: RPS,
    query: GraphPatternQuery,
    max_depth: int,
    max_queries: int = 100_000,
) -> Tuple[bool, RewriteResult]:
    """Evaluate the depth-bounded partial rewriting of a Boolean query.

    Returns ``(holds, stats)`` where ``holds`` is the (possibly
    incomplete) Boolean verdict of the depth-``max_depth`` UCQ
    under-approximation, evaluated over the stored database.
    """
    bcq = gpq_to_cq(query, label="ask")
    tgds = rewriting_tgds(system)
    stats = rewrite_ucq(
        bcq, tgds, max_queries=max_queries, max_depth=max_depth, strict=False
    )
    instance = Instance()
    for triple in system.stored_database():
        instance.add(
            Atom(
                TT,
                Constant(triple.subject),
                Constant(triple.predicate),
                Constant(triple.object),
            )
        )
    return stats.ucq.holds_in(instance), stats


def rewriting_growth(
    query: GraphPatternQuery,
    system: RPS,
    depths: Sequence[int],
    max_queries: int = 100_000,
) -> Dict[int, int]:
    """|UCQ| of the depth-d partial rewriting, for each d in ``depths``.

    For the transitive-closure system this grows without bound — the
    empirical face of Proposition 3.
    """
    bcq = gpq_to_cq(query, label="ask")
    tgds = rewriting_tgds(system)
    out: Dict[int, int] = {}
    for depth in depths:
        stats = rewrite_ucq(
            bcq, tgds, max_queries=max_queries, max_depth=depth, strict=False
        )
        out[depth] = len(stats.ucq)
    return out
