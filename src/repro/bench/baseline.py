"""Frozen pre-dictionary triple store and evaluator, for benchmarking.

This module preserves the seed implementation that indexed full
:class:`~repro.rdf.terms.Term` objects in nested dicts and joined
conjuncts by substituting partial :class:`SolutionMapping` objects into
triple patterns.  It exists for two reasons:

* the benchmark harness measures the dictionary-encoded store *against*
  it, so ``BENCH_core.json`` records a speedup rather than a bare number;
* the test suite uses it as an independent oracle — both implementations
  must produce identical matches and query answers on random workloads.

Do not use it outside benchmarks and tests; it is deliberately not
optimised further.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.gpq.bindings import SolutionMapping
from repro.gpq.query import GraphPatternQuery
from repro.rdf.terms import Literal, Term, Variable
from repro.rdf.triples import Triple, TriplePattern

__all__ = ["BaselineGraph", "baseline_evaluate_query", "baseline_match_bindings"]

_Index = Dict[Term, Dict[Term, Set[Term]]]


def _index_add(index: _Index, a: Term, b: Term, c: Term) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


class BaselineGraph:
    """The seed term-object store: SPO/POS/OSP over ``Term`` keys."""

    __slots__ = ("_triples", "_spo", "_pos", "_osp")

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        self._triples: Set[Triple] = set()
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        if triples is not None:
            for triple in triples:
                self.add(triple)

    def add(self, triple: Triple) -> bool:
        if triple in self._triples:
            return False
        self._triples.add(triple)
        s, p, o = triple.subject, triple.predicate, triple.object
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        return True

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> int:
        has_p = predicate is not None and not isinstance(predicate, Variable)
        if has_p and subject is None and object is None:
            by_obj = self._pos.get(predicate, {})
            return sum(len(subjs) for subjs in by_obj.values())
        return sum(1 for _ in self.triples(subject, predicate, object))

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        if isinstance(subject, Variable):
            subject = None
        if isinstance(predicate, Variable):
            predicate = None
        if isinstance(object, Variable):
            object = None

        if subject is not None and predicate is not None and object is not None:
            candidate = Triple(subject, predicate, object)
            if candidate in self._triples:
                yield candidate
            return

        if subject is not None:
            by_pred = self._spo.get(subject)
            if not by_pred:
                return
            if predicate is not None:
                for obj in by_pred.get(predicate, ()):
                    yield Triple(subject, predicate, obj)
            elif object is not None:
                by_subj = self._osp.get(object)
                if not by_subj:
                    return
                for pred in by_subj.get(subject, ()):
                    yield Triple(subject, pred, object)
            else:
                for pred, objs in by_pred.items():
                    for obj in objs:
                        yield Triple(subject, pred, obj)
            return

        if predicate is not None:
            by_obj = self._pos.get(predicate)
            if not by_obj:
                return
            if object is not None:
                for subj in by_obj.get(object, ()):
                    yield Triple(subj, predicate, object)
            else:
                for obj, subjs in by_obj.items():
                    for subj in subjs:
                        yield Triple(subj, predicate, obj)
            return

        if object is not None:
            by_subj = self._osp.get(object)
            if not by_subj:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield Triple(subj, pred, object)
            return

        yield from self._triples

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        subject = None if isinstance(pattern.subject, Variable) else pattern.subject
        predicate = (
            None if isinstance(pattern.predicate, Variable) else pattern.predicate
        )
        object = None if isinstance(pattern.object, Variable) else pattern.object
        if isinstance(subject, Literal):
            return
        for triple in self.triples(subject, predicate, object):
            if pattern.matches(triple) is not None:
                yield triple


def baseline_match_bindings(
    graph: BaselineGraph, tp: TriplePattern, partial: SolutionMapping
) -> Iterator[SolutionMapping]:
    """The seed conjunct step: substitute, match, extend term-by-term."""
    instantiated = tp.substitute(partial.as_dict())
    for triple in graph.match(instantiated):
        binding = instantiated.matches(triple)
        if binding is None:
            continue
        extended = partial
        ok = True
        for var, term in binding.items():
            bound = extended.get(var)
            if bound is None:
                extended = extended.extend(var, term)
            elif bound != term:
                ok = False
                break
        if ok:
            yield extended


def _order_conjuncts(
    graph: BaselineGraph, conjuncts: List[TriplePattern]
) -> List[TriplePattern]:
    remaining = list(conjuncts)
    ordered: List[TriplePattern] = []
    bound: Set[Variable] = set()

    def cost(tp: TriplePattern) -> Tuple[int, int]:
        bound_positions = sum(
            1
            for term in tp
            if not isinstance(term, Variable) or term in bound
        )
        if isinstance(tp.predicate, Variable):
            predicate_count = len(graph)
        else:
            predicate_count = graph.count(predicate=tp.predicate)
        return (-bound_positions, predicate_count)

    while remaining:
        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def baseline_evaluate_query(
    graph: BaselineGraph, query: GraphPatternQuery
) -> Set[Tuple[Term, ...]]:
    """The seed INL join under the blank-keeping ``Q*`` semantics."""
    conjuncts = _order_conjuncts(graph, query.pattern.conjuncts())
    frontier: List[SolutionMapping] = [SolutionMapping()]
    for tp in conjuncts:
        next_frontier: List[SolutionMapping] = []
        for partial in frontier:
            next_frontier.extend(baseline_match_bindings(graph, tp, partial))
        if not next_frontier:
            return set()
        frontier = next_frontier
    return {tuple(mu[v] for v in query.head) for mu in set(frontier)}
