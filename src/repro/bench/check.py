"""Benchmark regression gate: compare a fresh smoke run to baselines.

``python -m repro.bench --check`` re-runs every suite at the committed
smoke parameters and compares the fresh records against the ``smoke``
block of the committed report (``BENCH_core.json``).  Raw wall-clock
seconds are *not* compared — CI runners and developer machines differ by
far more than any real regression — instead the gate checks the two
classes of quantity that survive a machine change:

* **deterministic metrics** — result cardinalities, chase rounds and
  solution sizes, federation message counts and transfer volumes.  These
  are seeded and must match the committed values exactly; any drift is a
  behaviour change, not noise.
* **machine-normalised speedups** — each comparative benchmark times the
  optimised implementation *and* the frozen seed implementation in the
  same process, so their ratio cancels the machine.  Ratios are
  aggregated per suite (geometric mean over e.g. all ``sparql/*``
  rows), because individual smoke-scale rows run in fractions of a
  millisecond and jitter; the gate fails when a suite's aggregate
  speedup falls below the committed aggregate divided by the tolerance
  (default 2x), i.e. on a >2x relative slowdown of any suite.

The gate also re-asserts the federation invariant (bound joins ship
strictly fewer messages than naive shipping) on the fresh records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.runner import build_report

__all__ = ["CheckOutcome", "check_against", "DEFAULT_TOLERANCE"]

#: A fresh speedup may be up to this factor below the committed one.
DEFAULT_TOLERANCE = 2.0

#: Integer meta fields that are deterministic given the seeded workloads
#: and must match the committed baseline exactly.
GATED_META = (
    "result",
    "results",
    "rounds",
    "solution_triples",
    "messages",
    "solutions_transferred",
    "triples_transferred",
)


@dataclass
class CheckOutcome:
    """Result of one regression check.

    Attributes:
        ok: True when no comparison failed.
        failures: human-readable description of every failed comparison.
        checked: number of benchmark records compared.
        fresh_report: the freshly produced smoke report (for artifacts).
    """

    ok: bool
    failures: List[str] = field(default_factory=list)
    checked: int = 0
    fresh_report: Optional[Dict[str, Any]] = None

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [
            f"bench check: {status} "
            f"({self.checked} records, {len(self.failures)} failures)"
        ]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


def check_against(
    committed: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    fresh: Optional[Dict[str, Any]] = None,
) -> CheckOutcome:
    """Compare a fresh smoke run against a committed report.

    Args:
        committed: the parsed committed report; its ``smoke`` block holds
            the baselines (regenerate with ``python -m repro.bench``).
        tolerance: allowed relative speedup degradation (>1).
        fresh: pre-computed fresh report (tests inject small ones); when
            ``None`` the suites run at the committed smoke parameters.

    Returns:
        A :class:`CheckOutcome`; ``ok`` is False on any missing record,
        deterministic-metric drift, or out-of-band slowdown.
    """
    baseline = committed.get("smoke")
    if baseline is None:
        return CheckOutcome(
            ok=False,
            failures=[
                "committed report has no 'smoke' block; regenerate it with "
                "'python -m repro.bench'"
            ],
        )
    if fresh is None:
        try:
            fresh = build_report(
                scale=baseline.get("scale", 3000),
                repeat=baseline.get("repeat", 1),
                peers=baseline.get("peers", 3),
            )
        except AssertionError as exc:
            # The suites hard-assert behaviour invariants (result
            # equality, bound < naive messages); surface those through
            # the gate's reporting path instead of a raw traceback.
            return CheckOutcome(
                ok=False,
                failures=[f"benchmark suite self-check failed: {exc}"],
            )

    failures: List[str] = []
    fresh_rows = {row["name"]: row for row in fresh["benchmarks"]}
    committed_rows = [dict(row) for row in baseline["benchmarks"]]

    for row in committed_rows:
        name = row["name"]
        current = fresh_rows.get(name)
        if current is None:
            failures.append(f"{name}: benchmark disappeared from the suite")
            continue
        committed_meta = row.get("meta", {})
        current_meta = current.get("meta", {})
        for key in GATED_META:
            if key in committed_meta:
                if current_meta.get(key) != committed_meta[key]:
                    failures.append(
                        f"{name}: {key} changed "
                        f"{committed_meta[key]!r} -> {current_meta.get(key)!r}"
                    )
        if row.get("speedup") is not None and current.get("speedup") is None:
            failures.append(f"{name}: speedup measurement disappeared")

    committed_suites = _suite_speedups(committed_rows)
    fresh_suites = _suite_speedups(fresh_rows.values())
    for suite, committed_speedup in sorted(committed_suites.items()):
        current_speedup = fresh_suites.get(suite)
        if current_speedup is None:
            continue  # disappearance already reported per-row above
        if current_speedup < committed_speedup / tolerance:
            failures.append(
                f"suite {suite}: speedup {current_speedup:.2f}x fell more "
                f"than {tolerance:g}x below committed "
                f"{committed_speedup:.2f}x"
            )

    failures.extend(_federation_invariant(fresh_rows))
    return CheckOutcome(
        ok=not failures,
        failures=failures,
        checked=len(committed_rows),
        fresh_report=fresh,
    )


def _suite_speedups(rows) -> Dict[str, float]:
    """Geometric-mean speedup per suite (rows without speedups ignored)."""
    grouped: Dict[str, List[float]] = {}
    for row in rows:
        speedup = row.get("speedup")
        if speedup is not None and speedup > 0:
            suite = row["name"].split("/", 1)[0]
            grouped.setdefault(suite, []).append(speedup)
    return {
        suite: math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        for suite, speedups in grouped.items()
    }


def _federation_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """Bound joins must ship strictly fewer messages than naive shipping."""
    failures = []
    scales = {
        name.rsplit("@", 1)[1]
        for name in fresh_rows
        if name.startswith("federation/")
    }
    for scale in sorted(scales, key=lambda s: int(s)):
        naive = fresh_rows.get(f"federation/naive@{scale}")
        bound = fresh_rows.get(f"federation/bound@{scale}")
        if naive is None or bound is None:
            continue
        naive_messages = naive.get("meta", {}).get("messages")
        bound_messages = bound.get("meta", {}).get("messages")
        if (
            naive_messages is not None
            and bound_messages is not None
            and bound_messages >= naive_messages
        ):
            failures.append(
                f"federation@{scale}: bound joins shipped {bound_messages} "
                f"messages, not fewer than naive's {naive_messages}"
            )
    return failures
