"""Benchmark regression gate: compare a fresh smoke run to baselines.

``python -m repro.bench --check`` re-runs every suite at the committed
smoke parameters and compares the fresh records against the ``smoke``
block of the committed report (``BENCH_core.json``).  Raw wall-clock
seconds are *not* compared — CI runners and developer machines differ by
far more than any real regression — instead the gate checks the two
classes of quantity that survive a machine change:

* **deterministic metrics** — result cardinalities, chase rounds and
  solution sizes, federation message counts and transfer volumes.  These
  are seeded and must match the committed values exactly; any drift is a
  behaviour change, not noise.
* **machine-normalised speedups** — each comparative benchmark times the
  optimised implementation *and* the frozen seed implementation in the
  same process, so their ratio cancels the machine.  Ratios are
  aggregated per suite (geometric mean over e.g. all ``sparql/*``
  rows), because individual smoke-scale rows run in fractions of a
  millisecond and jitter.  To keep a single noisy timing from failing
  CI, the smoke suites run ``runs`` times (default 3) and the gate
  compares the *median* per-suite aggregate; it fails when that median
  falls below the committed aggregate divided by the tolerance
  (default 2x), i.e. on a reproducible >2x relative slowdown of a
  suite, and the failure names the suite and metric that drifted.

The gate also re-asserts nine behaviour invariants on the fresh
records: the columnar batch engine beats the per-row engine strictly
on at least one join workload and the prepared-plan cache's recorded
counters show the hot run all-hits and the cold run all-misses,
bound joins ship strictly fewer messages than naive shipping,
the adaptive plan is never Pareto-dominated by a fixed strategy (worse
on messages *and* transfer simultaneously) on any adaptive-suite
workload, the parallel mode's makespan (``elapsed_seconds``) never
exceeds the serial adaptive plan's on any parallel-suite workload —
with exclusive groups cutting messages on at least one of them —
pipelined bound joins never lose wall clock to wave barriers on any
streaming-suite workload while shipping the same messages, with a
strict makespan win on at least one, and a solution-modifier cap never
costs messages on any limit-suite workload while strictly cutting both
messages and makespan on the deep bound-join workloads (demand
propagation actually stops the pipeline), and on every faults-suite
scenario a recoverable faulty run returns exactly as many answers as
its fault-free twin with no partial flag, an unrecoverable run is
*flagged* partial (never an unflagged subset), and retry traffic stays
within the ``messages * (1 + max_retries) * (1 + replicas)`` budget,
and on every obs-suite record the telemetry layer's recorded flags
show the exported trace validated against the Chrome ``trace_event``
shape, the virtual-domain export and the ANALYZE explain stayed
byte-stable across repeated seeded runs, spans were actually
collected, and the disabled-vs-instrumented overhead comparison is
present (its per-suite speedup ratio rides the regular tolerance
gate, bounding how much overhead the disabled tracing path may
silently grow), and on the concurrency suite the AIMD adaptive
controller's p95 makespan is never worse than any fixed in-flight
window at any offered-load point and strictly better on at least one,
while weighted round-robin keeps the skewed workload's max/min
per-tenant stretch ratio strictly below FIFO's.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.bench.runner import build_report

__all__ = [
    "CheckOutcome",
    "check_against",
    "DEFAULT_TOLERANCE",
    "DEFAULT_RUNS",
]

#: A fresh speedup may be up to this factor below the committed one.
DEFAULT_TOLERANCE = 2.0

#: Fresh smoke runs per check; the speedup comparison uses their median
#: so one noisy timing cannot fail the gate.
DEFAULT_RUNS = 3

#: Integer meta fields that are deterministic given the seeded workloads
#: and must match the committed baseline exactly.
GATED_META = (
    "result",
    "results",
    "rounds",
    "solution_triples",
    "messages",
    "solutions_transferred",
    "triples_transferred",
    "retries",
    "failures",
    "timeouts",
    "failovers",
    "partial",
    "unreachable",
    "span_count",
    "trace_valid",
    "trace_stable",
    "analyze_stable",
    "tenants",
    "p95_us",
    "makespan_us",
    "adjustments",
    "ratio_x1000",
)


@dataclass
class CheckOutcome:
    """Result of one regression check.

    Attributes:
        ok: True when no comparison failed.
        failures: human-readable description of every failed comparison.
        checked: number of benchmark records compared.
        fresh_report: the freshly produced smoke report (for artifacts).
    """

    ok: bool
    failures: List[str] = field(default_factory=list)
    checked: int = 0
    fresh_report: Optional[Dict[str, Any]] = None

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [
            f"bench check: {status} "
            f"({self.checked} records, {len(self.failures)} failures)"
        ]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


def check_against(
    committed: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    fresh: Union[Dict[str, Any], Sequence[Dict[str, Any]], None] = None,
    runs: int = DEFAULT_RUNS,
) -> CheckOutcome:
    """Compare fresh smoke runs against a committed report.

    Args:
        committed: the parsed committed report; its ``smoke`` block holds
            the baselines (regenerate with ``python -m repro.bench``).
        tolerance: allowed relative speedup degradation (>1).
        fresh: pre-computed fresh report or list of reports (tests
            inject small ones); when ``None`` the suites run ``runs``
            times at the committed smoke parameters.
        runs: fresh runs to aggregate when ``fresh`` is ``None``; the
            speedup gate compares the per-suite *median* across runs.

    Returns:
        A :class:`CheckOutcome`; ``ok`` is False on any missing record,
        deterministic-metric drift, invariant violation, or
        reproducible out-of-band slowdown.  Deterministic metrics and
        the behaviour invariants are checked on the first run (they are
        seeded, so every run agrees); only timings are aggregated.
    """
    baseline = committed.get("smoke")
    if baseline is None:
        return CheckOutcome(
            ok=False,
            failures=[
                "committed report has no 'smoke' block; regenerate it with "
                "'python -m repro.bench'"
            ],
        )
    if fresh is None:
        try:
            reports = [
                build_report(
                    scale=baseline.get("scale", 3000),
                    repeat=baseline.get("repeat", 1),
                    peers=baseline.get("peers", 3),
                )
                for _ in range(max(1, runs))
            ]
        except AssertionError as exc:
            # The suites hard-assert behaviour invariants (result
            # equality, bound < naive messages, adaptive never
            # dominated); surface those through the gate's reporting
            # path instead of a raw traceback.
            return CheckOutcome(
                ok=False,
                failures=[f"benchmark suite self-check failed: {exc}"],
            )
    elif isinstance(fresh, dict):
        reports = [fresh]
    else:
        reports = list(fresh)
        if not reports:
            return CheckOutcome(
                ok=False,
                failures=["no fresh reports supplied to compare against"],
            )
    fresh = reports[0]

    failures: List[str] = []
    fresh_rows = {row["name"]: row for row in fresh["benchmarks"]}
    committed_rows = [dict(row) for row in baseline["benchmarks"]]

    for row in committed_rows:
        name = row["name"]
        current = fresh_rows.get(name)
        if current is None:
            failures.append(f"{name}: benchmark disappeared from the suite")
            continue
        committed_meta = row.get("meta", {})
        current_meta = current.get("meta", {})
        for key in GATED_META:
            if key in committed_meta:
                if current_meta.get(key) != committed_meta[key]:
                    failures.append(
                        f"{name}: {key} changed "
                        f"{committed_meta[key]!r} -> {current_meta.get(key)!r}"
                    )
        if row.get("speedup") is not None and current.get("speedup") is None:
            failures.append(f"{name}: speedup measurement disappeared")

    committed_suites = _suite_speedups(committed_rows)
    per_run = [_suite_speedups(report["benchmarks"]) for report in reports]
    for suite, committed_speedup in sorted(committed_suites.items()):
        observed = [
            run[suite] for run in per_run if run.get(suite) is not None
        ]
        if not observed:
            continue  # disappearance already reported per-row above
        current_speedup = statistics.median(observed)
        if current_speedup < committed_speedup / tolerance:
            failures.append(
                f"suite {suite}: median speedup over {len(observed)} "
                f"run(s) {current_speedup:.2f}x fell more than "
                f"{tolerance:g}x below committed {committed_speedup:.2f}x"
            )

    failures.extend(_columnar_invariant(fresh_rows))
    failures.extend(_federation_invariant(fresh_rows))
    failures.extend(_adaptive_invariant(fresh_rows))
    failures.extend(_parallel_invariant(fresh_rows))
    failures.extend(_streaming_invariant(fresh_rows))
    failures.extend(_limit_invariant(fresh_rows))
    failures.extend(_faults_invariant(fresh_rows))
    failures.extend(_obs_invariant(fresh_rows))
    failures.extend(_concurrency_invariant(fresh_rows))
    return CheckOutcome(
        ok=not failures,
        failures=failures,
        checked=len(committed_rows),
        fresh_report=fresh,
    )


def _suite_speedups(rows) -> Dict[str, float]:
    """Geometric-mean speedup per suite (rows without speedups ignored)."""
    grouped: Dict[str, List[float]] = {}
    for row in rows:
        speedup = row.get("speedup")
        if speedup is not None and speedup > 0:
            suite = row["name"].split("/", 1)[0]
            grouped.setdefault(suite, []).append(speedup)
    return {
        suite: math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        for suite, speedups in grouped.items()
    }


def _columnar_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """The batch engine must win somewhere and the plan cache must hit.

    Answer equality between the batch and row engines is hard-asserted
    inside the suite (a disagreement aborts the run before any record
    exists) and cardinality drift is caught by the ``result`` gate, so
    the invariant re-checks the two claims only the recorded rows can
    show: at least one comparative ``columnar/*`` workload ran strictly
    faster columnar than per-row (both timed in the same process, so
    the comparison is machine-independent), and the
    ``columnar/plan_cache`` record's counter deltas show the hot run
    served entirely from the cache while the cold run missed on every
    call.
    """
    failures = []
    comparative = [
        row
        for name, row in sorted(fresh_rows.items())
        if name.startswith("columnar/") and name != "columnar/plan_cache"
    ]
    if comparative and not any(
        (row.get("speedup") or 0.0) > 1.0 for row in comparative
    ):
        failures.append(
            "columnar suite: no workload showed a strict batch-engine "
            "win (batch seconds < row seconds)"
        )
    cache = fresh_rows.get("columnar/plan_cache")
    if cache is not None:
        meta = cache.get("meta", {})
        if meta.get("hot_misses") != 0 or not meta.get("hot_hits"):
            failures.append(
                f"columnar/plan_cache: hot run was not served entirely "
                f"from the cache (hits={meta.get('hot_hits')!r}, "
                f"misses={meta.get('hot_misses')!r})"
            )
        if meta.get("cold_hits") != 0 or not meta.get(
            "cold_misses_last_call"
        ):
            failures.append(
                f"columnar/plan_cache: cold run hit a cache that is "
                f"cleared before every call "
                f"(hits={meta.get('cold_hits')!r}, last-call "
                f"misses={meta.get('cold_misses_last_call')!r})"
            )
    return failures


def _adaptive_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """The adaptive plan must not be Pareto-dominated by a fixed strategy.

    For every adaptive-suite workload: no fixed strategy may beat the
    adaptive plan on messages *and* transfer units simultaneously.
    """
    failures = []
    workloads = {
        name[len("adaptive/") :].rsplit(":", 1)[0]
        for name in fresh_rows
        if name.startswith("adaptive/") and ":" in name
    }
    for workload in sorted(workloads):
        chosen = fresh_rows.get(f"adaptive/{workload}:adaptive")
        if chosen is None:
            continue
        chosen_meta = chosen.get("meta", {})
        for strategy in ("naive", "bound", "collect"):
            other = fresh_rows.get(f"adaptive/{workload}:{strategy}")
            if other is None:
                continue
            other_meta = other.get("meta", {})
            messages = chosen_meta.get("messages")
            transfer = chosen_meta.get("transfer_units")
            other_messages = other_meta.get("messages")
            other_transfer = other_meta.get("transfer_units")
            if None in (messages, transfer, other_messages, other_transfer):
                continue
            if messages > other_messages and transfer > other_transfer:
                failures.append(
                    f"adaptive@{workload}: dominated by {strategy} "
                    f"(messages {messages} > {other_messages}, transfer "
                    f"{transfer} > {other_transfer})"
                )
    return failures


def _parallel_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """The parallel mode must win (or tie) wall clock on every workload.

    For every parallel-suite workload the overlap-aware mode's
    ``elapsed_seconds`` may not exceed the serial adaptive plan's, and
    across the suite at least one workload must show the exclusive-group
    message reduction.  Both compare rows of the *same* fresh run, so
    the check is machine-independent.
    """
    failures = []
    workloads = {
        name[len("parallel/") :].rsplit(":", 1)[0]
        for name in fresh_rows
        if name.startswith("parallel/") and ":" in name
    }
    any_message_cut = False
    compared = False
    for workload in sorted(workloads):
        serial = fresh_rows.get(f"parallel/{workload}:serial")
        overlapped = fresh_rows.get(f"parallel/{workload}:parallel")
        if serial is None or overlapped is None:
            continue
        serial_meta = serial.get("meta", {})
        overlapped_meta = overlapped.get("meta", {})
        serial_elapsed = serial_meta.get("elapsed_seconds")
        overlapped_elapsed = overlapped_meta.get("elapsed_seconds")
        if serial_elapsed is None or overlapped_elapsed is None:
            continue
        compared = True
        if overlapped_elapsed > serial_elapsed + 1e-9:
            failures.append(
                f"parallel@{workload}: makespan {overlapped_elapsed:.6f}s "
                f"exceeds the serial plan's {serial_elapsed:.6f}s"
            )
        serial_messages = serial_meta.get("messages")
        overlapped_messages = overlapped_meta.get("messages")
        if (
            serial_messages is not None
            and overlapped_messages is not None
            and overlapped_messages < serial_messages
        ):
            any_message_cut = True
    if compared and not any_message_cut:
        failures.append(
            "parallel suite: no workload showed an exclusive-group "
            "message reduction (parallel messages < serial messages)"
        )
    return failures


def _streaming_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """Pipelined bound joins must never lose wall clock to wave barriers.

    For every streaming-suite workload the pipelined mode's
    ``elapsed_seconds`` may not exceed the wave-barrier mode's, its
    message count must be identical (pipelining changes the timeline,
    not the traffic), and across the suite at least one workload must
    show a strict makespan win.  All comparisons pair rows of the same
    fresh run, so the check is machine-independent.
    """
    failures = []
    workloads = {
        name[len("streaming/") :].rsplit(":", 1)[0]
        for name in fresh_rows
        if name.startswith("streaming/") and ":" in name
    }
    any_strict_win = False
    compared = False
    for workload in sorted(workloads):
        wave = fresh_rows.get(f"streaming/{workload}:wave")
        pipelined = fresh_rows.get(f"streaming/{workload}:pipelined")
        if wave is None or pipelined is None:
            continue
        wave_meta = wave.get("meta", {})
        pipelined_meta = pipelined.get("meta", {})
        wave_elapsed = wave_meta.get("elapsed_seconds")
        pipelined_elapsed = pipelined_meta.get("elapsed_seconds")
        if wave_elapsed is None or pipelined_elapsed is None:
            continue
        compared = True
        if pipelined_elapsed > wave_elapsed + 1e-9:
            failures.append(
                f"streaming@{workload}: pipelined makespan "
                f"{pipelined_elapsed:.6f}s exceeds the wave barrier's "
                f"{wave_elapsed:.6f}s"
            )
        elif pipelined_elapsed < wave_elapsed - 1e-9:
            any_strict_win = True
        wave_messages = wave_meta.get("messages")
        pipelined_messages = pipelined_meta.get("messages")
        if (
            wave_messages is not None
            and pipelined_messages is not None
            and pipelined_messages != wave_messages
        ):
            failures.append(
                f"streaming@{workload}: pipelining changed the message "
                f"count {wave_messages} -> {pipelined_messages}"
            )
    if compared and not any_strict_win:
        failures.append(
            "streaming suite: no workload showed a strict pipelining win "
            "(pipelined elapsed < wave elapsed)"
        )
    return failures


def _limit_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """A solution-modifier cap must never cost work, and must save it.

    For every limit-suite workload the ``:limited`` run's message count
    may not exceed its ``:unlimited`` twin's, and on the deep
    multi-batch workloads (``deep_*``, ``ask*`` — where demand
    propagation is supposed to stop the bound-join pipeline early) both
    messages and ``elapsed_seconds`` must be *strictly* lower.  All
    comparisons pair rows of the same fresh run, so the check is
    machine-independent.
    """
    failures = []
    workloads = {
        name[len("limit/") :].rsplit(":", 1)[0]
        for name in fresh_rows
        if name.startswith("limit/") and ":" in name
    }
    for workload in sorted(workloads):
        unlimited = fresh_rows.get(f"limit/{workload}:unlimited")
        limited = fresh_rows.get(f"limit/{workload}:limited")
        if unlimited is None or limited is None:
            continue
        full_meta = unlimited.get("meta", {})
        cut_meta = limited.get("meta", {})
        full_messages = full_meta.get("messages")
        cut_messages = cut_meta.get("messages")
        if full_messages is None or cut_messages is None:
            continue
        if cut_messages > full_messages:
            failures.append(
                f"limit@{workload}: the capped run shipped more messages "
                f"({cut_messages} > {full_messages})"
            )
        deep = workload.startswith(("deep_", "ask"))
        if not deep:
            continue
        if cut_messages >= full_messages:
            failures.append(
                f"limit@{workload}: no strict message win "
                f"({cut_messages} >= {full_messages}); demand propagation "
                f"did not stop the pipeline"
            )
        full_elapsed = full_meta.get("elapsed_seconds")
        cut_elapsed = cut_meta.get("elapsed_seconds")
        if full_elapsed is None or cut_elapsed is None:
            continue
        if cut_elapsed >= full_elapsed - 1e-9:
            failures.append(
                f"limit@{workload}: no strict makespan win "
                f"({cut_elapsed:.6f}s >= {full_elapsed:.6f}s)"
            )
    return failures


def _faults_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """Fault recovery must be exact and degradation must be flagged.

    For every faults-suite scenario the ``:faulty`` run is paired with
    its ``:faultfree`` twin from the same fresh run.  A scenario marked
    *recoverable* must return exactly as many answers as the fault-free
    twin with no partial flag; an unrecoverable one must come back
    flagged partial with at least one named unreachable endpoint and at
    most the fault-free answer count — a flagged subset, never a
    silently wrong one.  Every faulty run's message count must stay
    within the recorded ``retry_budget``
    (``faultfree messages * (1 + max_retries) * (1 + replicas)``).
    """
    failures = []
    workloads = {
        name[len("faults/") :].rsplit(":", 1)[0]
        for name in fresh_rows
        if name.startswith("faults/") and ":" in name
    }
    for workload in sorted(workloads):
        faultfree = fresh_rows.get(f"faults/{workload}:faultfree")
        faulty = fresh_rows.get(f"faults/{workload}:faulty")
        if faultfree is None or faulty is None:
            continue
        free_meta = faultfree.get("meta", {})
        fault_meta = faulty.get("meta", {})
        free_results = free_meta.get("results")
        fault_results = fault_meta.get("results")
        partial = fault_meta.get("partial")
        if None in (free_results, fault_results, partial):
            continue
        if fault_meta.get("recoverable"):
            if fault_results != free_results or partial:
                failures.append(
                    f"faults@{workload}: recoverable run did not match the "
                    f"fault-free answers unflagged ({fault_results} vs "
                    f"{free_results} results, partial={partial})"
                )
        else:
            if not partial or not fault_meta.get("unreachable"):
                failures.append(
                    f"faults@{workload}: unrecoverable run came back "
                    f"unflagged — a silently wrong subset"
                )
            if fault_results > free_results:
                failures.append(
                    f"faults@{workload}: partial run produced more answers "
                    f"({fault_results}) than fault-free ({free_results})"
                )
        budget = fault_meta.get("retry_budget")
        messages = fault_meta.get("messages")
        if (
            budget is not None
            and messages is not None
            and messages > budget
        ):
            failures.append(
                f"faults@{workload}: {messages} messages exceed the retry "
                f"budget {budget}"
            )
    return failures


def _obs_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """Telemetry must validate, stay byte-stable, and cost nothing off.

    Every obs-suite record's flags are hard-asserted inside the suite
    (a violation aborts the run), so the invariant re-checks what the
    recorded rows can show: the exported trace validated
    (``trace_valid``), the virtual-domain export and the ANALYZE
    explain were byte-identical across repeated seeded runs
    (``trace_stable``/``analyze_stable``), spans were collected
    (``span_count``), and the disabled-vs-instrumented timing pair is
    present — its ratio feeds the per-suite speedup gate, which bounds
    growth of the disabled path's overhead.
    """
    failures = []
    for name, row in sorted(fresh_rows.items()):
        if not name.startswith("obs/"):
            continue
        meta = row.get("meta", {})
        for flag in ("trace_valid", "trace_stable", "analyze_stable"):
            if flag in meta and not meta[flag]:
                failures.append(f"{name}: {flag} flag is unset")
        if "span_count" in meta and not meta["span_count"]:
            failures.append(f"{name}: instrumented run collected no spans")
        if row.get("speedup") is None:
            failures.append(
                f"{name}: disabled-vs-instrumented overhead comparison "
                f"disappeared"
            )
    return failures


def _concurrency_invariant(
    fresh_rows: Dict[str, Dict[str, Any]],
) -> List[str]:
    """Adaptive control must beat fixed windows; WRR must bound skew.

    Per-tenant answer equality with solo execution and adaptive
    byte-determinism are hard-asserted inside the suite (a violation
    aborts the run before any record exists), so the invariant
    re-checks the two performance claims the recorded rows can show.
    At every ``concurrency/load{N}`` offered-load point the
    ``:adaptive`` record's ``p95_us`` may not exceed any fixed
    ``:w{W}`` record's, and across the load points at least one strict
    win is required — otherwise the AIMD controller is dead weight.
    On the skewed flood workload ``concurrency/skew:wrr``'s
    ``ratio_x1000`` (max/min per-tenant stretch, scaled) must be
    strictly below ``concurrency/skew:fifo``'s — weighted round-robin
    must actually bound the starvation FIFO admission allows.  All
    quantities are deterministic microsecond/ratio integers from the
    same fresh run, so the check is machine-independent.
    """
    failures = []
    loads = {
        name[len("concurrency/") :].rsplit(":", 1)[0]
        for name in fresh_rows
        if name.startswith("concurrency/load") and ":" in name
    }
    any_strict_win = False
    compared = False
    for load in sorted(loads):
        adaptive = fresh_rows.get(f"concurrency/{load}:adaptive")
        if adaptive is None:
            continue
        adaptive_p95 = adaptive.get("meta", {}).get("p95_us")
        if adaptive_p95 is None:
            continue
        for name, row in sorted(fresh_rows.items()):
            prefix = f"concurrency/{load}:w"
            if not name.startswith(prefix):
                continue
            fixed_p95 = row.get("meta", {}).get("p95_us")
            if fixed_p95 is None:
                continue
            compared = True
            if adaptive_p95 > fixed_p95:
                failures.append(
                    f"concurrency@{load}: adaptive p95 {adaptive_p95}us "
                    f"exceeds fixed window {name.rsplit(':', 1)[1]}'s "
                    f"{fixed_p95}us"
                )
            elif adaptive_p95 < fixed_p95:
                any_strict_win = True
    if compared and not any_strict_win:
        failures.append(
            "concurrency suite: adaptive control never strictly beat a "
            "fixed in-flight window at any load point"
        )
    fifo = fresh_rows.get("concurrency/skew:fifo")
    wrr = fresh_rows.get("concurrency/skew:wrr")
    if fifo is not None and wrr is not None:
        fifo_ratio = fifo.get("meta", {}).get("ratio_x1000")
        wrr_ratio = wrr.get("meta", {}).get("ratio_x1000")
        if (
            fifo_ratio is not None
            and wrr_ratio is not None
            and wrr_ratio >= fifo_ratio
        ):
            failures.append(
                f"concurrency@skew: weighted round-robin's stretch ratio "
                f"{wrr_ratio} did not improve on FIFO's {fifo_ratio}"
            )
    return failures


def _federation_invariant(fresh_rows: Dict[str, Dict[str, Any]]) -> List[str]:
    """Bound joins must ship strictly fewer messages than naive shipping."""
    failures = []
    scales = {
        name.rsplit("@", 1)[1]
        for name in fresh_rows
        if name.startswith("federation/")
    }
    for scale in sorted(scales, key=lambda s: int(s)):
        naive = fresh_rows.get(f"federation/naive@{scale}")
        bound = fresh_rows.get(f"federation/bound@{scale}")
        if naive is None or bound is None:
            continue
        naive_messages = naive.get("meta", {}).get("messages")
        bound_messages = bound.get("meta", {}).get("messages")
        if (
            naive_messages is not None
            and bound_messages is not None
            and bound_messages >= naive_messages
        ):
            failures.append(
                f"federation@{scale}: bound joins shipped {bound_messages} "
                f"messages, not fewer than naive's {naive_messages}"
            )
    return failures
