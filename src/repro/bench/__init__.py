"""Micro-benchmark harness for the storage and evaluation core.

``python -m repro.bench`` runs three suites — triple-pattern matching,
GPQ conjunct joins, and the Algorithm-1 peer chase — over the synthetic
``repro.workload`` generators and writes the results to
``BENCH_core.json``.  Pattern and join suites are measured twice: once on
the dictionary-encoded :class:`~repro.rdf.graph.Graph` and once on a
frozen copy of the pre-dictionary term-object store
(:mod:`repro.bench.baseline`), so every run reports the speedup the
encoding buys and regressions show up as a ratio drifting toward 1.
"""

from repro.bench.baseline import BaselineGraph, baseline_evaluate_query
from repro.bench.runner import run_all

__all__ = ["BaselineGraph", "baseline_evaluate_query", "run_all"]
