"""Micro-benchmark harness for the storage, evaluation and federation core.

``python -m repro.bench`` runs five suites — triple-pattern matching,
GPQ conjunct joins, the Algorithm-1 peer chase, full SPARQL queries
through the ID-native planner, and federated execution strategies —
over the synthetic ``repro.workload`` generators and writes the results
to ``BENCH_core.json``.  Comparative suites are measured twice: once on
the optimised implementation and once on a frozen reference (the seed
term-object store for match/join, the naive term-level algebra
evaluator for sparql), so every run reports a machine-normalised
speedup and regressions show up as a ratio drifting toward 1.

``python -m repro.bench --check`` is the CI regression gate
(:mod:`repro.bench.check`).
"""

from repro.bench.baseline import BaselineGraph, baseline_evaluate_query
from repro.bench.check import CheckOutcome, check_against
from repro.bench.runner import build_report, run_all

__all__ = [
    "BaselineGraph",
    "CheckOutcome",
    "baseline_evaluate_query",
    "build_report",
    "check_against",
    "run_all",
]
