"""CLI entry point: ``python -m repro.bench [--scale N] [--out PATH]``."""

from __future__ import annotations

import argparse
import os

from repro.bench.runner import (
    DEFAULT_OUT,
    DEFAULT_SCALE,
    format_summary,
    run_all,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the storage/evaluation core micro-benchmarks.",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help=f"triples in the workload graph (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="timing repetitions, best-of (default 3)",
    )
    parser.add_argument(
        "--peers",
        type=int,
        default=6,
        help="peer count for the chase suite (default 6)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"JSON report path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out_dir = os.path.dirname(os.path.abspath(args.out)) or "."
    if not os.path.isdir(out_dir):
        parser.error(f"--out directory does not exist: {out_dir}")
    report = run_all(
        scale=args.scale, repeat=args.repeat, out=args.out, peers=args.peers
    )
    print(format_summary(report))
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
