"""CLI entry point: ``python -m repro.bench [--scale N] [--out PATH]``.

Two modes:

* default — run every suite at ``--scale`` plus the fixed smoke scale
  and write both into one report (the smoke block is the committed
  regression baseline);
* ``--check`` — re-run the suites at the committed smoke parameters
  (``--runs`` times; speedups compare by per-suite median, so one noisy
  timing cannot fail CI) and fail (exit 1) on deterministic-metric
  drift, behaviour-invariant violations (the columnar batch engine
  strictly beating the row engine somewhere with plan-cache counters
  showing all-hit hot and all-miss cold runs, bound < naive messages,
  adaptive never Pareto-dominated, parallel makespan never above
  serial, pipelined bound joins never above wave barriers with
  identical messages, LIMIT/ASK demand caps strictly cutting messages
  and makespan on the deep bound-join workloads, recoverable fault
  scenarios matching the fault-free answers unflagged while
  unrecoverable ones come back *flagged* partial within the retry
  budget) or >``--tolerance``x median speedup regressions against
  ``--against``.  Used as the CI gate.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.bench.check import DEFAULT_RUNS, DEFAULT_TOLERANCE, check_against
from repro.bench.runner import (
    DEFAULT_OUT,
    DEFAULT_SCALE,
    format_summary,
    run_all,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the storage/evaluation core micro-benchmarks.",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help=f"triples in the workload graph (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="timing repetitions, best-of (default 3)",
    )
    parser.add_argument(
        "--peers",
        type=int,
        default=None,
        help="peer count for the chase suite (default 6)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=f"JSON report path (default {DEFAULT_OUT}; in --check mode "
        "the fresh smoke report is only written when --out is given)",
    )
    parser.add_argument(
        "--no-smoke",
        action="store_true",
        help="skip attaching the smoke-scale baseline block to the report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression-gate mode: compare a fresh smoke run against the "
        "committed baselines and exit non-zero on regressions",
    )
    parser.add_argument(
        "--against",
        default=DEFAULT_OUT,
        help=f"committed report to check against (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative speedup degradation in --check mode "
        f"(default {DEFAULT_TOLERANCE:g}x)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="fresh smoke runs in --check mode; the gate compares the "
        f"median per-suite speedup across them (default {DEFAULT_RUNS})",
    )
    args = parser.parse_args(argv)

    if args.tolerance < 1:
        parser.error(
            f"--tolerance must be >= 1 (got {args.tolerance:g}); it is the "
            "allowed relative speedup degradation factor"
        )
    if args.out is not None:
        out_dir = os.path.dirname(os.path.abspath(args.out)) or "."
        if not os.path.isdir(out_dir):
            parser.error(f"--out directory does not exist: {out_dir}")

    if not args.check and args.runs is not None:
        parser.error("--runs only applies in --check mode")

    if args.check:
        ignored = [
            flag
            for flag, value in (
                ("--scale", args.scale),
                ("--repeat", args.repeat),
                ("--peers", args.peers),
                ("--no-smoke", args.no_smoke or None),
            )
            if value is not None
        ]
        if ignored:
            parser.error(
                f"{', '.join(ignored)} cannot be combined with --check; "
                "the gate always runs at the committed smoke parameters"
            )
        if args.runs is not None and args.runs < 1:
            parser.error(f"--runs must be >= 1 (got {args.runs})")
        try:
            with open(args.against, "r", encoding="utf-8") as handle:
                committed = json.load(handle)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read committed report {args.against}: {exc}")
        outcome = check_against(
            committed,
            tolerance=args.tolerance,
            runs=args.runs if args.runs is not None else DEFAULT_RUNS,
        )
        if args.out and outcome.fresh_report is not None:
            write_report(outcome.fresh_report, args.out)
        print(outcome.summary())
        return 0 if outcome.ok else 1

    out = args.out if args.out is not None else DEFAULT_OUT
    report = run_all(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
        repeat=args.repeat if args.repeat is not None else 3,
        out=out,
        peers=args.peers if args.peers is not None else 6,
        smoke=not args.no_smoke,
    )
    print(format_summary(report))
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
