"""Benchmark definitions and the JSON-emitting runner.

Three suites:

* ``match/*`` — single triple-pattern matching through the SPO/POS/OSP
  indexes, dictionary-encoded vs the frozen term-object baseline;
* ``join/*`` — path- and star-shaped GPQ evaluation (the hot path of
  certain-answer computation), new ID-level join vs the seed join;
* ``chase/*`` — Algorithm-1 universal-solution construction over chain
  and cycle topologies (absolute timings; the chase has no frozen
  baseline, its speed rides on the store underneath).

Every comparative benchmark first checks both implementations agree on
the result (match counts / answer sets) so a timing can never mask a
correctness regression.  Timings are best-of-``repeat`` wall-clock.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.baseline import BaselineGraph, baseline_evaluate_query
from repro.gpq.evaluation import evaluate_query_star
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.peers.chase import chase_universal_solution
from repro.workload.generators import GeneratorConfig, random_entity_graph
from repro.workload.queries import path_query, star_query
from repro.workload.topologies import chain_rps, cycle_rps

__all__ = ["BenchRecord", "run_all", "write_report"]

DEFAULT_SCALE = 100_000
DEFAULT_OUT = "BENCH_core.json"


@dataclass
class BenchRecord:
    """One benchmark row of the report.

    Attributes:
        name: suite-qualified benchmark name, e.g. ``match/by_predicate``.
        seconds: best wall-clock time of the dictionary-encoded run.
        baseline_seconds: best time of the frozen seed implementation
            (absent for benchmarks without a baseline).
        speedup: ``baseline_seconds / seconds`` when both exist.
        meta: workload facts (result sizes, rounds, …) for plausibility.
    """

    name: str
    seconds: float
    baseline_seconds: Optional[float] = None
    speedup: Optional[float] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.baseline_seconds is not None:
            out["baseline_seconds"] = self.baseline_seconds
            out["speedup"] = self.speedup
        if self.meta:
            out["meta"] = self.meta
        return out


def _best_time(fn: Callable[[], Any], repeat: int) -> Tuple[float, Any]:
    """Best-of-``repeat`` wall time of ``fn`` plus its (last) result."""
    best = float("inf")
    result: Any = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _compare(
    name: str,
    new_fn: Callable[[], Any],
    base_fn: Callable[[], Any],
    repeat: int,
    meta: Dict[str, Any],
) -> BenchRecord:
    new_seconds, new_result = _best_time(new_fn, repeat)
    base_seconds, base_result = _best_time(base_fn, repeat)
    if new_result != base_result:
        raise AssertionError(
            f"benchmark {name!r}: dictionary-encoded result "
            f"{new_result!r} != baseline result {base_result!r}"
        )
    meta = dict(meta)
    meta["result"] = new_result
    return BenchRecord(
        name=name,
        seconds=new_seconds,
        baseline_seconds=base_seconds,
        # Clamp the denominator so a timer-resolution underflow yields a
        # huge-but-finite (JSON-encodable) ratio instead of None/Infinity.
        speedup=base_seconds / max(new_seconds, 1e-12),
        meta=meta,
    )


# ---------------------------------------------------------------------------
# Workload construction
# ---------------------------------------------------------------------------


def _workload_graph(scale: int) -> Graph:
    """A seeded entity-relation graph of roughly ``scale`` triples.

    A small fixed predicate vocabulary keeps per-predicate cardinalities
    realistic (thousands of triples each at the 100k scale), which is
    what makes the join benchmarks meaningful.
    """
    config = GeneratorConfig(
        entities=max(20, scale // 10),
        predicates=20,
        triples=scale,
        attributes=max(10, scale // 10),
        seed=11,
    )
    return random_entity_graph(config, name="bench")


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------


def bench_pattern_match(
    graph: Graph, baseline: BaselineGraph, repeat: int
) -> List[BenchRecord]:
    """Time ``match()`` across the index-backed pattern shapes."""
    var_s, var_p, var_o = Variable("s"), Variable("p"), Variable("o")
    predicates = sorted(graph.predicates())[:8]
    subjects = sorted(graph.subjects())[:200]
    objects = sorted(graph.objects())[:200]

    def sweep(patterns: List[TriplePattern]) -> Callable[[Any], Callable[[], int]]:
        def bind(store: Any) -> Callable[[], int]:
            def run() -> int:
                total = 0
                for pattern in patterns:
                    for _ in store.match(pattern):
                        total += 1
                return total

            return run

        return bind

    shapes: List[Tuple[str, List[TriplePattern]]] = [
        (
            "match/by_subject",
            [TriplePattern(s, var_p, var_o) for s in subjects],
        ),
        (
            "match/by_predicate",
            [TriplePattern(var_s, p, var_o) for p in predicates],
        ),
        (
            "match/by_object",
            [TriplePattern(var_s, var_p, o) for o in objects],
        ),
        (
            "match/subject_predicate",
            [
                TriplePattern(s, p, var_o)
                for s in subjects[:50]
                for p in predicates
            ],
        ),
        (
            "match/repeated_variable",
            [TriplePattern(var_s, p, var_s) for p in predicates],
        ),
    ]
    records = []
    for name, patterns in shapes:
        bind = sweep(patterns)
        records.append(
            _compare(
                name,
                bind(graph),
                bind(baseline),
                repeat,
                {"patterns": len(patterns)},
            )
        )
    return records


def bench_gpq_join(
    graph: Graph, baseline: BaselineGraph, repeat: int
) -> List[BenchRecord]:
    """Time conjunctive GPQ evaluation (path and star shapes)."""
    predicates = sorted(graph.predicates())
    queries: List[Tuple[str, GraphPatternQuery]] = [
        ("join/path2", path_query(predicates[:2])),
        ("join/path3", path_query(predicates[:3])),
        ("join/star2", star_query(predicates[:2])),
        ("join/star3", star_query(predicates[:3])),
    ]
    records = []
    for name, query in queries:
        new_fn = lambda q=query: len(evaluate_query_star(graph, q))
        base_fn = lambda q=query: len(baseline_evaluate_query(baseline, q))
        records.append(
            _compare(name, new_fn, base_fn, repeat, {"arity": query.arity})
        )
    return records


def bench_chase(repeat: int, peers: int = 6) -> List[BenchRecord]:
    """Time Algorithm-1 universal-solution construction."""
    records = []
    for name, rps in (
        ("chase/chain", chain_rps(peers, entities=12, facts=40, seed=3)),
        ("chase/cycle", cycle_rps(max(3, peers - 1), entities=12, facts=40, seed=3)),
    ):
        def run(system=rps):
            result = chase_universal_solution(system)
            return (len(result.solution), result.rounds)

        seconds, (solution_size, rounds) = _best_time(run, repeat)
        records.append(
            BenchRecord(
                name=name,
                seconds=seconds,
                meta={
                    "peers": len(rps.peers),
                    "solution_triples": solution_size,
                    "rounds": rounds,
                },
            )
        )
    return records


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def run_all(
    scale: int = DEFAULT_SCALE,
    repeat: int = 3,
    out: Optional[str] = DEFAULT_OUT,
    peers: int = 6,
) -> Dict[str, Any]:
    """Run every suite and (optionally) write the JSON report.

    Args:
        scale: triple count of the pattern/join workload graph.
        repeat: timing repetitions (best-of).
        out: report path, or ``None`` to skip writing.
        peers: peer count for the chase suite.

    Returns:
        The report dict (also written to ``out`` when given).
    """
    build_start = time.perf_counter()
    graph = _workload_graph(scale)
    build_new = time.perf_counter() - build_start
    build_start = time.perf_counter()
    baseline = BaselineGraph(graph)
    build_base = time.perf_counter() - build_start

    records: List[BenchRecord] = []
    records.extend(bench_pattern_match(graph, baseline, repeat))
    records.extend(bench_gpq_join(graph, baseline, repeat))
    records.extend(bench_chase(repeat, peers=peers))

    report = {
        "suite": "core",
        "scale": scale,
        "repeat": repeat,
        "graph_triples": len(graph),
        "build_seconds": {"encoded": build_new, "baseline": build_base},
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "created_unix": time.time(),
        "benchmarks": [r.as_dict() for r in records],
    }
    if out:
        write_report(report, out)
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_summary(report: Dict[str, Any]) -> str:
    """Human-readable one-line-per-benchmark summary for the CLI."""
    lines = [
        f"suite=core scale={report['scale']} "
        f"triples={report['graph_triples']} repeat={report['repeat']}"
    ]
    for row in report["benchmarks"]:
        base = row.get("baseline_seconds")
        extra = (
            f"  baseline={base:.4f}s  speedup={row['speedup']:.2f}x"
            if base is not None
            else ""
        )
        lines.append(f"{row['name']:<26} {row['seconds']:.4f}s{extra}")
    return "\n".join(lines)
