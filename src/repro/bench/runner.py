"""Benchmark definitions and the JSON-emitting runner.

Thirteen suites:

* ``match/*`` — single triple-pattern matching through the SPO/POS/OSP
  indexes, dictionary-encoded vs the frozen term-object baseline;
* ``join/*`` — path- and star-shaped GPQ evaluation (the hot path of
  certain-answer computation), new ID-level join vs the seed join;
* ``chase/*`` — Algorithm-1 universal-solution construction over chain
  and cycle topologies (absolute timings; the chase has no frozen
  baseline, its speed rides on the store underneath);
* ``sparql/*`` — full SPARQL queries (BGP, UNION, FILTER shapes)
  through the ID-native physical planner vs the naive term-level
  algebra evaluator kept as reference;
* ``columnar/*`` — the columnar batch engine against the per-row
  ID-native planner on join-heavy WHERE clauses (both run over the same
  shared planner, so the comparison isolates the data-flow
  representation), plus a prepared-plan-cache hot/cold pair whose
  hit/miss counters are hard-asserted; run with ``--scale 1000000``
  for the 1M-triple point (the ``slow``-marked pytest twin asserts the
  >=5x gate there);
* ``federation/*`` — distributed execution of a cross-peer path query
  under each federation strategy, recording message counts, transfer
  volumes and simulated wire time at several data scales;
* ``adaptive/*`` — the cost-model-driven adaptive strategy against
  every fixed baseline on federated workloads (paths, selective
  anchors, FILTER/UNION pushdown, a larger 5-peer system), hard
  asserting answer-set equality with the single-graph planner and that
  the adaptive plan is never worse than a fixed strategy on messages
  *and* transfer simultaneously;
* ``parallel/*`` — the overlap-aware parallel mode (discrete-event
  runtime, exclusive groups, makespan-priced decisions) against the
  serial adaptive plan per workload, hard asserting answer-set
  equality, ``parallel elapsed_seconds <= serial elapsed_seconds`` on
  *every* workload, and an exclusive-group message reduction on the
  workload built for it;
* ``streaming/*`` — pipelined bound-join batches against PR 4's wave
  barriers on multi-batch and federated-OPTIONAL workloads, hard
  asserting answer-set equality with the single-graph evaluator,
  identical message counts and transferred solutions in both modes,
  ``pipelined elapsed <= wave elapsed`` everywhere, and a strict
  makespan win on at least one workload;
* ``limit/*`` — demand propagation: every workload runs once with a
  solution modifier (``LIMIT``, ``ORDER BY … LIMIT``, ``ASK``) and
  once without, hard asserting the limited run never ships more
  messages, that on the deep multi-batch bound-join workloads it ships
  *strictly fewer* messages and finishes strictly earlier, and that
  the limited answers are a correct window of the single-graph answer
  set (exact for the ordered top-k);
* ``faults/*`` — deterministic fault injection and recovery: each
  scenario runs the same federated query fault-free and under a seeded
  :class:`~repro.federation.faults.FaultModel` (transient flakiness, a
  scripted outage window, an endpoint blackout with and without a
  configured replica), hard asserting that recoverable runs return
  exactly the fault-free answer set with no partial flag, that the
  unrecoverable blackout comes back *flagged* partial naming exactly
  the dead endpoint with answers that are a subset of the fault-free
  set, that injected faults actually fired, that backoff shows up in
  the makespan, and that retry traffic never exceeds the
  ``messages * (1 + max_retries) * (1 + replicas)`` budget;
* ``obs/*`` — the telemetry layer's overhead and determinism: the same
  federated workload with tracing disabled (the production default)
  and fully instrumented (live tracer plus ``analyze=True``), under
  the serial adaptive strategy and the parallel runtime, hard
  asserting that instrumentation never perturbs the execution
  (identical answers and message counts), that the exported Chrome
  ``trace_event`` document validates, and that the virtual-domain
  export and the ``explain(analyze=True)`` text are byte-identical
  across repeated seeded runs;
* ``concurrency/*`` — multi-tenant concurrent execution through one
  shared event kernel: seeded mixed workloads at three offered-load
  points (2/4/8 tenants) run under weighted round-robin with fixed
  per-endpoint in-flight windows and with the AIMD adaptive
  controller, plus a skewed flood-vs-light workload under FIFO and
  WRR; hard asserting per-tenant answer sets byte-identical to solo
  execution everywhere, byte-determinism of the adaptive runs,
  adaptive p95 makespan never worse than any fixed window and
  strictly better somewhere, and that WRR bounds the max/min
  per-tenant stretch ratio the FIFO flood blows up.

Every comparative benchmark first checks both implementations agree on
the result (match counts / answer sets) so a timing can never mask a
correctness regression.  Timings are best-of-``repeat`` wall-clock.

The report may carry a ``smoke`` block: a second, small-scale run whose
deterministic metrics and machine-normalised speedups are the committed
baselines for the CI regression gate (:mod:`repro.bench.check`).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.bench.baseline import BaselineGraph, baseline_evaluate_query
from repro.federation.executor import (
    ADAPTIVE,
    FIXED_STRATEGIES,
    PARALLEL,
    STRATEGIES,
    FederatedExecutor,
)
from repro.gpq.evaluation import evaluate_query_star
from repro.gpq.query import GraphPatternQuery
from repro.obs import Tracer, chrome_trace_events, validate_trace_events
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.peers.chase import chase_universal_solution
from repro.peers.system import RPS
from repro.sparql.algebra import (
    evaluate_algebra,
    reference_select,
    translate_group,
)
from repro.sparql.ast import SelectQuery
from repro.sparql.batch import select_id_rows_batch
from repro.sparql.cache import default_plan_cache
from repro.sparql.engine import execute as engine_execute
from repro.sparql.parser import parse_query
from repro.sparql.plan import select_id_rows, select_rows
from repro.federation.faults import RetryPolicy
from repro.federation.network import NetworkModel
from repro.workload.federation import (
    blackout_fault_model,
    federated_ask_sparql,
    federated_exclusive_query,
    federated_limit_sparql,
    flaky_fault_model,
    outage_fault_model,
    federated_optional_filter_sparql,
    federated_optional_sparql,
    federated_path_query,
    federated_rps,
    federated_selective_query,
    federated_topk_sparql,
    federated_union_filter_sparql,
)
from repro.runtime.control import AimdSettings
from repro.workload.generators import GeneratorConfig, random_entity_graph
from repro.workload.queries import path_query, star_query
from repro.workload.tenants import skewed_tenant_workload, tenant_workload
from repro.workload.topologies import chain_rps, cycle_rps

__all__ = ["BenchRecord", "build_report", "run_all", "write_report"]

DEFAULT_SCALE = 100_000
DEFAULT_OUT = "BENCH_core.json"

#: Parameters of the small-scale run whose records are the committed
#: regression baselines (matches the CI smoke configuration).
SMOKE_SCALE = 3_000
SMOKE_REPEAT = 3
SMOKE_PEERS = 3

#: Data scales (``facts`` per peer) of the federation suite.  These are
#: independent of ``--scale``: the federation workload measures message
#: economics, not raw store throughput, and keeping them fixed makes the
#: suite's deterministic metrics comparable between full and smoke runs.
FEDERATION_SCALES = (20, 60, 120)


@dataclass
class BenchRecord:
    """One benchmark row of the report.

    Attributes:
        name: suite-qualified benchmark name, e.g. ``match/by_predicate``.
        seconds: best wall-clock time of the dictionary-encoded run.
        baseline_seconds: best time of the frozen seed implementation
            (absent for benchmarks without a baseline).
        speedup: ``baseline_seconds / seconds`` when both exist.
        meta: workload facts (result sizes, rounds, …) for plausibility.
    """

    name: str
    seconds: float
    baseline_seconds: Optional[float] = None
    speedup: Optional[float] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.baseline_seconds is not None:
            out["baseline_seconds"] = self.baseline_seconds
            out["speedup"] = self.speedup
        if self.meta:
            out["meta"] = self.meta
        return out


def _best_time(fn: Callable[[], Any], repeat: int) -> Tuple[float, Any]:
    """Best-of-``repeat`` wall time of ``fn`` plus its (last) result."""
    best = float("inf")
    result: Any = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _compare(
    name: str,
    new_fn: Callable[[], Any],
    base_fn: Callable[[], Any],
    repeat: int,
    meta: Dict[str, Any],
) -> BenchRecord:
    new_seconds, new_result = _best_time(new_fn, repeat)
    base_seconds, base_result = _best_time(base_fn, repeat)
    if new_result != base_result:
        raise AssertionError(
            f"benchmark {name!r}: dictionary-encoded result "
            f"{new_result!r} != baseline result {base_result!r}"
        )
    meta = dict(meta)
    meta["result"] = new_result
    return BenchRecord(
        name=name,
        seconds=new_seconds,
        baseline_seconds=base_seconds,
        # Clamp the denominator so a timer-resolution underflow yields a
        # huge-but-finite (JSON-encodable) ratio instead of None/Infinity.
        speedup=base_seconds / max(new_seconds, 1e-12),
        meta=meta,
    )


# ---------------------------------------------------------------------------
# Workload construction
# ---------------------------------------------------------------------------


def _workload_graph(scale: int) -> Graph:
    """A seeded entity-relation graph of roughly ``scale`` triples.

    A small fixed predicate vocabulary keeps per-predicate cardinalities
    realistic (thousands of triples each at the 100k scale), which is
    what makes the join benchmarks meaningful.
    """
    config = GeneratorConfig(
        entities=max(20, scale // 10),
        predicates=20,
        triples=scale,
        attributes=max(10, scale // 10),
        seed=11,
    )
    return random_entity_graph(config, name="bench")


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------


def bench_pattern_match(
    graph: Graph, baseline: BaselineGraph, repeat: int
) -> List[BenchRecord]:
    """Time ``match()`` across the index-backed pattern shapes."""
    var_s, var_p, var_o = Variable("s"), Variable("p"), Variable("o")
    predicates = sorted(graph.predicates())[:8]
    subjects = sorted(graph.subjects())[:200]
    objects = sorted(graph.objects())[:200]

    def sweep(patterns: List[TriplePattern]) -> Callable[[Any], Callable[[], int]]:
        def bind(store: Any) -> Callable[[], int]:
            def run() -> int:
                total = 0
                for pattern in patterns:
                    for _ in store.match(pattern):
                        total += 1
                return total

            return run

        return bind

    shapes: List[Tuple[str, List[TriplePattern]]] = [
        (
            "match/by_subject",
            [TriplePattern(s, var_p, var_o) for s in subjects],
        ),
        (
            "match/by_predicate",
            [TriplePattern(var_s, p, var_o) for p in predicates],
        ),
        (
            "match/by_object",
            [TriplePattern(var_s, var_p, o) for o in objects],
        ),
        (
            "match/subject_predicate",
            [
                TriplePattern(s, p, var_o)
                for s in subjects[:50]
                for p in predicates
            ],
        ),
        (
            "match/repeated_variable",
            [TriplePattern(var_s, p, var_s) for p in predicates],
        ),
    ]
    records = []
    for name, patterns in shapes:
        bind = sweep(patterns)
        records.append(
            _compare(
                name,
                bind(graph),
                bind(baseline),
                repeat,
                {"patterns": len(patterns)},
            )
        )
    return records


def bench_gpq_join(
    graph: Graph, baseline: BaselineGraph, repeat: int
) -> List[BenchRecord]:
    """Time conjunctive GPQ evaluation (path and star shapes)."""
    predicates = sorted(graph.predicates())
    queries: List[Tuple[str, GraphPatternQuery]] = [
        ("join/path2", path_query(predicates[:2])),
        ("join/path3", path_query(predicates[:3])),
        ("join/star2", star_query(predicates[:2])),
        ("join/star3", star_query(predicates[:3])),
    ]
    records = []
    for name, query in queries:
        new_fn = lambda q=query: len(evaluate_query_star(graph, q))
        base_fn = lambda q=query: len(baseline_evaluate_query(baseline, q))
        records.append(
            _compare(name, new_fn, base_fn, repeat, {"arity": query.arity})
        )
    return records


def bench_chase(repeat: int, peers: int = 6) -> List[BenchRecord]:
    """Time Algorithm-1 universal-solution construction."""
    records = []
    for name, rps in (
        ("chase/chain", chain_rps(peers, entities=12, facts=40, seed=3)),
        ("chase/cycle", cycle_rps(max(3, peers - 1), entities=12, facts=40, seed=3)),
    ):
        def run(system=rps):
            result = chase_universal_solution(system)
            return (len(result.solution), result.rounds)

        seconds, (solution_size, rounds) = _best_time(run, repeat)
        records.append(
            BenchRecord(
                name=name,
                seconds=seconds,
                meta={
                    "peers": len(rps.peers),
                    "solution_triples": solution_size,
                    "rounds": rounds,
                },
            )
        )
    return records


def bench_sparql(graph: Graph, repeat: int) -> List[BenchRecord]:
    """Time full SPARQL queries: ID-native plans vs the reference
    term-level algebra evaluator.

    Result sets are verified equal once (outside the timed region); the
    timed closures return row counts so the record metadata stays
    JSON-encodable.
    """
    predicates = sorted(graph.predicates())
    if not predicates:
        return []
    # Degenerate workloads may have fewer than three predicates; reuse.
    p0, p1, p2 = (p.n3() for p in (predicates * 3)[:3])
    queries: List[Tuple[str, str]] = [
        (
            "sparql/bgp_path2",
            f"SELECT ?v0 ?v2 WHERE {{ ?v0 {p0} ?v1 . ?v1 {p1} ?v2 }}",
        ),
        (
            "sparql/bgp_star2",
            f"SELECT ?l1 ?l2 WHERE {{ ?c {p0} ?l1 . ?c {p1} ?l2 }}",
        ),
        (
            "sparql/union",
            f"SELECT ?s ?o WHERE {{ {{ ?s {p0} ?o }} UNION {{ ?s {p1} ?o }} }}",
        ),
        (
            "sparql/filter",
            f"SELECT ?s ?o WHERE {{ ?s {p0} ?o . FILTER(?s != ?o) }}",
        ),
        (
            "sparql/union_join",
            f"SELECT ?s WHERE {{ {{ ?s {p0} ?o }} UNION {{ ?s {p1} ?q }}"
            f" . ?s {p2} ?w }}",
        ),
    ]
    records = []
    for name, text in queries:
        ast = parse_query(text)
        assert isinstance(ast, SelectQuery)
        node = translate_group(ast.where)
        variables = ast.projected()

        def plan_rows() -> FrozenSet[Tuple[Optional[Term], ...]]:
            return frozenset(select_rows(graph, node, variables))

        def reference_rows() -> FrozenSet[Tuple[Optional[Term], ...]]:
            omega = evaluate_algebra(graph, node)
            return frozenset(
                tuple(mu.get(v) for v in variables) for mu in omega
            )

        expected = reference_rows()
        if plan_rows() != expected:
            raise AssertionError(
                f"benchmark {name!r}: plan executor disagrees with the "
                f"reference evaluator"
            )
        records.append(
            _compare(
                name,
                lambda: len(plan_rows()),
                lambda: len(reference_rows()),
                repeat,
                {"variables": len(variables)},
            )
        )
    return records


def bench_columnar(graph: Graph, repeat: int) -> List[BenchRecord]:
    """Columnar batch engine vs the per-row planner, plus the plan cache.

    The comparative records time ``select_id_rows_batch`` (columnar)
    against ``select_id_rows`` (per-row dicts) on the same logical
    trees; both sides share :func:`repro.sparql.plan.plan_bgp`, so the
    ratio isolates the data-flow representation, not planning.  Answer
    sets are verified equal once outside the timed region (the timed
    closures return cardinalities so metadata stays JSON-encodable).

    The ``columnar/plan_cache`` record times a *hot* prepared-plan run
    (every call hits the cross-query LRU) against a *cold* one (the
    cache is cleared before every call, so every call re-parses and
    re-plans).  Hit/miss counter deltas are hard-asserted around both
    timed regions — a cache that silently stopped hitting (or missing)
    can never hide behind a timing — and recorded in the metadata for
    the CI gate to re-check.
    """
    predicates = sorted(graph.predicates())
    if not predicates:
        return []
    p0, p1, p2 = (p.n3() for p in (predicates * 3)[:3])
    workloads: List[Tuple[str, str]] = [
        (
            "columnar/path2",
            f"SELECT ?a ?c WHERE {{ ?a {p0} ?b . ?b {p1} ?c }}",
        ),
        (
            "columnar/star2",
            f"SELECT ?b ?c WHERE {{ ?a {p0} ?b . ?a {p1} ?c }}",
        ),
        (
            "columnar/filter_path",
            f"SELECT ?a ?c WHERE {{ ?a {p0} ?b . ?b {p1} ?c "
            f". FILTER(?a != ?c) }}",
        ),
        (
            "columnar/union_join",
            f"SELECT ?a WHERE {{ {{ ?a {p0} ?b }} UNION {{ ?a {p1} ?q }}"
            f" . ?a {p2} ?w }}",
        ),
    ]
    records = []
    for name, text in workloads:
        ast = parse_query(text)
        assert isinstance(ast, SelectQuery)
        node = translate_group(ast.where)
        variables = ast.projected()
        if select_id_rows_batch(graph, node, variables) != select_id_rows(
            graph, node, variables
        ):
            raise AssertionError(
                f"benchmark {name!r}: batch engine disagrees with the "
                f"row engine on the answer set"
            )
        records.append(
            _compare(
                name,
                lambda n=node, v=variables: len(
                    select_id_rows_batch(graph, n, v)
                ),
                lambda n=node, v=variables: len(select_id_rows(graph, n, v)),
                repeat,
                {"variables": len(variables)},
            )
        )

    # Plan cache: an anchored, ordered query whose execution is cheap,
    # so the hot/cold ratio measures what the cache removes (parse +
    # plan), not join work that both runs must do anyway.
    anchor = sorted(graph.subjects())[0].n3()
    cache_text = (
        f"SELECT ?b ?c WHERE {{ {anchor} {p0} ?b . ?b {p1} ?c }} "
        f"ORDER BY ?b ?c"
    )

    def hot() -> int:
        return len(engine_execute(graph, cache_text).rows)

    def cold() -> int:
        default_plan_cache.clear()
        return len(engine_execute(graph, cache_text).rows)

    default_plan_cache.clear()
    expected_rows = hot()  # one miss; the cache is now warm
    before = default_plan_cache.stats()
    hot_seconds, hot_rows = _best_time(hot, repeat)
    after = default_plan_cache.stats()
    hot_hits = after["hits"] - before["hits"]
    hot_misses = after["misses"] - before["misses"]
    if hot_misses != 0 or hot_hits != max(1, repeat):
        raise AssertionError(
            f"benchmark 'columnar/plan_cache': hot run expected "
            f"{max(1, repeat)} hits and 0 misses, saw {hot_hits} hits "
            f"and {hot_misses} misses"
        )
    cold_seconds, cold_rows = _best_time(cold, repeat)
    # clear() also resets the counters, so after the cold loop the
    # stats reflect exactly the last iteration: one miss, zero hits.
    stats = default_plan_cache.stats()
    if stats["hits"] != 0 or stats["misses"] != 1:
        raise AssertionError(
            f"benchmark 'columnar/plan_cache': cold run expected every "
            f"call to miss, final counters are {stats!r}"
        )
    if hot_rows != cold_rows or hot_rows != expected_rows:
        raise AssertionError(
            f"benchmark 'columnar/plan_cache': hot run returned "
            f"{hot_rows} rows, cold run {cold_rows}, first run "
            f"{expected_rows}"
        )
    records.append(
        BenchRecord(
            name="columnar/plan_cache",
            seconds=hot_seconds,
            baseline_seconds=cold_seconds,
            speedup=cold_seconds / max(hot_seconds, 1e-12),
            meta={
                "results": hot_rows,
                "hot_hits": hot_hits,
                "hot_misses": hot_misses,
                "cold_hits": stats["hits"],
                "cold_misses_last_call": stats["misses"],
            },
        )
    )
    return records


def bench_federation(repeat: int) -> List[BenchRecord]:
    """Time and account federated strategies on 3-peer workloads.

    For every data scale all five strategies (adaptive and parallel
    plus the fixed baselines) must return exactly the answer set of the
    single-graph evaluator over the union database, and the bound-join
    strategy must use strictly fewer messages than naive per-pattern
    shipping — both are hard assertions, so a regression can never hide
    behind a timing.
    """
    records = []
    query = federated_path_query(hops=2)
    for facts in FEDERATION_SCALES:
        system = federated_rps(
            peers=3, entities=max(10, facts // 3), facts=facts, seed=7
        )
        expected = evaluate_query_star(system.stored_database(), query)
        messages: Dict[str, int] = {}
        for strategy in STRATEGIES:

            def run(strategy: str = strategy):
                return FederatedExecutor(system).execute(query, strategy)

            seconds, result = _best_time(run, repeat)
            if result.rows != expected:
                raise AssertionError(
                    f"federation strategy {strategy!r} at facts={facts}: "
                    f"{len(result.rows)} answers != single-graph "
                    f"{len(expected)}"
                )
            stats = result.stats
            messages[strategy] = stats.messages
            records.append(
                BenchRecord(
                    name=f"federation/{strategy}@{facts}",
                    seconds=seconds,
                    meta={
                        "facts": facts,
                        "peers": 3,
                        "messages": stats.messages,
                        "solutions_transferred": stats.solutions_transferred,
                        "triples_transferred": stats.triples_transferred,
                        "busy_seconds": stats.busy_seconds,
                        "elapsed_seconds": stats.elapsed_seconds,
                        "results": len(result.rows),
                    },
                )
            )
        if messages["bound"] >= messages["naive"]:
            raise AssertionError(
                f"bound-join strategy must ship strictly fewer messages than "
                f"naive at facts={facts}: bound={messages['bound']} "
                f"naive={messages['naive']}"
            )
    return records


def _single_graph_rows(system: RPS, query) -> Any:
    """Reference answer set: the query over the union of peer databases.

    GPQs go through the ``Q*`` evaluator, SPARQL text through the
    ID-native planner — the same oracles the federated tests assert
    against.
    """
    union = system.stored_database()
    if isinstance(query, GraphPatternQuery):
        return evaluate_query_star(union, query)
    ast = parse_query(query)
    head = ast.projected() if isinstance(ast, SelectQuery) else ()
    return select_rows(union, translate_group(ast.where), head)


def bench_adaptive(repeat: int) -> List[BenchRecord]:
    """Adaptive strategy vs every fixed baseline, per workload.

    Two hard assertions per workload (so the regression gate can never
    pass on wrong plans): every strategy returns exactly the
    single-graph answer set, and the adaptive plan is not
    Pareto-dominated by any fixed strategy — never strictly worse on
    messages *and* transfer units simultaneously.
    """
    three = federated_rps(peers=3, entities=20, facts=60, seed=7)
    five = federated_rps(peers=5, entities=40, facts=150, seed=11)
    workloads: List[Tuple[str, RPS, Any]] = [
        ("path2@3p", three, federated_path_query(hops=2)),
        ("selective@3p", three, federated_selective_query(entity=3, hops=2)),
        ("union_filter@3p", three, federated_union_filter_sparql()),
        ("path3@5p", five, federated_path_query(hops=3)),
    ]
    records = []
    for label, system, query in workloads:
        executor = FederatedExecutor(system)
        expected = _single_graph_rows(system, query)
        outcomes: Dict[str, Any] = {}
        for strategy in STRATEGIES:

            def run(strategy: str = strategy):
                return executor.execute(query, strategy)

            seconds, result = _best_time(run, repeat)
            if result.rows != expected:
                raise AssertionError(
                    f"adaptive suite {label!r}, strategy {strategy!r}: "
                    f"{len(result.rows)} answers != single-graph "
                    f"{len(expected)}"
                )
            outcomes[strategy] = result
            stats = result.stats
            records.append(
                BenchRecord(
                    name=f"adaptive/{label}:{strategy}",
                    seconds=seconds,
                    meta={
                        "messages": stats.messages,
                        "solutions_transferred": stats.solutions_transferred,
                        "triples_transferred": stats.triples_transferred,
                        "transfer_units": stats.transfer_units,
                        "busy_seconds": stats.busy_seconds,
                        "elapsed_seconds": stats.elapsed_seconds,
                        "results": len(result.rows),
                    },
                )
            )
        chosen = outcomes[ADAPTIVE].stats
        for strategy in FIXED_STRATEGIES:
            other = outcomes[strategy].stats
            if (
                chosen.messages > other.messages
                and chosen.transfer_units > other.transfer_units
            ):
                raise AssertionError(
                    f"adaptive plan on {label!r} is dominated by "
                    f"{strategy!r}: messages {chosen.messages} > "
                    f"{other.messages} and transfer {chosen.transfer_units} "
                    f"> {other.transfer_units}"
                )
    return records


def bench_parallel(repeat: int) -> List[BenchRecord]:
    """The overlap-aware parallel mode vs the serial adaptive plan.

    Per workload both modes must return exactly the single-graph answer
    set, and the parallel makespan (``elapsed_seconds``) may never
    exceed the serial one — the runtime exists to overlap, so losing
    wall clock to it is a regression, asserted hard here and re-checked
    by the CI gate.  The exclusive-group workload must additionally
    ship strictly fewer messages in parallel mode (the fused
    endpoint-side sub-query answers two conjuncts in one round trip).
    """
    three = federated_rps(peers=3, entities=20, facts=60, seed=7)
    five = federated_rps(peers=5, entities=40, facts=150, seed=11)
    workloads: List[Tuple[str, RPS, Any]] = [
        ("path2@3p", three, federated_path_query(hops=2)),
        ("union_filter@3p", three, federated_union_filter_sparql()),
        ("exclusive@3p", three, federated_exclusive_query(hops=1)),
        ("path3@5p", five, federated_path_query(hops=3)),
    ]
    records = []
    for label, system, query in workloads:
        executor = FederatedExecutor(system)
        expected = _single_graph_rows(system, query)
        outcomes: Dict[str, Any] = {}
        for strategy in (ADAPTIVE, PARALLEL):

            def run(strategy: str = strategy):
                return executor.execute(query, strategy)

            seconds, result = _best_time(run, repeat)
            if result.rows != expected:
                raise AssertionError(
                    f"parallel suite {label!r}, strategy {strategy!r}: "
                    f"{len(result.rows)} answers != single-graph "
                    f"{len(expected)}"
                )
            outcomes[strategy] = result
            stats = result.stats
            mode = "serial" if strategy == ADAPTIVE else "parallel"
            records.append(
                BenchRecord(
                    name=f"parallel/{label}:{mode}",
                    seconds=seconds,
                    meta={
                        "messages": stats.messages,
                        "solutions_transferred": stats.solutions_transferred,
                        "triples_transferred": stats.triples_transferred,
                        "transfer_units": stats.transfer_units,
                        "busy_seconds": stats.busy_seconds,
                        "elapsed_seconds": stats.elapsed_seconds,
                        "results": len(result.rows),
                    },
                )
            )
        serial = outcomes[ADAPTIVE].stats
        overlapped = outcomes[PARALLEL].stats
        if overlapped.elapsed_seconds > serial.elapsed_seconds + 1e-9:
            raise AssertionError(
                f"parallel mode on {label!r} lost wall clock: elapsed "
                f"{overlapped.elapsed_seconds:.6f}s > serial "
                f"{serial.elapsed_seconds:.6f}s"
            )
        if label.startswith("exclusive") and (
            overlapped.messages >= serial.messages
        ):
            raise AssertionError(
                f"exclusive groups on {label!r} must cut messages: "
                f"parallel {overlapped.messages} >= serial "
                f"{serial.messages}"
            )
    return records


#: Network parameters of the streaming suite's deep workloads: cheap
#: round trips, expensive transfer.  This prices consecutive bound
#: joins cheaper than shipping or pulling whole relations, so the plans
#: actually produce the multi-batch pipelines the suite measures.
STREAMING_NETWORK = dict(
    latency_seconds=0.01,
    per_solution_seconds=0.01,
    per_triple_seconds=0.05,
)


def bench_streaming(repeat: int) -> List[BenchRecord]:
    """Pipelined bound-join batches vs PR 4's wave barriers.

    Each workload runs the parallel mode twice — ``streaming=False``
    (every batch waits for the entire upstream step) and
    ``streaming=True`` (each batch depends only on the requests that
    produced its rows).  Four hard assertions per workload: both modes
    return exactly the single-graph answer set, message counts and
    transferred solutions are identical (the same rows travel in the
    same envelopes), and the pipelined makespan never exceeds the
    wave-barrier one.  Across the suite at least one workload must show
    a *strict* makespan win, and the two ``optional`` workloads double
    as the federated-OPTIONAL equivalence check against the
    single-graph evaluator.
    """
    three = federated_rps(peers=3, entities=20, facts=60, seed=7)
    five = federated_rps(peers=5, entities=40, facts=150, seed=11)
    # Sparse system: some optional extensions miss, so the LeftJoin's
    # keep-unmatched path is exercised, not just the extend path.
    sparse = federated_rps(peers=3, entities=30, facts=25, seed=13)
    deep_net = NetworkModel(**STREAMING_NETWORK)
    workloads: List[Tuple[str, RPS, Any, Optional[NetworkModel], int]] = [
        ("deep_sel@3p", three, federated_selective_query(entity=3, hops=3),
         deep_net, 1),
        ("deep_sel@5p", five, federated_selective_query(entity=3, hops=3),
         deep_net, 1),
        ("optional@3p", sparse, federated_optional_sparql(), None, 1),
        ("optional_filter@3p", sparse, federated_optional_filter_sparql(),
         None, 1),
    ]
    records = []
    strict_win = False
    for label, system, query, network, batch_size in workloads:
        expected = _single_graph_rows(system, query)
        outcomes: Dict[str, Any] = {}
        for mode, streaming in (("wave", False), ("pipelined", True)):
            executor = FederatedExecutor(
                system,
                network=network,
                batch_size=batch_size,
                concurrency=4,
                streaming=streaming,
            )

            def run(executor: FederatedExecutor = executor):
                return executor.execute(query, PARALLEL)

            seconds, result = _best_time(run, repeat)
            if result.rows != expected:
                raise AssertionError(
                    f"streaming suite {label!r}, mode {mode!r}: "
                    f"{len(result.rows)} answers != single-graph "
                    f"{len(expected)}"
                )
            outcomes[mode] = result
            stats = result.stats
            records.append(
                BenchRecord(
                    name=f"streaming/{label}:{mode}",
                    seconds=seconds,
                    meta={
                        "messages": stats.messages,
                        "solutions_transferred": stats.solutions_transferred,
                        "triples_transferred": stats.triples_transferred,
                        "busy_seconds": stats.busy_seconds,
                        "elapsed_seconds": stats.elapsed_seconds,
                        "results": len(result.rows),
                    },
                )
            )
        wave = outcomes["wave"].stats
        pipelined = outcomes["pipelined"].stats
        if (
            pipelined.messages != wave.messages
            or pipelined.solutions_transferred != wave.solutions_transferred
        ):
            raise AssertionError(
                f"streaming on {label!r} changed the traffic: "
                f"{pipelined.messages} msgs/{pipelined.solutions_transferred}"
                f" sols vs wave {wave.messages}/{wave.solutions_transferred}"
            )
        if pipelined.elapsed_seconds > wave.elapsed_seconds + 1e-9:
            raise AssertionError(
                f"pipelining on {label!r} lost wall clock: "
                f"{pipelined.elapsed_seconds:.6f}s > wave "
                f"{wave.elapsed_seconds:.6f}s"
            )
        if pipelined.elapsed_seconds < wave.elapsed_seconds - 1e-9:
            strict_win = True
    if not strict_win:
        raise AssertionError(
            "streaming suite: no workload showed a strict pipelining win "
            "(pipelined elapsed < wave elapsed)"
        )
    return records


#: Workload labels of the ``limit`` suite.  The ``deep_*`` and ``ask``
#: workloads are deep multi-batch bound-join pipelines where demand
#: propagation must show a *strict* message and makespan win; ``topk``
#: orders before slicing, so it legitimately drains fully and only the
#: never-worse bound applies.
LIMIT_WORKLOADS = ("deep_bound@3p", "deep_pipelined@3p", "topk@3p", "ask@3p")


def bench_limit(repeat: int) -> List[BenchRecord]:
    """Early termination: modifier-capped runs vs their unlimited twins.

    Every workload executes the same WHERE clause twice — once with a
    solution modifier (``LIMIT 10``, ``ORDER BY … LIMIT``, ``ASK``) and
    once bare — under the strategy named in its label.  Hard
    assertions, re-checked by the CI gate from the recorded metas: the
    unlimited run reproduces the single-graph answer set exactly; the
    limited answers are a correct window of it (exact for the ordered
    top-k, presence/absence for ASK); the limited run never ships more
    messages; and on the deep multi-batch workloads it ships strictly
    fewer messages *and* finishes strictly earlier — the pipeline
    demonstrably stopped, it did not just throw rows away.
    """
    three = federated_rps(peers=3, entities=20, facts=60, seed=7)
    union = three.stored_database()
    network = NetworkModel(**STREAMING_NETWORK)
    # (label, strategy, unlimited text, limited text, deep?)
    workloads: List[Tuple[str, str, str, str, bool]] = [
        ("deep_bound@3p", "bound",
         federated_limit_sparql(hops=3),
         federated_limit_sparql(hops=3, limit=10), True),
        ("deep_pipelined@3p", PARALLEL,
         federated_limit_sparql(hops=3, anchor=3),
         federated_limit_sparql(hops=3, limit=10, anchor=3), True),
        ("topk@3p", PARALLEL,
         federated_limit_sparql(hops=2),
         federated_topk_sparql(hops=2, limit=5), False),
        ("ask@3p", "bound",
         federated_limit_sparql(hops=3),
         federated_ask_sparql(hops=3), True),
    ]
    records = []
    for label, strategy, unlimited_text, limited_text, deep in workloads:
        executor = FederatedExecutor(
            three, network=network, batch_size=1, concurrency=4
        )
        expected = _single_graph_rows(three, unlimited_text)
        outcomes: Dict[str, Any] = {}
        for kind, text in (
            ("unlimited", unlimited_text),
            ("limited", limited_text),
        ):

            def run(text: str = text):
                return executor.execute(text, strategy)

            seconds, result = _best_time(run, repeat)
            outcomes[kind] = result
            stats = result.stats
            records.append(
                BenchRecord(
                    name=f"limit/{label}:{kind}",
                    seconds=seconds,
                    meta={
                        "strategy": strategy,
                        "messages": stats.messages,
                        "solutions_transferred": stats.solutions_transferred,
                        "triples_transferred": stats.triples_transferred,
                        "busy_seconds": stats.busy_seconds,
                        "elapsed_seconds": stats.elapsed_seconds,
                        "results": len(result.rows),
                    },
                )
            )
        if outcomes["unlimited"].rows != expected:
            raise AssertionError(
                f"limit suite {label!r}: unlimited run returned "
                f"{len(outcomes['unlimited'].rows)} answers, single-graph "
                f"has {len(expected)}"
            )
        limited_rows = outcomes["limited"].rows
        if label.startswith("ask"):
            if bool(limited_rows) != bool(expected):
                raise AssertionError(
                    f"limit suite {label!r}: ASK answered "
                    f"{bool(limited_rows)}, single-graph says "
                    f"{bool(expected)}"
                )
        elif label.startswith("topk"):
            oracle = set(reference_select(union, parse_query(limited_text)))
            if limited_rows != oracle:
                raise AssertionError(
                    f"limit suite {label!r}: top-k answers diverge from "
                    f"the reference window ({len(limited_rows)} vs "
                    f"{len(oracle)})"
                )
        else:
            if len(limited_rows) != 10 or not limited_rows <= expected:
                raise AssertionError(
                    f"limit suite {label!r}: limited run is not a 10-row "
                    f"window of the full answer set "
                    f"({len(limited_rows)} rows)"
                )
        cut = outcomes["limited"].stats
        full = outcomes["unlimited"].stats
        if cut.messages > full.messages:
            raise AssertionError(
                f"limit suite {label!r}: the capped run shipped MORE "
                f"messages: {cut.messages} > {full.messages}"
            )
        if deep:
            if cut.messages >= full.messages:
                raise AssertionError(
                    f"limit suite {label!r}: no strict message win "
                    f"({cut.messages} >= {full.messages}); demand did not "
                    f"stop the pipeline"
                )
            if cut.elapsed_seconds >= full.elapsed_seconds - 1e-9:
                raise AssertionError(
                    f"limit suite {label!r}: no strict makespan win "
                    f"({cut.elapsed_seconds:.6f}s >= "
                    f"{full.elapsed_seconds:.6f}s)"
                )
    return records


def bench_faults(repeat: int) -> List[BenchRecord]:
    """Deterministic fault injection, recovery, and flagged degradation.

    Each scenario runs the same 3-peer path query twice — fault-free
    and under a seeded :class:`~repro.federation.faults.FaultModel` —
    emitting a ``:faultfree``/``:faulty`` record pair.  The scenarios
    cover transient flakiness (serial and parallel mode), a scripted
    outage window the retry budget outlives, an endpoint blackout
    rescued by a configured replica, and the same blackout with no
    replica.  Hard assertions per scenario:

    * the fault-free twin returns exactly the single-graph answer set
      and carries no partial flag;
    * the injected faults actually fired (``failures + timeouts > 0``);
    * *recoverable* scenarios return exactly the fault-free answer set
      with no partial flag, and every retry's backoff is visible in the
      makespan (``faulty elapsed > fault-free elapsed``);
    * the *unrecoverable* blackout comes back flagged partial naming
      exactly the dead endpoint, and its answers are a subset of the
      fault-free set — degraded, never silently wrong;
    * retry traffic respects the budget: faulty ``messages`` never
      exceed ``faultfree messages * (1 + max_retries) * (1 + replicas)``.
    """
    three = federated_rps(peers=3, entities=20, facts=60, seed=7)
    query = federated_path_query()
    expected = _single_graph_rows(three, query)
    flaky = flaky_fault_model(
        "peer1", failure_rate=0.3, timeout_rate=0.1, seed=15
    )
    blackout = blackout_fault_model("peer1")
    scenarios: List[
        Tuple[str, str, Any, RetryPolicy, Optional[Dict[str, int]], bool]
    ] = [
        ("flaky@3p", ADAPTIVE, flaky, RetryPolicy(max_retries=8), None, True),
        ("flaky_parallel@3p", PARALLEL, flaky, RetryPolicy(max_retries=8),
         None, True),
        ("outage@3p", ADAPTIVE,
         outage_fault_model("peer1", start=0.0, end=0.12, seed=0),
         RetryPolicy(max_retries=8, backoff_seconds=0.05), None, True),
        ("failover@3p", ADAPTIVE, blackout, RetryPolicy(max_retries=1),
         {"peer1": 1}, True),
        ("blackout@3p", ADAPTIVE, blackout, RetryPolicy(max_retries=1),
         None, False),
    ]
    records = []
    for label, strategy, model, policy, replicas, recoverable in scenarios:
        replica_count = sum((replicas or {}).values())
        outcomes: Dict[str, Any] = {}
        for mode, fault_model in (("faultfree", None), ("faulty", model)):
            executor = FederatedExecutor(
                three,
                fault_model=fault_model,
                retry_policy=policy,
                replicas=replicas if fault_model is not None else None,
            )

            def run(executor: FederatedExecutor = executor):
                return executor.execute(query, strategy)

            seconds, result = _best_time(run, repeat)
            outcomes[mode] = result
            stats = result.stats
            meta = {
                "messages": stats.messages,
                "solutions_transferred": stats.solutions_transferred,
                "triples_transferred": stats.triples_transferred,
                "busy_seconds": stats.busy_seconds,
                "elapsed_seconds": stats.elapsed_seconds,
                "results": len(result.rows),
                "retries": stats.retries,
                "failures": stats.failures,
                "timeouts": stats.timeouts,
                "failovers": stats.failovers,
                "partial": int(result.partial is not None),
                "unreachable": (
                    len(result.partial.endpoints()) if result.partial else 0
                ),
                "recoverable": int(recoverable),
            }
            if mode == "faulty":
                meta["retry_budget"] = (
                    outcomes["faultfree"].stats.messages
                    * (1 + policy.max_retries)
                    * (1 + replica_count)
                )
            records.append(
                BenchRecord(
                    name=f"faults/{label}:{mode}", seconds=seconds, meta=meta
                )
            )
        faultfree, faulty = outcomes["faultfree"], outcomes["faulty"]
        if faultfree.rows != expected or faultfree.partial is not None:
            raise AssertionError(
                f"faults suite {label!r}: fault-free twin diverged from the "
                f"single-graph answer set or carries a partial flag"
            )
        ffs, fs = faultfree.stats, faulty.stats
        if fs.failures + fs.timeouts == 0:
            raise AssertionError(
                f"faults suite {label!r}: no injected fault fired — the "
                f"scenario exercises nothing"
            )
        budget = ffs.messages * (1 + policy.max_retries) * (1 + replica_count)
        if fs.messages > budget:
            raise AssertionError(
                f"faults suite {label!r}: {fs.messages} messages exceed the "
                f"retry budget {budget}"
            )
        if recoverable:
            if faulty.rows != expected or faulty.partial is not None:
                raise AssertionError(
                    f"faults suite {label!r}: recoverable run did not return "
                    f"the fault-free answers unflagged "
                    f"({len(faulty.rows)} rows, partial={faulty.partial})"
                )
            if fs.retries and fs.elapsed_seconds <= ffs.elapsed_seconds + 1e-9:
                raise AssertionError(
                    f"faults suite {label!r}: {fs.retries} retries with "
                    f"backoff left the makespan unchanged "
                    f"({fs.elapsed_seconds:.6f}s vs fault-free "
                    f"{ffs.elapsed_seconds:.6f}s)"
                )
        else:
            if faulty.partial is None:
                raise AssertionError(
                    f"faults suite {label!r}: unrecoverable run came back "
                    f"unflagged — a silently wrong subset"
                )
            if faulty.partial.endpoints() != ("peer1",):
                raise AssertionError(
                    f"faults suite {label!r}: partial answer names "
                    f"{faulty.partial.endpoints()}, expected ('peer1',)"
                )
            if any(row not in expected for row in faulty.rows):
                raise AssertionError(
                    f"faults suite {label!r}: partial answers are not a "
                    f"subset of the fault-free answer set"
                )
        if label == "failover@3p" and fs.failovers < 1:
            raise AssertionError(
                "faults suite 'failover@3p': blackout with a replica "
                "recovered without recording a failover"
            )
    return records


def bench_obs(repeat: int) -> List[BenchRecord]:
    """Telemetry overhead and determinism: tracing off vs fully on.

    Each record runs the same 3-peer federated path query in two
    configurations — with the shared ``NULL_TRACER`` (the production
    default) and fully instrumented (a live
    :class:`~repro.obs.Tracer` plus ``analyze=True``, every operator
    counting actuals) — once under the serial adaptive strategy and
    once on the parallel runtime.  ``seconds`` times the disabled run
    and ``baseline_seconds`` the instrumented one, so the recorded
    ``speedup`` is the full-telemetry overhead factor; the CI gate's
    per-suite speedup check then bounds how much overhead the
    *disabled* path may silently grow relative to the committed
    baseline.  Hard assertions, re-checked by the gate from the
    recorded metas: instrumentation never perturbs the execution
    (identical answer set and message count with tracing on and off),
    the exported Chrome ``trace_event`` document validates, the
    virtual-domain export and the ``explain(analyze=True)`` text are
    byte-identical across repeated seeded runs, and the traced run
    actually collects spans.  Each record also embeds the executor's
    cumulative :meth:`~repro.federation.executor.FederatedExecutor.
    metrics` registry snapshot under ``meta["metrics"]``.
    """
    three = federated_rps(peers=3, entities=20, facts=60, seed=7)
    query = federated_path_query(hops=2)
    executor = FederatedExecutor(three)
    expected = _single_graph_rows(three, query)
    records = []
    for label, strategy in (
        ("serial@3p", ADAPTIVE),
        ("runtime@3p", PARALLEL),
    ):

        def plain(strategy: str = strategy):
            return executor.execute(query, strategy)

        def traced(strategy: str = strategy):
            tracer = Tracer()
            result = executor.execute(
                query, strategy, tracer=tracer, analyze=True
            )
            return result, tracer

        plain_result = plain()
        if plain_result.rows != expected:
            raise AssertionError(
                f"obs suite {label!r}: untraced run diverged from the "
                f"single-graph answer set"
            )
        exports: List[str] = []
        explains: List[str] = []
        span_counts: List[int] = []
        for _ in range(2):
            result, tracer = traced()
            if result.rows != expected:
                raise AssertionError(
                    f"obs suite {label!r}: instrumented run diverged "
                    f"from the single-graph answer set"
                )
            if result.stats.messages != plain_result.stats.messages:
                raise AssertionError(
                    f"obs suite {label!r}: tracing perturbed the "
                    f"execution: {result.stats.messages} messages vs "
                    f"{plain_result.stats.messages} untraced"
                )
            document = chrome_trace_events(tracer, domain="virtual")
            problems = validate_trace_events(document)
            if problems:
                raise AssertionError(
                    f"obs suite {label!r}: exported trace is not a "
                    f"valid trace_event document: {problems[:3]}"
                )
            exports.append(json.dumps(document, sort_keys=True))
            span_counts.append(sum(1 for _ in tracer.spans()))
            explains.append(
                executor.explain(query, strategy=strategy, analyze=True)
            )
        if len(set(exports)) != 1:
            raise AssertionError(
                f"obs suite {label!r}: virtual-domain trace export is "
                f"not byte-identical across repeated seeded runs"
            )
        if len(set(explains)) != 1:
            raise AssertionError(
                f"obs suite {label!r}: explain(analyze=True) is not "
                f"byte-identical across repeated seeded runs"
            )
        if not span_counts[0]:
            raise AssertionError(
                f"obs suite {label!r}: instrumented run collected no "
                f"spans"
            )
        disabled_seconds, disabled_rows = _best_time(
            lambda: len(plain().rows), repeat
        )
        traced_seconds, traced_rows = _best_time(
            lambda: len(traced()[0].rows), repeat
        )
        if disabled_rows != traced_rows:
            raise AssertionError(
                f"obs suite {label!r}: timed runs disagree on the "
                f"answer cardinality ({disabled_rows} vs {traced_rows})"
            )
        records.append(
            BenchRecord(
                name=f"obs/{label}",
                seconds=disabled_seconds,
                baseline_seconds=traced_seconds,
                speedup=traced_seconds / max(disabled_seconds, 1e-12),
                meta={
                    "results": len(plain_result.rows),
                    "messages": plain_result.stats.messages,
                    "span_count": span_counts[0],
                    "trace_valid": 1,
                    "trace_stable": 1,
                    "analyze_stable": 1,
                    "metrics": executor.metrics().snapshot(),
                },
            )
        )
    return records


#: AIMD controller settings of the concurrency suite's adaptive variant
#: (the determinism tests pin the same configuration).
CONCURRENCY_CONTROL = AimdSettings(epoch=3, start_window=2, max_window=16)

#: Fixed per-endpoint in-flight windows the adaptive variant is gated
#: against, and the offered-load points (tenant counts) they run at.
CONCURRENCY_WINDOWS = (1, 2, 8)
CONCURRENCY_LOADS = (2, 4, 8)


def bench_concurrency(repeat: int) -> List[BenchRecord]:
    """Multi-tenant concurrent execution under adaptive concurrency.

    All records share one 3-peer system and a single-lane,
    ``batch_size=1`` executor under the ``bound`` strategy: every
    bound join becomes a burst of small per-binding requests, the
    regime where per-endpoint queues actually interleave tenants and
    queue discipline / window control reorder traffic.  Two record
    groups:

    * ``concurrency/load{N}:*`` — a seeded mixed workload of N tenants
      (N = 2/4/8 offered-load points) runs under weighted round-robin
      with each fixed in-flight window (``:w1``/``:w2``/``:w8``) and
      with the AIMD controller (``:adaptive``, window control inside
      the replay plus one batch re-planning round).  Metas record the
      throughput (queries per simulated second), the p95 and overall
      makespans (gated, in integer microseconds) and the controller's
      adjustment count.
    * ``concurrency/skew:fifo|wrr`` — the skewed workload (one tenant
      flooding the endpoints, three light anchored queries) under both
      backlog disciplines at a tight window.  The gated
      ``ratio_x1000`` is the max/min per-tenant *stretch* (shared
      completion time over the tenant's solo elapsed time): FIFO lets
      the flood starve the light tenants, weighted round-robin bounds
      the spread.

    Hard assertions: every tenant's answer set is byte-identical to
    running its query alone on a fresh executor (for every variant,
    every load point); the adaptive variant is byte-deterministic
    (identical per-tenant rows, makespans, message counts and window
    adjustments across a repeated run); adaptive p95 makespan is never
    worse than any fixed window at any load point and strictly better
    on at least one; the adaptive controller actually adjusted at
    least one window somewhere; and WRR's stretch ratio is strictly
    below FIFO's on the skewed workload.  The CI gate re-checks the
    p95/window and fairness claims from the recorded metas.
    """
    system = federated_rps(peers=3, entities=20, facts=120, seed=7)
    network = NetworkModel(**STREAMING_NETWORK)

    def make() -> FederatedExecutor:
        return FederatedExecutor(system, network, batch_size=1, concurrency=1)

    def solo(query):
        return make().execute(query, "bound")

    def signature(result):
        """Byte-level identity of a concurrent run (determinism check)."""
        return (
            tuple(
                (
                    outcome.tenant,
                    tuple(sorted(repr(row) for row in outcome.result.rows)),
                    outcome.makespan,
                    outcome.admission_wait,
                    outcome.result.stats.messages,
                )
                for outcome in result.outcomes
            ),
            tuple(repr(adj) for adj in result.adjustments),
            result.makespan,
            result.batch_size,
        )

    records: List[BenchRecord] = []
    strict_somewhere = False
    adjustments_total = 0
    for load in CONCURRENCY_LOADS:
        workload = tenant_workload(load, seed=11)
        queries = [(t.tenant, t.query) for t in workload]
        solos = {t.tenant: solo(t.query) for t in workload}
        p95_by: Dict[str, float] = {}
        variants: List[Tuple[str, Dict[str, Any]]] = [
            (f"w{w}", {"max_in_flight": w}) for w in CONCURRENCY_WINDOWS
        ]
        variants.append(
            ("adaptive", {"adaptive": True, "control": CONCURRENCY_CONTROL})
        )
        for label, kwargs in variants:

            def run(kwargs: Dict[str, Any] = kwargs):
                return make().execute_concurrent(
                    queries, strategy="bound", discipline="wrr", **kwargs
                )

            seconds, result = _best_time(run, repeat)
            for outcome in result.outcomes:
                if outcome.result.rows != solos[outcome.tenant].rows:
                    raise AssertionError(
                        f"concurrency suite load{load}:{label}: tenant "
                        f"{outcome.tenant!r} answers diverged from its "
                        f"solo execution"
                    )
            if label == "adaptive":
                if signature(run()) != signature(result):
                    raise AssertionError(
                        f"concurrency suite load{load}: adaptive run is "
                        f"not byte-deterministic across repeats"
                    )
                adjustments_total += len(result.adjustments)
            p95 = result.p95_makespan()
            p95_by[label] = p95
            messages = sum(
                o.result.stats.messages for o in result.outcomes
            )
            solutions = sum(
                o.result.stats.solutions_transferred
                for o in result.outcomes
            )
            triples = sum(
                o.result.stats.triples_transferred
                for o in result.outcomes
            )
            busy = sum(
                o.result.stats.busy_seconds for o in result.outcomes
            )
            records.append(
                BenchRecord(
                    name=f"concurrency/load{load}:{label}",
                    seconds=seconds,
                    meta={
                        "tenants": len(result.outcomes),
                        "results": sum(
                            len(o.result.rows) for o in result.outcomes
                        ),
                        "messages": messages,
                        "solutions_transferred": solutions,
                        "triples_transferred": triples,
                        "busy_seconds": busy,
                        "elapsed_seconds": result.makespan,
                        "makespan_us": int(round(result.makespan * 1e6)),
                        "p95_us": int(round(p95 * 1e6)),
                        "throughput": result.throughput(),
                        "adjustments": len(result.adjustments),
                        "rounds": result.rounds,
                        "batch": result.batch_size,
                        "active_peak": result.active_peak,
                    },
                )
            )
        for window in CONCURRENCY_WINDOWS:
            fixed = p95_by[f"w{window}"]
            if p95_by["adaptive"] > fixed + 1e-9:
                raise AssertionError(
                    f"concurrency suite load{load}: adaptive p95 "
                    f"{p95_by['adaptive']:.6f}s is worse than fixed "
                    f"window w{window}'s {fixed:.6f}s"
                )
            if p95_by["adaptive"] < fixed - 1e-9:
                strict_somewhere = True
    if not strict_somewhere:
        raise AssertionError(
            "concurrency suite: adaptive control never strictly beat a "
            "fixed window at any load point"
        )
    if not adjustments_total:
        raise AssertionError(
            "concurrency suite: the AIMD controller never adjusted a "
            "window — the adaptive variant exercises nothing"
        )

    workload = skewed_tenant_workload(light=3, seed=5)
    queries = [(t.tenant, t.query) for t in workload]
    solos = {t.tenant: solo(t.query) for t in workload}
    ratios: Dict[str, float] = {}
    for disciplined in ("fifo", "wrr"):

        def run(discipline: str = disciplined):
            return make().execute_concurrent(
                queries,
                strategy="bound",
                discipline=discipline,
                max_in_flight=2,
            )

        seconds, result = _best_time(run, repeat)
        for outcome in result.outcomes:
            if outcome.result.rows != solos[outcome.tenant].rows:
                raise AssertionError(
                    f"concurrency suite skew:{disciplined}: tenant "
                    f"{outcome.tenant!r} answers diverged from its solo "
                    f"execution"
                )
        stretches = [
            outcome.makespan
            / max(solos[outcome.tenant].stats.elapsed_seconds, 1e-9)
            for outcome in result.outcomes
        ]
        ratio = max(stretches) / min(stretches)
        ratios[disciplined] = ratio
        records.append(
            BenchRecord(
                name=f"concurrency/skew:{disciplined}",
                seconds=seconds,
                meta={
                    "tenants": len(result.outcomes),
                    "results": sum(
                        len(o.result.rows) for o in result.outcomes
                    ),
                    "messages": sum(
                        o.result.stats.messages for o in result.outcomes
                    ),
                    "solutions_transferred": sum(
                        o.result.stats.solutions_transferred
                        for o in result.outcomes
                    ),
                    "triples_transferred": sum(
                        o.result.stats.triples_transferred
                        for o in result.outcomes
                    ),
                    "busy_seconds": sum(
                        o.result.stats.busy_seconds
                        for o in result.outcomes
                    ),
                    "elapsed_seconds": result.makespan,
                    "makespan_us": int(round(result.makespan * 1e6)),
                    "p95_us": int(round(result.p95_makespan() * 1e6)),
                    "throughput": result.throughput(),
                    "ratio_x1000": int(round(ratio * 1000)),
                },
            )
        )
    if ratios["wrr"] >= ratios["fifo"]:
        raise AssertionError(
            f"concurrency suite skew: weighted round-robin did not bound "
            f"the stretch spread (wrr {ratios['wrr']:.3f} vs fifo "
            f"{ratios['fifo']:.3f})"
        )
    return records


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def build_report(
    scale: int = DEFAULT_SCALE,
    repeat: int = 3,
    peers: int = 6,
) -> Dict[str, Any]:
    """Run every suite once and return the report dict."""
    build_start = time.perf_counter()
    graph = _workload_graph(scale)
    build_new = time.perf_counter() - build_start
    build_start = time.perf_counter()
    baseline = BaselineGraph(graph)
    build_base = time.perf_counter() - build_start

    records: List[BenchRecord] = []
    records.extend(bench_pattern_match(graph, baseline, repeat))
    records.extend(bench_gpq_join(graph, baseline, repeat))
    records.extend(bench_chase(repeat, peers=peers))
    records.extend(bench_sparql(graph, repeat))
    records.extend(bench_columnar(graph, repeat))
    records.extend(bench_federation(repeat))
    records.extend(bench_adaptive(repeat))
    records.extend(bench_parallel(repeat))
    records.extend(bench_streaming(repeat))
    records.extend(bench_limit(repeat))
    records.extend(bench_faults(repeat))
    records.extend(bench_obs(repeat))
    records.extend(bench_concurrency(repeat))

    return {
        "suite": "core",
        "scale": scale,
        "repeat": repeat,
        "peers": peers,
        "graph_triples": len(graph),
        "build_seconds": {"encoded": build_new, "baseline": build_base},
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "created_unix": time.time(),
        "benchmarks": [r.as_dict() for r in records],
    }


def run_all(
    scale: int = DEFAULT_SCALE,
    repeat: int = 3,
    out: Optional[str] = DEFAULT_OUT,
    peers: int = 6,
    smoke: bool = False,
) -> Dict[str, Any]:
    """Run every suite and (optionally) write the JSON report.

    Args:
        scale: triple count of the pattern/join workload graph.
        repeat: timing repetitions (best-of).
        out: report path, or ``None`` to skip writing.
        peers: peer count for the chase suite.
        smoke: additionally run the suites at the fixed smoke scale and
            attach that report under the ``smoke`` key — the committed
            baselines the CI regression gate compares against.

    Returns:
        The report dict (also written to ``out`` when given).
    """
    report = build_report(scale=scale, repeat=repeat, peers=peers)
    if smoke:
        report["smoke"] = build_report(
            scale=SMOKE_SCALE, repeat=SMOKE_REPEAT, peers=SMOKE_PEERS
        )
    if out:
        write_report(report, out)
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_summary(report: Dict[str, Any]) -> str:
    """Human-readable one-line-per-benchmark summary for the CLI."""
    lines = [
        f"suite=core scale={report['scale']} "
        f"triples={report['graph_triples']} repeat={report['repeat']}"
    ]
    for row in report["benchmarks"]:
        base = row.get("baseline_seconds")
        meta = row.get("meta", {})
        if base is not None:
            extra = f"  baseline={base:.4f}s  speedup={row['speedup']:.2f}x"
        elif "messages" in meta:
            busy = meta["busy_seconds"]
            extra = (
                f"  messages={meta['messages']}"
                f"  solutions={meta['solutions_transferred']}"
                f"  triples={meta['triples_transferred']}"
                f"  busy={busy:.4f}s"
            )
            if "elapsed_seconds" in meta:
                extra += f"  elapsed={meta['elapsed_seconds']:.4f}s"
        else:
            extra = ""
        lines.append(f"{row['name']:<26} {row['seconds']:.4f}s{extra}")
    return "\n".join(lines)
