"""Deterministic fault injection for the simulated federation.

Real SPARQL federation faces endpoints that fail, time out, or
disappear; this module brings that into the simulation *without giving
up determinism*.  A :class:`FaultModel` is immutable per-execution
configuration — one :class:`FaultSpec` per endpoint plus a seed — and
every execution draws its own :class:`FaultSession` from it, so the
same model produces byte-identical fault schedules run after run.

Determinism invariants:

* **Seeded draws.**  Each endpoint gets its own ``random.Random``
  seeded from ``(seed, endpoint name)``; an endpoint's outcome sequence
  depends only on the seed and on *how many requests that endpoint has
  seen*, never on wall clock, dict order, or other endpoints' traffic.
* **Virtual-time outages.**  Scripted outage windows are evaluated
  against the execution's accumulated ``busy_seconds`` — the one clock
  that advances identically in the serial and runtime interpreters
  (charges accrue at record time, in submission order) — so an outage
  hits the same requests in both modes.
* **Deterministic fail-first.**  ``fail_first=K`` fails an endpoint's
  first K requests unconditionally, giving tests an exact, probability-
  free fault schedule.

Recovery is priced, not free: failed attempts are charged like real
traffic (an error reply costs a round trip, a timeout costs the
policy's ``timeout_seconds``), and the :class:`RetryPolicy`'s
exponential backoff delays flow into ``elapsed_seconds`` — directly in
serial mode, through the event kernel's request arrival times in
runtime mode.  When retries and replicas are exhausted the request
raises :class:`~repro.errors.EndpointUnavailableError`; the interpreter
degrades to a flagged :class:`PartialAnswer` instead of failing the
query — full answers when faults are recoverable, correctly-flagged
partial answers otherwise, never a silently wrong answer set.

Statistics-catalog refreshes deliberately bypass fault injection: they
model out-of-band VoID fetches, and entangling them would make planning
inputs depend on the fault schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

__all__ = [
    "FaultModel",
    "FaultSession",
    "FaultSpec",
    "PartialAnswer",
    "RetryPolicy",
    "Unreachable",
]


@dataclass(frozen=True)
class FaultSpec:
    """Failure behaviour of one endpoint (immutable configuration).

    Attributes:
        failure_rate: per-attempt probability of an error reply.
        timeout_rate: per-attempt probability of no reply (charged at
            the retry policy's ``timeout_seconds``).
        fail_first: the endpoint's first K attempts fail
            deterministically (error replies), before any probability
            draw.
        outages: scripted ``(start, end)`` windows in virtual time
            (``busy_seconds``); attempts landing in ``start <= t < end``
            fail deterministically.
    """

    failure_rate: float = 0.0
    timeout_rate: float = 0.0
    fail_first: int = 0
    outages: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(f"failure_rate not in [0,1]: {self.failure_rate}")
        if not 0.0 <= self.timeout_rate <= 1.0:
            raise ValueError(f"timeout_rate not in [0,1]: {self.timeout_rate}")
        if self.failure_rate + self.timeout_rate > 1.0:
            raise ValueError(
                "failure_rate + timeout_rate exceeds 1: "
                f"{self.failure_rate} + {self.timeout_rate}"
            )
        if self.fail_first < 0:
            raise ValueError(f"fail_first must be >= 0: {self.fail_first}")
        for start, end in self.outages:
            if end < start:
                raise ValueError(f"outage window ends before it starts: "
                                 f"({start}, {end})")

    def in_outage(self, now: float) -> bool:
        """Is virtual time ``now`` inside a scripted outage window?"""
        return any(start <= now < end for start, end in self.outages)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff parameters, shared per execution.

    Attributes:
        max_retries: extra attempts after the first, per endpoint
            instance (a primary and each replica get their own budget).
        backoff_seconds: delay before the first retry.
        backoff_factor: multiplier applied per subsequent retry.
        timeout_seconds: wire time charged for a timed-out attempt (the
            coordinator's per-request timeout).
    """

    max_retries: int = 2
    backoff_seconds: float = 0.1
    backoff_factor: float = 2.0
    timeout_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0: {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if self.timeout_seconds < 0:
            raise ValueError(
                f"timeout_seconds must be >= 0: {self.timeout_seconds}"
            )

    def backoff(self, retry_index: int) -> float:
        """Backoff delay before retry ``retry_index`` (0-based)."""
        return self.backoff_seconds * self.backoff_factor**retry_index


@dataclass(frozen=True)
class FaultModel:
    """Immutable fault configuration: per-endpoint specs plus a seed.

    Endpoints without a spec never fail.  The model itself holds no
    mutable state — every execution calls :meth:`session` for a fresh
    :class:`FaultSession`, so repeated executions (and the strategies
    of one ``run_all_strategies`` comparison) each see the full
    schedule from the start.
    """

    specs: Dict[str, FaultSpec] = field(default_factory=dict)
    seed: int = 0

    def session(self) -> "FaultSession":
        """A fresh per-execution session over this configuration."""
        return FaultSession(self)


class FaultSession:
    """Mutable per-execution fault state: RNGs, counters, downed set.

    One session serves exactly one execution.  Outcome draws are
    per-endpoint (seeded from ``(model.seed, name)``) and consumed in
    request order, so an execution's fault schedule is a pure function
    of the model and of each endpoint's own request sequence.
    """

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self._rngs: Dict[str, random.Random] = {}
        self._attempts: Dict[str, int] = {}
        self._downed: Set[str] = set()

    def outcome(self, endpoint: str, now: float) -> str:
        """Draw the outcome of one attempt: ``ok``/``fail``/``timeout``.

        ``now`` is the execution's virtual-time probe (accumulated
        ``busy_seconds``), used only for scripted outage windows.
        Deterministic branches (fail-first, outages) are decided before
        any probability draw, so they never consume randomness.
        """
        spec = self.model.specs.get(endpoint)
        if spec is None:
            return "ok"
        count = self._attempts.get(endpoint, 0) + 1
        self._attempts[endpoint] = count
        if count <= spec.fail_first:
            return "fail"
        if spec.in_outage(now):
            return "fail"
        if spec.failure_rate == 0.0 and spec.timeout_rate == 0.0:
            return "ok"
        rng = self._rngs.get(endpoint)
        if rng is None:
            rng = random.Random(f"{self.model.seed}/{endpoint}")
            self._rngs[endpoint] = rng
        draw = rng.random()
        if draw < spec.timeout_rate:
            return "timeout"
        if draw < spec.timeout_rate + spec.failure_rate:
            return "fail"
        return "ok"

    def attempts(self, endpoint: str) -> int:
        """Attempts drawn against ``endpoint`` so far."""
        return self._attempts.get(endpoint, 0)

    def mark_down(self, endpoint: str) -> None:
        """Record that ``endpoint`` exhausted its retry budget."""
        self._downed.add(endpoint)

    def is_down(self, endpoint: str) -> bool:
        """Has this endpoint *instance* exhausted its budget?"""
        return endpoint in self._downed

    def unreachable(self, endpoint) -> bool:
        """Is the logical endpoint — primary and every replica — down?

        Takes a :class:`~repro.federation.endpoint.PeerEndpoint`; the
        planner and cost model use this to route around endpoints that
        no candidate instance can serve any more.
        """
        if not self.is_down(endpoint.name):
            return False
        return all(self.is_down(rep.name) for rep in endpoint.replicas)


@dataclass(frozen=True)
class Unreachable:
    """One dropped contribution: which endpoint, for which operation.

    Attributes:
        endpoint: the primary endpoint name that could not be reached.
        operation: what was being asked of it — the conjunct(s) in N3,
            or ``dump`` for a collect transfer.
    """

    endpoint: str
    operation: str


@dataclass(frozen=True)
class PartialAnswer:
    """Provenance of a degraded result: what the answer set is missing.

    Attached to a :class:`~repro.federation.executor.FederationResult`
    whose execution dropped at least one endpoint's contribution.  A
    result without one (``partial is None``) is complete; a result with
    one is a correct answer over the *reachable* endpoints, flagged so
    callers never mistake a subset for the full answer set.
    """

    unreachable: Tuple[Unreachable, ...]

    def endpoints(self) -> Tuple[str, ...]:
        """Sorted distinct names of the unreachable endpoints."""
        return tuple(sorted({u.endpoint for u in self.unreachable}))

    def describe(self) -> str:
        """One human-readable line per dropped contribution."""
        return "\n".join(
            f"unreachable {u.endpoint}: {u.operation}"
            for u in self.unreachable
        )
