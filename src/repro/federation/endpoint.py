"""Simulated SPARQL access points over peer graphs.

A :class:`PeerEndpoint` stands in for one peer's remote SPARQL endpoint.
It answers triple patterns — optionally *bound* by a batch of partial
solutions, the wire format of FedX-style bound joins — directly at the
dictionary-ID level, so the federated executor can join peer answers on
integers exactly like the local engine does.  The endpoint itself does
no network accounting; the executor charges every call against its
:class:`~repro.federation.network.NetworkModel`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.gpq.evaluation import compile_conjunct, extend_id_bindings
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import TriplePattern

__all__ = ["PeerEndpoint"]

_IDBinding = Dict[Variable, int]


class PeerEndpoint:
    """One peer's graph exposed as a simulated access point.

    Args:
        name: the peer name (used as the endpoint label in statistics).
        graph: the peer's stored database.
    """

    __slots__ = ("name", "graph")

    def __init__(self, name: str, graph: Graph) -> None:
        self.name = name
        self.graph = graph

    def __len__(self) -> int:
        return len(self.graph)

    def pattern_solutions(self, tp: TriplePattern) -> List[_IDBinding]:
        """All solutions of one unbound triple pattern (one round trip)."""
        slots = compile_conjunct(self.graph, tp)
        if slots is None:
            return []
        return list(extend_id_bindings(self.graph, slots, {}))

    def bound_solutions(
        self, tp: TriplePattern, batch: Iterable[_IDBinding]
    ) -> List[_IDBinding]:
        """Solutions of a pattern bound by a batch of partial solutions.

        Models one FedX bound-join request: the batch travels in a single
        message (a UNION of instantiated patterns on a real endpoint) and
        every returned solution extends one input binding.
        """
        slots = compile_conjunct(self.graph, tp)
        if slots is None:
            return []
        out: List[_IDBinding] = []
        for partial in batch:
            out.extend(extend_id_bindings(self.graph, slots, partial))
        return out

    def can_answer(self, tp: TriplePattern, schema) -> bool:
        """Schema-based relevance: does the peer's schema cover every
        ground IRI of the pattern?

        In an RPS the peer schemas are part of the system triple
        ``P = (S, G, E)`` — global knowledge — so source selection reads
        them locally and costs no messages.  A pattern with no ground
        IRI is potentially answerable by every peer.
        """
        for term in (tp.subject, tp.predicate, tp.object):
            if isinstance(term, IRI) and term not in schema:
                return False
        return True

    def __repr__(self) -> str:
        return f"PeerEndpoint({self.name!r}, {len(self.graph)} triples)"
