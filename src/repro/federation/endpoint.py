"""Simulated SPARQL access points over peer graphs.

A :class:`PeerEndpoint` stands in for one peer's remote SPARQL endpoint.
It answers triple patterns — optionally *bound* by a batch of partial
solutions, the wire format of FedX-style bound joins — directly at the
dictionary-ID level, so the federated executor can join peer answers on
integers exactly like the local engine does.  Sub-queries may carry a
compiled FILTER predicate (``accept``): the endpoint applies it to every
candidate solution *before* it travels, which is how FILTER pushdown
saves transfer volume.  The endpoint itself does no network accounting;
the executor charges every call against its
:class:`~repro.federation.network.NetworkModel`.

Endpoints also publish cardinality statistics
(:meth:`PeerEndpoint.count_pattern`, :meth:`PeerEndpoint.count_relation`)
backed by :meth:`repro.rdf.graph.Graph.count_ids`.  Like the peer
schemas, these are treated as global knowledge of the RPS triple —
VoID-style statistics refreshed out of band — so reading them costs the
cost model no messages.

An endpoint may carry *replicas* — further :class:`PeerEndpoint`
instances over the same graph — which the fault-aware request path
(:func:`repro.federation.plan.issue_request`) fails over to when the
primary exhausts its retry budget.  Replica traffic is charged against
the replica's own name, so per-endpoint statistics show where requests
actually landed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.gpq.evaluation import compile_conjunct, extend_id_bindings
from repro.rdf.dictionary import IDTriple
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import TriplePattern

__all__ = ["PeerEndpoint"]

_IDBinding = Dict[Variable, int]
_Accept = Optional[Callable[[_IDBinding], bool]]


class PeerEndpoint:
    """One peer's graph exposed as a simulated access point.

    Args:
        name: the peer name (used as the endpoint label in statistics).
        graph: the peer's stored database.
        replicas: failover endpoints serving the same database.  The
            fault-aware request path contacts them, in order, once the
            primary exhausts its retry budget; each replica is itself a
            :class:`PeerEndpoint` with its own name (``"peer0.r1"``)
            and fault behaviour, sharing the primary's graph.
    """

    __slots__ = ("name", "graph", "replicas")

    def __init__(
        self,
        name: str,
        graph: Graph,
        replicas: Sequence["PeerEndpoint"] = (),
    ) -> None:
        self.name = name
        self.graph = graph
        self.replicas = tuple(replicas)

    def __len__(self) -> int:
        return len(self.graph)

    def pattern_solutions(
        self, tp: TriplePattern, accept: _Accept = None
    ) -> List[_IDBinding]:
        """All solutions of one unbound triple pattern (one round trip).

        ``accept`` is a compiled FILTER predicate pushed down into the
        sub-query; rejected solutions never leave the endpoint.
        """
        return self._evaluate_group((tp,), [{}], accept)

    def bound_solutions(
        self,
        tp: TriplePattern,
        batch: Iterable[_IDBinding],
        accept: _Accept = None,
    ) -> List[_IDBinding]:
        """Solutions of a pattern bound by a batch of partial solutions.

        Models one FedX bound-join request: the batch travels in a single
        message (a UNION of instantiated patterns on a real endpoint) and
        every returned solution extends one input binding.  ``accept``
        plays the same pushed-down-FILTER role as in
        :meth:`pattern_solutions`; it sees the *extended* rows, so
        filters over already-bound variables are decidable here.
        """
        return self._evaluate_group((tp,), list(batch), accept)

    def group_solutions(
        self,
        patterns: Sequence[TriplePattern],
        accept: _Accept = None,
    ) -> List[_IDBinding]:
        """All solutions of a conjunction evaluated *at* the endpoint.

        The wire format of a FedX-style exclusive group: conjuncts
        relevant to exactly this endpoint are fused into one sub-query,
        the endpoint joins them locally, and only the joined solutions
        travel — one round trip for the whole group.  ``accept`` is a
        pushed-down FILTER over the group's variables.
        """
        return self._evaluate_group(patterns, [{}], accept)

    def bound_group_solutions(
        self,
        patterns: Sequence[TriplePattern],
        batch: Iterable[_IDBinding],
        accept: _Accept = None,
    ) -> List[_IDBinding]:
        """Group solutions bound by a batch of partial solutions.

        One bound-join request carrying a whole exclusive group: every
        returned solution extends one input binding through *all* the
        group's conjuncts.  ``accept`` sees the fully extended rows.
        """
        return self._evaluate_group(patterns, list(batch), accept)

    def _evaluate_group(
        self,
        patterns: Sequence[TriplePattern],
        bindings: List[_IDBinding],
        accept: _Accept,
    ) -> List[_IDBinding]:
        for tp in patterns:
            slots = compile_conjunct(self.graph, tp)
            if slots is None:
                return []
            bindings = [
                extended
                for partial in bindings
                for extended in extend_id_bindings(self.graph, slots, partial)
            ]
            if not bindings:
                return []
        if accept is None:
            return bindings
        return [mu for mu in bindings if accept(mu)]

    # -- published statistics (free to read, like the peer schemas) -----

    def count_pattern(self, tp: TriplePattern) -> int:
        """Exact match count of an unbound pattern at this endpoint.

        Backed by :meth:`repro.rdf.graph.Graph.count_ids`; the federated
        cost model reads this per conjunct to estimate transfer volumes.
        """
        return self.graph.count_pattern(tp)

    def count_relation(self, tp: TriplePattern) -> int:
        """Size of the pattern's source relation at this endpoint.

        The source relation is every triple sharing the pattern's
        predicate (the whole database when the predicate is a variable)
        — what a *pull* decision would transfer.
        """
        predicate = tp.predicate
        if isinstance(predicate, Variable):
            return len(self.graph)
        pid = self.graph.term_id(predicate)
        if pid is None:
            return 0
        return self.graph.count_ids(None, pid, None)

    def relation_key(self, tp: TriplePattern) -> Optional[int]:
        """Cache key of the pattern's source relation: the predicate's
        dictionary ID, or ``None`` for a variable predicate (full dump).
        """
        predicate = tp.predicate
        if isinstance(predicate, Variable):
            return None
        return self.graph.term_id(predicate)

    def relation_ids(self, tp: TriplePattern) -> List[IDTriple]:
        """The pattern's source relation as ID triples (one transfer)."""
        predicate = tp.predicate
        if isinstance(predicate, Variable):
            return list(self.graph.triples_ids())
        pid = self.graph.term_id(predicate)
        if pid is None:
            return []
        return list(self.graph.triples_ids(None, pid, None))

    def can_answer(self, tp: TriplePattern, schema) -> bool:
        """Schema-based relevance: does the peer's schema cover every
        ground IRI of the pattern?

        In an RPS the peer schemas are part of the system triple
        ``P = (S, G, E)`` — global knowledge — so source selection reads
        them locally and costs no messages.  A pattern with no ground
        IRI is potentially answerable by every peer.
        """
        for term in (tp.subject, tp.predicate, tp.object):
            if isinstance(term, IRI) and term not in schema:
                return False
        return True

    def __repr__(self) -> str:
        return f"PeerEndpoint({self.name!r}, {len(self.graph)} triples)"
