"""Endpoint cardinality statistics with TTL-based staleness.

PR 3's cost model read endpoint cardinalities as *global knowledge*:
every ``count_pattern``/``count_relation`` call saw the live graph and
cost nothing, as if VoID statistics were refreshed out of band at
infinite frequency.  Real federations cache statistics and refresh them
on a schedule, so plans made from a stale catalog can mis-price every
alternative until the next refresh.

:class:`StatisticsCatalog` models exactly that.  Executions are counted
as *epochs* (:meth:`begin_execution`), and each endpoint's cached
statistics age until ``epoch - fetched > ttl``, at which point the next
read triggers a refresh: one real round trip charged to the execution's
:class:`~repro.federation.network.NetworkStats` (via
:meth:`~repro.federation.network.NetworkModel.charge_refresh`), after
which the endpoint's counts are re-read from the live graph.  Between
refreshes, cached counts are served as they were at fetch time — if the
peer's database grew meanwhile, the cost model plans against yesterday's
cardinalities, and the benchmark workloads show the resulting plan
degradation and its recovery at the next refresh.

``ttl=None`` (the default) preserves the PR-3 semantics: always fresh,
never charged.  ``ttl=0`` refreshes every execution; ``ttl=k`` serves
each fetch for ``k`` further executions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import FederationError
from repro.federation.endpoint import PeerEndpoint
from repro.federation.network import NetworkModel, NetworkStats
from repro.rdf.triples import TriplePattern

__all__ = ["StatisticsCatalog"]

#: Cache key: (endpoint name, "pattern" | "relation", pattern n3 text).
_Key = Tuple[str, str, str]


class StatisticsCatalog:
    """TTL-cached per-endpoint cardinality statistics.

    Args:
        network: the cost model charging refresh round trips.
        ttl: statistics lifetime in *executions*; ``None`` disables
            caching entirely (always fresh, never charged).

    The catalog is owned by one
    :class:`~repro.federation.executor.FederatedExecutor` and shared
    across its executions, which is what makes staleness observable:
    the first execution fetches, later executions against a mutated
    peer database keep planning from the old numbers until the TTL
    lapses.
    """

    def __init__(
        self, network: NetworkModel, ttl: Optional[int] = None
    ) -> None:
        if ttl is not None and ttl < 0:
            raise FederationError(f"stats ttl must be >= 0 or None: {ttl}")
        self.network = network
        self.ttl = ttl
        self.epoch = 0
        #: Bumped whenever the statistics any plan was priced against
        #: actually change (an endpoint refresh, or an explicit
        #: :meth:`invalidate_plans`).  The federated executor keys its
        #: plan cache on this, so a bump strands every cached plan.
        self.statistics_epoch = 0
        #: Total endpoint refresh round trips charged over the
        #: catalog's lifetime — surfaced through the executor's
        #: :meth:`~repro.federation.executor.FederatedExecutor.metrics`
        #: registry.
        self.refreshes = 0
        self._fetched_epoch: Dict[str, int] = {}
        self._cache: Dict[_Key, int] = {}
        self._stats: Optional[NetworkStats] = None

    @property
    def live(self) -> bool:
        """True when the catalog passes reads straight to the graphs."""
        return self.ttl is None

    def begin_execution(self, stats: NetworkStats) -> None:
        """Start a new epoch; refreshes are charged to ``stats``."""
        self.epoch += 1
        self._stats = stats

    # -- reads ----------------------------------------------------------

    def pattern_count(self, endpoint: PeerEndpoint, tp: TriplePattern) -> int:
        """Match count of ``tp`` at ``endpoint``, as of the last refresh."""
        if self.live:
            return endpoint.count_pattern(tp)
        self._ensure_fresh(endpoint)
        key = (endpoint.name, "pattern", tp.n3())
        value = self._cache.get(key)
        if value is None:
            value = endpoint.count_pattern(tp)
            self._cache[key] = value
        return value

    def relation_count(self, endpoint: PeerEndpoint, tp: TriplePattern) -> int:
        """Source-relation size at ``endpoint``, as of the last refresh."""
        if self.live:
            return endpoint.count_relation(tp)
        self._ensure_fresh(endpoint)
        key = (endpoint.name, "relation", tp.n3())
        value = self._cache.get(key)
        if value is None:
            value = endpoint.count_relation(tp)
            self._cache[key] = value
        return value

    # -- refresh policy -------------------------------------------------

    def stale(self, endpoint_name: str) -> bool:
        """Would a read from this endpoint trigger a refresh right now?"""
        if self.live:
            return False
        fetched = self._fetched_epoch.get(endpoint_name)
        return fetched is None or self.epoch - fetched > self.ttl

    def _ensure_fresh(self, endpoint: PeerEndpoint) -> None:
        if not self.stale(endpoint.name):
            return
        if self._stats is None:
            raise FederationError(
                "statistics read outside an execution; call "
                "begin_execution() first"
            )
        # One real round trip per endpoint per refresh: the endpoint
        # ships its statistics document, and every cached count of that
        # endpoint is re-read from the live graph afterwards.
        self.network.charge_refresh(self._stats, endpoint.name)
        self._fetched_epoch[endpoint.name] = self.epoch
        self.statistics_epoch += 1
        self.refreshes += 1
        stale_keys = [key for key in self._cache if key[0] == endpoint.name]
        for key in stale_keys:
            del self._cache[key]

    def invalidate_plans(self) -> None:
        """Declare every statistics-derived plan stale.

        Bumps :attr:`statistics_epoch` without touching the cached
        counts — the lever for callers that mutate peer databases out
        of band and want prepared plans rebuilt on next use.
        """
        self.statistics_epoch += 1
