"""Federated query execution over the peers of an RPS (§5 item 4).

The paper's prototype sketch federates conjunctive SPARQL sub-queries
over peer access points.  This package provides the simulated version:

* :mod:`repro.federation.network` — the parametric message/transfer
  cost model and its accumulated statistics;
* :mod:`repro.federation.endpoint` — a peer's graph wrapped as a
  simulated SPARQL access point answering (possibly bound) triple
  patterns at the dictionary-ID level;
* :mod:`repro.federation.cost` — the per-conjunct cost model behind the
  adaptive strategy: prices *ship* / *bound* / *pull* alternatives from
  endpoint cardinality statistics and the live intermediate binding
  count;
* :mod:`repro.federation.statistics` — the TTL statistics catalog:
  endpoint cardinalities age across executions and refreshes are
  charged as real messages, so stale plans (and their recovery) are
  observable;
* :mod:`repro.federation.faults` — deterministic fault injection: the
  seeded per-endpoint :class:`FaultModel`/:class:`FaultSpec`
  configuration, the per-execution :class:`FaultSession`, the
  :class:`RetryPolicy` (retries, exponential backoff, timeouts), and
  the :class:`PartialAnswer` provenance attached to degraded results;
* :mod:`repro.federation.bindings` — the shared ID-binding plumbing
  (dedup, batching, projection, domain-aware hash/left joins, compiled
  FILTER splitting) both the operator layer and the executor use;
* :mod:`repro.federation.plan` — the physical-operator layer: streaming
  operators (``RemoteScan``, ``BoundJoinStream`` with pipelined
  batches, ``ExclusiveGroupScan``, ``PullScan``, ``LocalHashJoin``,
  ``LeftJoin`` for federated OPTIONAL, ``Filter``/``Union``/
  ``Project``), the planner that builds them from cost-model
  decisions, and the memoised interpreter that walks one plan either
  serially or on the discrete-event runtime;
* :mod:`repro.federation.executor` — the distributed executor facade:
  normalises queries, prepares filters once, and runs each strategy as
  a plan-construction policy — the cost-model-driven ``adaptive``
  strategy (with FILTER/UNION pushdown into per-endpoint sub-queries),
  the overlap-aware ``parallel`` mode on the discrete-event runtime
  (:mod:`repro.runtime`) with FedX-style exclusive groups,
  makespan-priced decisions and pipelined bound joins, plus three
  fixed baselines — ``naive`` per-pattern shipping, FedX-style
  ``bound`` joins with solution batching, and the ``collect``
  data-dump baseline.
"""

from repro.federation.cost import CostModel, Decision, EndpointStats
from repro.federation.endpoint import PeerEndpoint
from repro.federation.faults import (
    FaultModel,
    FaultSession,
    FaultSpec,
    PartialAnswer,
    RetryPolicy,
    Unreachable,
)
from repro.federation.executor import (
    ADAPTIVE,
    FIXED_STRATEGIES,
    PARALLEL,
    STRATEGIES,
    FederatedExecutor,
    FederationResult,
    PreparedQuery,
    execute_federated,
)
from repro.federation.network import NetworkModel, NetworkStats
from repro.federation.plan import (
    BoundJoinStream,
    ExclusiveGroupScan,
    FederatedPlanner,
    FedOp,
    FilterNode,
    LeftJoinNode,
    LocalHashJoin,
    PlanInterpreter,
    ProjectDedupe,
    PullScan,
    RemoteScan,
    UnionNode,
)
from repro.federation.statistics import StatisticsCatalog

__all__ = [
    "ADAPTIVE",
    "FIXED_STRATEGIES",
    "PARALLEL",
    "STRATEGIES",
    "BoundJoinStream",
    "CostModel",
    "Decision",
    "EndpointStats",
    "ExclusiveGroupScan",
    "FaultModel",
    "FaultSession",
    "FaultSpec",
    "FederatedExecutor",
    "FederatedPlanner",
    "FederationResult",
    "FedOp",
    "FilterNode",
    "LeftJoinNode",
    "LocalHashJoin",
    "NetworkModel",
    "NetworkStats",
    "PartialAnswer",
    "PeerEndpoint",
    "PlanInterpreter",
    "PreparedQuery",
    "ProjectDedupe",
    "PullScan",
    "RemoteScan",
    "RetryPolicy",
    "StatisticsCatalog",
    "UnionNode",
    "Unreachable",
    "execute_federated",
]
