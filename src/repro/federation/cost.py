"""Cost model for adaptive federated query execution.

The PR-2 benchmarks showed no fixed strategy wins everywhere: bound
joins minimise messages only while intermediate binding sets stay small,
naive shipping minimises transfer when source selection leaves one peer
per pattern, and the collect baseline trades maximal bytes for minimal
messages.  This module is the per-conjunct decision procedure that
replaces the global strategy flag: given the endpoints relevant to a
conjunct, their published cardinalities
(:meth:`~repro.federation.endpoint.PeerEndpoint.count_pattern`, backed
by :meth:`repro.rdf.graph.Graph.count_ids`) and the *actual* size of the
current intermediate binding set (the executor's cardinality feedback),
it prices three physical alternatives with the network model's own
parameters and picks the cheapest:

``ship``
    Send the conjunct unbound to every relevant endpoint with matches;
    join the returned solutions locally.  One message per endpoint,
    transfer is the exact match count.

``bound``
    FedX-style bound join: ship the current bindings in batches and let
    endpoints return only extensions.  Messages grow with the binding
    count, transfer shrinks with join selectivity.

``pull``
    Transfer the conjunct's *source relation* (all triples with its
    predicate) once per endpoint into a local cache and answer this —
    and every later conjunct over the same relation — locally for free.
    One message per uncached endpoint, transfer in triples.

Costs are priced on one of two time axes, matching the execution mode:

* **serial** (``parallel=False``) — busy seconds: every message's
  latency and every transferred item adds up, exactly the quantity the
  serial strategies accumulate in ``NetworkStats.busy_seconds``.
* **makespan** (``parallel=True``) — elapsed seconds under the
  overlap-aware runtime (:mod:`repro.runtime`): per-endpoint fan-outs
  run side by side (the estimate is the *max* over endpoints, not the
  sum) and bound-join batch waves overlap up to the per-endpoint
  channel ``concurrency``.  The parallel execution mode prices its
  ship/bound/pull decisions this way, so a plan that wins on wall
  clock is chosen even when it loses on summed wire time.

Ties break on messages, then transfer.  Every decision carries its
rejected alternatives for ``explain``-style traces and names the
physical operator the planner (:mod:`repro.federation.plan`) builds
from it (:meth:`Decision.operator`).  Conjuncts fused into a FedX-style
exclusive group are decided together (:meth:`CostModel.decide_group`):
only ship/bound apply, and the group's result cardinality is estimated
from its most selective member.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.federation.network import NetworkModel
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.runtime.scheduler import DEFAULT_CONCURRENCY

__all__ = ["CostModel", "Decision", "EndpointStats", "Estimate"]

#: Selectivity credit per pattern position occupied by an already-bound
#: variable when estimating bound-join output (mirrors the single-graph
#: planner's ``_BOUND_SELECTIVITY``).
BOUND_SELECTIVITY = 8.0

#: Estimated fraction of solutions surviving one pushed-down FILTER
#: (mirrors the single-graph planner's halving in ``FilterScan``).
#: Ship/bound sub-queries benefit; a pulled relation travels unfiltered.
FILTER_SELECTIVITY = 0.5


@dataclass(frozen=True)
class EndpointStats:
    """Published statistics of one relevant endpoint for one conjunct.

    Attributes:
        name: the endpoint (peer) name.
        pattern_count: exact matches of the unbound conjunct there.
        relation_count: size of the conjunct's source relation there.
        cached: True when the executor already pulled that relation.
        down: True when the endpoint (and every replica) exhausted its
            retry budget this execution; estimates and decisions route
            around it as if it had no matches.
    """

    name: str
    pattern_count: int
    relation_count: int
    cached: bool = False
    down: bool = False


@dataclass(frozen=True)
class Estimate:
    """Priced outcome of one physical alternative for one conjunct.

    Attributes:
        action: ``"ship"``, ``"bound"``, ``"pull"`` or ``"local"``.
        messages: estimated round trips.
        solutions: estimated solution mappings transferred.
        triples: estimated triples transferred (pull only).
        seconds: estimated time — busy seconds when priced serially,
            makespan seconds when priced for the parallel mode.
        feasible: False when the alternative cannot run here (e.g. a
            bound join with no prior bindings).
    """

    action: str
    messages: int
    solutions: float
    triples: int
    seconds: float
    feasible: bool = True

    def sort_key(self) -> Tuple[float, int, float, str]:
        return (
            self.seconds,
            self.messages,
            self.solutions + self.triples,
            self.action,
        )


@dataclass
class Decision:
    """The chosen alternative for one conjunct, with its audit trail.

    Attributes:
        pattern: the conjunct decided on (the first member, for an
            exclusive group).
        chosen: the winning estimate.
        alternatives: every feasible estimate considered (winner
            included), for ``explain`` traces.
        endpoints: names of the endpoints the action will contact.
        bindings: size of the intermediate binding set at decision time
            (the cardinality feedback input).
        branch: index of the conjunctive branch this conjunct belongs to.
        group: every member of the exclusive group when the decision
            covers a fused endpoint-side sub-query; empty for a single
            conjunct.
    """

    pattern: TriplePattern
    chosen: Estimate
    alternatives: List[Estimate] = field(default_factory=list)
    endpoints: Tuple[str, ...] = ()
    bindings: int = 0
    branch: int = 0
    group: Tuple[TriplePattern, ...] = ()

    @property
    def action(self) -> str:
        return self.chosen.action

    def operator(self) -> str:
        """The plan-layer operator this decision constructs.

        ``ship`` becomes a :class:`~repro.federation.plan.RemoteScan`
        (an ``ExclusiveGroupScan`` for fused groups) joined locally,
        ``bound`` a :class:`~repro.federation.plan.BoundJoinStream`,
        and ``pull``/``local`` a
        :class:`~repro.federation.plan.PullScan` answering from the
        relation cache.
        """
        if self.action == "ship":
            return "ExclusiveGroupScan" if self.group else "RemoteScan"
        if self.action == "bound":
            return "BoundJoinStream"
        return "PullScan"

    def describe(self) -> str:
        """One-line trace entry: action, targets, estimates, rejects."""
        targets = ",".join(self.endpoints) or "-"
        if self.group:
            shape = (
                f"group[{len(self.group)}] "
                + " ".join(tp.n3() for tp in self.group)
            )
        else:
            shape = self.pattern.n3()
        parts = [
            f"{self.action:<5} {shape} -> {targets}",
            f"[n={self.bindings} est msgs={self.chosen.messages} "
            f"sols={self.chosen.solutions:.0f} "
            f"triples={self.chosen.triples} "
            f"{self.chosen.seconds * 1000:.1f}ms]",
        ]
        rejected = [
            f"{e.action}={e.seconds * 1000:.1f}ms"
            for e in self.alternatives
            if e.action != self.action
        ]
        if rejected:
            parts.append("(rejected " + ", ".join(rejected) + ")")
        return " ".join(parts)


class CostModel:
    """Prices the physical alternatives of one conjunct.

    Args:
        network: the network model whose latency/transfer parameters
            convert message and volume estimates into simulated seconds.
        batch_size: bound-join batch size (bindings per message).
        bound_selectivity: per-bound-position discount applied when
            estimating bound-join output size.
        concurrency: per-endpoint channel concurrency assumed by the
            makespan (``parallel=True``) pricing — how many of one
            endpoint's batch requests overlap.
    """

    def __init__(
        self,
        network: NetworkModel,
        batch_size: int,
        bound_selectivity: float = BOUND_SELECTIVITY,
        concurrency: int = DEFAULT_CONCURRENCY,
    ) -> None:
        self.network = network
        self.batch_size = batch_size
        self.bound_selectivity = bound_selectivity
        self.concurrency = max(1, concurrency)

    # -- pricing --------------------------------------------------------

    def _seconds(
        self, messages: int, solutions: float, triples: int
    ) -> float:
        net = self.network
        return (
            messages * net.latency_seconds
            + solutions * net.per_solution_seconds
            + triples * net.per_triple_seconds
        )

    def estimate_ship(
        self,
        stats: Sequence[EndpointStats],
        pushed_filters: int = 0,
        parallel: bool = False,
    ) -> Estimate:
        active = [s for s in stats if s.pattern_count > 0 and not s.down]
        messages = len(active)
        discount = FILTER_SELECTIVITY**pushed_filters
        solutions = float(sum(s.pattern_count for s in active)) * discount
        if parallel:
            # Endpoints answer on independent channels: the fan-out's
            # makespan is the slowest endpoint, not the sum.
            seconds = max(
                (
                    self._seconds(1, s.pattern_count * discount, 0)
                    for s in active
                ),
                default=0.0,
            )
        else:
            seconds = self._seconds(messages, solutions, 0)
        return Estimate("ship", messages, solutions, 0, seconds)

    def estimate_bound(
        self,
        stats: Sequence[EndpointStats],
        bindings: int,
        bound_positions: int,
        pushed_filters: int = 0,
        parallel: bool = False,
    ) -> Estimate:
        """Price a bound join of ``bindings`` rows against the conjunct.

        ``bound_positions`` counts pattern positions holding an
        already-bound variable; each divides the per-binding match
        estimate by the selectivity credit.  Infeasible without prior
        bindings or without a join variable (it would degenerate into
        shipping the cross product).
        """
        active = [s for s in stats if s.pattern_count > 0 and not s.down]
        if bindings < 1 or bound_positions < 1:
            return Estimate("bound", 0, 0.0, 0, math.inf, feasible=False)
        batches = math.ceil(bindings / self.batch_size)
        messages = batches * len(active)
        discount = self.bound_selectivity**bound_positions
        filter_discount = FILTER_SELECTIVITY**pushed_filters
        solutions = 0.0
        per_endpoint: List[float] = []
        for s in active:
            per_binding = s.pattern_count / discount
            endpoint_solutions = (
                min(bindings * per_binding, float(bindings * s.pattern_count))
                * filter_discount
            )
            solutions += endpoint_solutions
            per_endpoint.append(endpoint_solutions)
        if parallel:
            # Batch waves overlap up to the channel concurrency; the
            # endpoints themselves run side by side, so take the max.
            waves = math.ceil(batches / self.concurrency)
            seconds = max(
                (
                    waves * self._seconds(1, endpoint_solutions / batches, 0)
                    for endpoint_solutions in per_endpoint
                ),
                default=0.0,
            )
        else:
            seconds = self._seconds(messages, solutions, 0)
        return Estimate("bound", messages, solutions, 0, seconds)

    def estimate_pull(
        self, stats: Sequence[EndpointStats], parallel: bool = False
    ) -> Estimate:
        """Price pulling the conjunct's source relation.

        Already-cached endpoints cost nothing; when every relevant
        endpoint is cached the action degenerates to ``local`` (answer
        from the cache, zero network).
        """
        uncached = [
            s
            for s in stats
            if not s.cached and s.relation_count > 0 and not s.down
        ]
        if not uncached:
            return Estimate("local", 0, 0.0, 0, 0.0)
        messages = len(uncached)
        triples = sum(s.relation_count for s in uncached)
        if parallel:
            seconds = max(
                self._seconds(1, 0.0, s.relation_count) for s in uncached
            )
        else:
            seconds = self._seconds(messages, 0.0, triples)
        return Estimate("pull", messages, 0.0, triples, seconds)

    # -- the decision ---------------------------------------------------

    def decide(
        self,
        pattern: TriplePattern,
        stats: Sequence[EndpointStats],
        bindings: int,
        bound_positions: int,
        branch: int = 0,
        ship_filters: int = 0,
        bound_filters: int = 0,
        parallel: bool = False,
    ) -> Decision:
        """Choose the cheapest feasible alternative for one conjunct.

        ``ship_filters`` / ``bound_filters`` count the FILTER
        expressions that would be pushed into the respective sub-query
        (ship sees only the pattern's variables; bound also sees every
        already-bound one) — each discounts the transfer estimate by
        :data:`FILTER_SELECTIVITY`.  ``parallel`` switches the pricing
        from busy seconds to overlap-aware makespan seconds.
        """
        estimates = [
            self.estimate_ship(stats, ship_filters, parallel),
            self.estimate_bound(
                stats, bindings, bound_positions, bound_filters, parallel
            ),
            self.estimate_pull(stats, parallel),
        ]
        return self._decision(pattern, estimates, stats, bindings, branch)

    def decide_group(
        self,
        group: Tuple[TriplePattern, ...],
        stats: Sequence[EndpointStats],
        bindings: int,
        bound_positions: int,
        branch: int = 0,
        ship_filters: int = 0,
        bound_filters: int = 0,
        parallel: bool = False,
    ) -> Decision:
        """Choose ship or bound for a fused exclusive group.

        The group executes as one endpoint-side sub-query, so only
        ship/bound apply (pulling several relations would defeat the
        fusion).  ``stats`` carries one entry — the owning endpoint —
        whose ``pattern_count`` is the group's estimated result
        cardinality (its most selective member's count).
        """
        estimates = [
            self.estimate_ship(stats, ship_filters, parallel),
            self.estimate_bound(
                stats, bindings, bound_positions, bound_filters, parallel
            ),
        ]
        decision = self._decision(group[0], estimates, stats, bindings, branch)
        decision.group = tuple(group)
        return decision

    def _decision(
        self,
        pattern: TriplePattern,
        estimates: List[Estimate],
        stats: Sequence[EndpointStats],
        bindings: int,
        branch: int,
    ) -> Decision:
        feasible = [e for e in estimates if e.feasible]
        chosen = min(feasible, key=Estimate.sort_key)
        if chosen.action in ("ship", "bound"):
            endpoints = tuple(
                s.name for s in stats if s.pattern_count > 0 and not s.down
            )
        elif chosen.action == "pull":
            endpoints = tuple(
                s.name
                for s in stats
                if not s.cached and s.relation_count > 0 and not s.down
            )
        else:  # local
            endpoints = ()
        return Decision(
            pattern=pattern,
            chosen=chosen,
            alternatives=feasible,
            endpoints=endpoints,
            bindings=bindings,
            branch=branch,
        )

    # -- conjunct ordering ----------------------------------------------

    def order_estimate(
        self,
        stats: Sequence[EndpointStats],
        bound_vars: frozenset,
        pattern: TriplePattern,
    ) -> Tuple[float, int]:
        """(estimated result size, free-variable count) for ordering.

        The exact unbound match count, discounted per pattern position
        whose variable is already bound — the same shape as the
        single-graph planner's conjunct ordering, but summed over the
        relevant endpoints.
        """
        total = float(sum(s.pattern_count for s in stats if not s.down))
        discount = 1.0
        free = 0
        for term in pattern:
            if isinstance(term, Variable):
                if term in bound_vars:
                    discount *= self.bound_selectivity
                else:
                    free += 1
        return (total / discount, free)

    def order_estimate_group(
        self,
        stats: Sequence[EndpointStats],
        bound_vars: frozenset,
        group: Sequence[TriplePattern],
    ) -> Tuple[float, int]:
        """Ordering key for a fused exclusive group.

        The group's cardinality estimate (``stats`` already carries the
        most-selective-member count), discounted once per group variable
        that is already bound, plus the count of still-free variables
        across the whole group.
        """
        total = float(sum(s.pattern_count for s in stats if not s.down))
        variables = set()
        for tp in group:
            variables.update(tp.variables())
        discount = 1.0
        free = 0
        for variable in sorted(variables, key=lambda v: v.name):
            if variable in bound_vars:
                discount *= self.bound_selectivity
            else:
                free += 1
        return (total / discount, free)


def bound_variable_positions(
    pattern: TriplePattern, bound_vars: frozenset
) -> int:
    """Pattern positions occupied by an already-bound variable."""
    return sum(
        1
        for term in pattern
        if isinstance(term, Variable) and term in bound_vars
    )


def group_bound_positions(
    group: Sequence[TriplePattern], bound_vars: frozenset
) -> int:
    """Bound positions summed across an exclusive group's members."""
    return sum(bound_variable_positions(tp, bound_vars) for tp in group)
