"""Cost model for adaptive federated query execution.

The PR-2 benchmarks showed no fixed strategy wins everywhere: bound
joins minimise messages only while intermediate binding sets stay small,
naive shipping minimises transfer when source selection leaves one peer
per pattern, and the collect baseline trades maximal bytes for minimal
messages.  This module is the per-conjunct decision procedure that
replaces the global strategy flag: given the endpoints relevant to a
conjunct, their published cardinalities
(:meth:`~repro.federation.endpoint.PeerEndpoint.count_pattern`, backed
by :meth:`repro.rdf.graph.Graph.count_ids`) and the *actual* size of the
current intermediate binding set (the executor's cardinality feedback),
it prices three physical alternatives with the network model's own
parameters and picks the cheapest:

``ship``
    Send the conjunct unbound to every relevant endpoint with matches;
    join the returned solutions locally.  One message per endpoint,
    transfer is the exact match count.

``bound``
    FedX-style bound join: ship the current bindings in batches and let
    endpoints return only extensions.  Messages grow with the binding
    count, transfer shrinks with join selectivity.

``pull``
    Transfer the conjunct's *source relation* (all triples with its
    predicate) once per endpoint into a local cache and answer this —
    and every later conjunct over the same relation — locally for free.
    One message per uncached endpoint, transfer in triples.

Estimated costs are converted to simulated seconds via the
:class:`~repro.federation.network.NetworkModel`, so the decision
optimises exactly the quantity the benchmarks report; ties break on
messages, then transfer.  Every decision carries its rejected
alternatives for ``explain``-style traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.federation.network import NetworkModel
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern

__all__ = ["CostModel", "Decision", "EndpointStats", "Estimate"]

#: Selectivity credit per pattern position occupied by an already-bound
#: variable when estimating bound-join output (mirrors the single-graph
#: planner's ``_BOUND_SELECTIVITY``).
BOUND_SELECTIVITY = 8.0

#: Estimated fraction of solutions surviving one pushed-down FILTER
#: (mirrors the single-graph planner's halving in ``FilterScan``).
#: Ship/bound sub-queries benefit; a pulled relation travels unfiltered.
FILTER_SELECTIVITY = 0.5


@dataclass(frozen=True)
class EndpointStats:
    """Published statistics of one relevant endpoint for one conjunct.

    Attributes:
        name: the endpoint (peer) name.
        pattern_count: exact matches of the unbound conjunct there.
        relation_count: size of the conjunct's source relation there.
        cached: True when the executor already pulled that relation.
    """

    name: str
    pattern_count: int
    relation_count: int
    cached: bool = False


@dataclass(frozen=True)
class Estimate:
    """Priced outcome of one physical alternative for one conjunct.

    Attributes:
        action: ``"ship"``, ``"bound"``, ``"pull"`` or ``"local"``.
        messages: estimated round trips.
        solutions: estimated solution mappings transferred.
        triples: estimated triples transferred (pull only).
        seconds: the network model's simulated seconds for the above.
        feasible: False when the alternative cannot run here (e.g. a
            bound join with no prior bindings).
    """

    action: str
    messages: int
    solutions: float
    triples: int
    seconds: float
    feasible: bool = True

    def sort_key(self) -> Tuple[float, int, float, str]:
        return (
            self.seconds,
            self.messages,
            self.solutions + self.triples,
            self.action,
        )


@dataclass
class Decision:
    """The chosen alternative for one conjunct, with its audit trail.

    Attributes:
        pattern: the conjunct decided on.
        chosen: the winning estimate.
        alternatives: every feasible estimate considered (winner
            included), for ``explain`` traces.
        endpoints: names of the endpoints the action will contact.
        bindings: size of the intermediate binding set at decision time
            (the cardinality feedback input).
        branch: index of the conjunctive branch this conjunct belongs to.
    """

    pattern: TriplePattern
    chosen: Estimate
    alternatives: List[Estimate] = field(default_factory=list)
    endpoints: Tuple[str, ...] = ()
    bindings: int = 0
    branch: int = 0

    @property
    def action(self) -> str:
        return self.chosen.action

    def describe(self) -> str:
        """One-line trace entry: action, targets, estimates, rejects."""
        targets = ",".join(self.endpoints) or "-"
        parts = [
            f"{self.action:<5} {self.pattern.n3()} -> {targets}",
            f"[n={self.bindings} est msgs={self.chosen.messages} "
            f"sols={self.chosen.solutions:.0f} "
            f"triples={self.chosen.triples} "
            f"{self.chosen.seconds * 1000:.1f}ms]",
        ]
        rejected = [
            f"{e.action}={e.seconds * 1000:.1f}ms"
            for e in self.alternatives
            if e.action != self.action
        ]
        if rejected:
            parts.append("(rejected " + ", ".join(rejected) + ")")
        return " ".join(parts)


class CostModel:
    """Prices the physical alternatives of one conjunct.

    Args:
        network: the network model whose latency/transfer parameters
            convert message and volume estimates into simulated seconds.
        batch_size: bound-join batch size (bindings per message).
        bound_selectivity: per-bound-position discount applied when
            estimating bound-join output size.
    """

    def __init__(
        self,
        network: NetworkModel,
        batch_size: int,
        bound_selectivity: float = BOUND_SELECTIVITY,
    ) -> None:
        self.network = network
        self.batch_size = batch_size
        self.bound_selectivity = bound_selectivity

    # -- pricing --------------------------------------------------------

    def _seconds(
        self, messages: int, solutions: float, triples: int
    ) -> float:
        net = self.network
        return (
            messages * net.latency_seconds
            + solutions * net.per_solution_seconds
            + triples * net.per_triple_seconds
        )

    def estimate_ship(
        self, stats: Sequence[EndpointStats], pushed_filters: int = 0
    ) -> Estimate:
        active = [s for s in stats if s.pattern_count > 0]
        messages = len(active)
        solutions = float(sum(s.pattern_count for s in active))
        solutions *= FILTER_SELECTIVITY**pushed_filters
        return Estimate(
            "ship",
            messages,
            solutions,
            0,
            self._seconds(messages, solutions, 0),
        )

    def estimate_bound(
        self,
        stats: Sequence[EndpointStats],
        bindings: int,
        bound_positions: int,
        pushed_filters: int = 0,
    ) -> Estimate:
        """Price a bound join of ``bindings`` rows against the conjunct.

        ``bound_positions`` counts pattern positions holding an
        already-bound variable; each divides the per-binding match
        estimate by the selectivity credit.  Infeasible without prior
        bindings or without a join variable (it would degenerate into
        shipping the cross product).
        """
        active = [s for s in stats if s.pattern_count > 0]
        if bindings < 1 or bound_positions < 1:
            return Estimate("bound", 0, 0.0, 0, math.inf, feasible=False)
        batches = math.ceil(bindings / self.batch_size)
        messages = batches * len(active)
        discount = self.bound_selectivity**bound_positions
        solutions = 0.0
        for s in active:
            per_binding = s.pattern_count / discount
            solutions += min(
                bindings * per_binding, float(bindings * s.pattern_count)
            )
        solutions *= FILTER_SELECTIVITY**pushed_filters
        return Estimate(
            "bound",
            messages,
            solutions,
            0,
            self._seconds(messages, solutions, 0),
        )

    def estimate_pull(self, stats: Sequence[EndpointStats]) -> Estimate:
        """Price pulling the conjunct's source relation.

        Already-cached endpoints cost nothing; when every relevant
        endpoint is cached the action degenerates to ``local`` (answer
        from the cache, zero network).
        """
        uncached = [s for s in stats if not s.cached and s.relation_count > 0]
        if not uncached:
            return Estimate("local", 0, 0.0, 0, 0.0)
        messages = len(uncached)
        triples = sum(s.relation_count for s in uncached)
        return Estimate(
            "pull",
            messages,
            0.0,
            triples,
            self._seconds(messages, 0.0, triples),
        )

    # -- the decision ---------------------------------------------------

    def decide(
        self,
        pattern: TriplePattern,
        stats: Sequence[EndpointStats],
        bindings: int,
        bound_positions: int,
        branch: int = 0,
        ship_filters: int = 0,
        bound_filters: int = 0,
    ) -> Decision:
        """Choose the cheapest feasible alternative for one conjunct.

        ``ship_filters`` / ``bound_filters`` count the FILTER
        expressions that would be pushed into the respective sub-query
        (ship sees only the pattern's variables; bound also sees every
        already-bound one) — each discounts the transfer estimate by
        :data:`FILTER_SELECTIVITY`.
        """
        estimates = [
            self.estimate_ship(stats, ship_filters),
            self.estimate_bound(
                stats, bindings, bound_positions, bound_filters
            ),
            self.estimate_pull(stats),
        ]
        feasible = [e for e in estimates if e.feasible]
        chosen = min(feasible, key=Estimate.sort_key)
        if chosen.action in ("ship", "bound"):
            endpoints = tuple(s.name for s in stats if s.pattern_count > 0)
        elif chosen.action == "pull":
            endpoints = tuple(
                s.name for s in stats if not s.cached and s.relation_count > 0
            )
        else:  # local
            endpoints = ()
        return Decision(
            pattern=pattern,
            chosen=chosen,
            alternatives=feasible,
            endpoints=endpoints,
            bindings=bindings,
            branch=branch,
        )

    # -- conjunct ordering ----------------------------------------------

    def order_estimate(
        self,
        stats: Sequence[EndpointStats],
        bound_vars: frozenset,
        pattern: TriplePattern,
    ) -> Tuple[float, int]:
        """(estimated result size, free-variable count) for ordering.

        The exact unbound match count, discounted per pattern position
        whose variable is already bound — the same shape as the
        single-graph planner's conjunct ordering, but summed over the
        relevant endpoints.
        """
        total = float(sum(s.pattern_count for s in stats))
        discount = 1.0
        free = 0
        for term in pattern:
            if isinstance(term, Variable):
                if term in bound_vars:
                    discount *= self.bound_selectivity
                else:
                    free += 1
        return (total / discount, free)


def bound_variable_positions(
    pattern: TriplePattern, bound_vars: frozenset
) -> int:
    """Pattern positions occupied by an already-bound variable."""
    return sum(
        1
        for term in pattern
        if isinstance(term, Variable) and term in bound_vars
    )
