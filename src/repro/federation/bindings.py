"""Shared ID-binding plumbing for the federated execution layer.

Every federated operator — and the remaining executor glue — speaks the
same currency: *ID bindings*, plain ``{Variable: int}`` dictionaries over
the shared term dictionary.  This module holds the helpers both the
physical-operator layer (:mod:`repro.federation.plan`) and the executor
(:mod:`repro.federation.executor`) need: canonicalisation, order-stable
deduplication, deterministic batch formation for bound joins, projection
onto a query head, domain-aware hash joins, and the compiled-FILTER
splitting/composition used by FILTER pushdown.

Nothing here touches the network or the simulation clock; these are pure
functions over binding lists, which is what makes them shareable across
the serial and runtime-backed plan interpreters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.rdf.terms import Variable
from repro.sparql.ast import FilterExpr

__all__ = [
    "CompiledFilter",
    "IDBinding",
    "apply_filters",
    "batches",
    "canonical",
    "compatible",
    "compose",
    "dedupe",
    "group_by_domain",
    "hash_join",
    "join_pairs",
    "left_join",
    "merge_compatible",
    "project",
    "sorted_bindings",
    "split_filters",
]

#: A streaming federated solution: variable -> integer term ID.
IDBinding = Dict[Variable, int]


@dataclass(frozen=True)
class CompiledFilter:
    """A branch filter compiled to an ID-level predicate.

    Attributes:
        expr: the source FILTER expression (kept for explain traces).
        variables: the variables the expression mentions; the filter is
            decidable once all of them are bound (an unbound variable
            error-collapses the comparison to false at runtime).
        accept: the compiled predicate over ID bindings.
    """

    expr: FilterExpr
    variables: FrozenSet[Variable]
    accept: Callable[[IDBinding], bool]


def canonical(binding: IDBinding) -> Tuple[Tuple[str, int], ...]:
    """Order-independent identity of one binding (sorted name/ID pairs)."""
    return tuple(sorted((v.name, tid) for v, tid in binding.items()))


def dedupe(bindings: List[IDBinding]) -> List[IDBinding]:
    """Drop duplicate bindings, keeping first occurrences in order."""
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    out: List[IDBinding] = []
    for binding in bindings:
        key = canonical(binding)
        if key not in seen:
            seen.add(key)
            out.append(binding)
    return out


def sorted_bindings(bindings: List[IDBinding]) -> List[IDBinding]:
    """Deterministic batch order, so message accounting is reproducible."""
    return sorted(bindings, key=canonical)


def batches(bindings: List[IDBinding], size: int) -> List[List[IDBinding]]:
    """Split a binding list into consecutive batches of at most ``size``."""
    return [bindings[i : i + size] for i in range(0, len(bindings), size)]


def project(
    bindings: Sequence[IDBinding], head: Tuple[Variable, ...]
) -> Set[Tuple[Optional[int], ...]]:
    """Project bindings onto the head; unbound cells become ``None``."""
    return {tuple(b.get(v) for v in head) for b in bindings}


def split_filters(
    filters: List[CompiledFilter], bound: Set[Variable]
) -> Tuple[List[CompiledFilter], List[CompiledFilter]]:
    """Partition filters into (decidable under ``bound``, the rest)."""
    ready: List[CompiledFilter] = []
    rest: List[CompiledFilter] = []
    for f in filters:
        (ready if f.variables <= bound else rest).append(f)
    return ready, rest


def apply_filters(
    bindings: List[IDBinding], filters: Sequence[CompiledFilter]
) -> List[IDBinding]:
    """Keep the bindings every compiled filter accepts."""
    if not filters:
        return bindings
    return [b for b in bindings if all(f.accept(b) for f in filters)]


def compose(
    filters: Sequence[CompiledFilter],
) -> Optional[Callable[[IDBinding], bool]]:
    """AND-compose compiled filters into one endpoint-side predicate."""
    if not filters:
        return None
    if len(filters) == 1:
        return filters[0].accept
    accepts = [f.accept for f in filters]
    return lambda binding: all(accept(binding) for accept in accepts)


def compatible(left: IDBinding, right: IDBinding) -> bool:
    """True when the two bindings agree on their shared domain."""
    for var, tid in right.items():
        bound = left.get(var)
        if bound is not None and bound != tid:
            return False
    return True


def merge_compatible(
    left: IDBinding, right: IDBinding
) -> Optional[IDBinding]:
    """Merge two bindings, or ``None`` when they conflict."""
    if not compatible(left, right):
        return None
    return {**left, **right}


def left_join(
    left: List[IDBinding],
    right: List[IDBinding],
    condition: Optional[Callable[[IDBinding], bool]] = None,
) -> List[IDBinding]:
    """SPARQL left join: extend left rows with compatible right rows.

    A left row is replaced by every compatible merge that passes
    ``condition`` (evaluated on the merged row, per the SPARQL
    ``LeftJoin`` translation) and kept unchanged when no merge
    qualifies.  Output is deduplicated keep-first.
    """
    out: List[IDBinding] = []
    for binding in left:
        extended = 0
        for opt in right:
            merged = merge_compatible(binding, opt)
            if merged is None:
                continue
            if condition is not None and not condition(merged):
                continue
            out.append(merged)
            extended += 1
        if not extended:
            out.append(binding)
    return dedupe(out)


def group_by_domain(
    bindings: List[IDBinding],
) -> Dict[FrozenSet[Variable], List[IDBinding]]:
    """Bucket bindings by their variable domain (pushdown heterogeneity)."""
    groups: Dict[FrozenSet[Variable], List[IDBinding]] = {}
    for binding in bindings:
        groups.setdefault(frozenset(binding), []).append(binding)
    return groups


def join_pairs(
    left: List[IDBinding], right: List[IDBinding]
) -> Iterator[Tuple[IDBinding, IDBinding, IDBinding]]:
    """Yield ``(left_row, right_row, merged)`` for every joining pair.

    The single domain-aware join algorithm behind both
    :func:`hash_join` and the operator layer's ``LocalHashJoin`` (which
    additionally threads request origins through the pair).  Under
    FILTER/UNION pushdown a side may mix binding *domains* (endpoints
    can return partially-bound rows), so each side is grouped by domain
    and every domain pair joins on its own shared-variable set.  Domain
    pairs with no shared variables are a genuine cross product
    (disconnected patterns).
    """
    if not left or not right:
        return
    right_groups = group_by_domain(right)
    for left_domain, left_rows in group_by_domain(left).items():
        for right_domain, right_rows in right_groups.items():
            shared = sorted(left_domain & right_domain, key=lambda v: v.name)
            if not shared:
                for lhs in left_rows:
                    for rhs in right_rows:
                        yield lhs, rhs, {**lhs, **rhs}
                continue
            buckets: Dict[Tuple[int, ...], List[IDBinding]] = {}
            for binding in right_rows:
                key = tuple(binding[v] for v in shared)
                buckets.setdefault(key, []).append(binding)
            for binding in left_rows:
                key = tuple(binding[v] for v in shared)
                for match in buckets.get(key, ()):
                    yield binding, match, {**binding, **match}


def hash_join(
    left: List[IDBinding], right: List[IDBinding]
) -> List[IDBinding]:
    """Join two binding lists on their per-pair shared variables."""
    return [merged for _, _, merged in join_pairs(left, right)]
