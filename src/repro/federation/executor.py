"""Distributed conjunctive-query execution over an RPS.

Implements the execution-strategy half of the paper's prototype sketch:
a conjunctive query (a :class:`~repro.gpq.query.GraphPatternQuery`, or
SPARQL text whose WHERE clause is a pure BGP) is answered from the
*stored databases* of the peers, with every simulated network exchange
charged to a :class:`~repro.federation.network.NetworkModel`.

Three strategies, chosen per call:

``naive``
    Per-pattern shipping: every triple pattern is sent, unbound, to
    every peer; all matching solutions travel back and the join runs
    entirely at the caller.  Messages are ``patterns x peers`` and the
    transfer volume is the sum of all per-pattern match counts.

``bound``
    FedX-style bound joins.  Source selection is schema-based and free
    (peer schemas are part of the RPS triple, i.e. global knowledge),
    patterns are ordered by a (relevant-sources, free-variables)
    heuristic, and after the first pattern each subsequent one is sent
    *bound* by batches of the current partial solutions — one message
    per batch per relevant peer.  Empty intermediate results
    short-circuit the remaining patterns.

``collect``
    The centralised baseline: dump every peer's database (one transfer
    each), union locally, evaluate locally.  Few messages, maximal
    triple transfer.

All strategies compute the same answer set — ``Q*_D`` over the union of
the peer databases — which the benchmark suite and tests assert against
the single-graph evaluator.  Joining happens on dictionary IDs, which
requires all peer graphs to share one term dictionary (the library
default); a mixed system raises :class:`~repro.errors.FederationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import FederationError
from repro.federation.endpoint import PeerEndpoint
from repro.federation.network import NetworkModel, NetworkStats
from repro.gpq.evaluation import evaluate_query_star
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.peers.system import RPS
from repro.sparql.bridge import sparql_to_gpq

__all__ = [
    "STRATEGIES",
    "FederatedExecutor",
    "FederationResult",
    "execute_federated",
]

_IDBinding = Dict[Variable, int]

#: Strategy names accepted by :meth:`FederatedExecutor.execute`.
STRATEGIES: Tuple[str, ...] = ("naive", "bound", "collect")

#: Default bound-join batch size (FedX ships 15-20 bindings per request;
#: a larger block keeps message counts low on the bench workloads while
#: still exercising multi-batch paths at scale).
DEFAULT_BATCH_SIZE = 64


@dataclass
class FederationResult:
    """Outcome of one federated execution.

    Attributes:
        strategy: which strategy produced it.
        rows: the answer set under the blank-keeping ``Q*`` semantics.
        stats: accumulated network statistics for this execution only.
    """

    strategy: str
    rows: Set[Tuple[Term, ...]]
    stats: NetworkStats

    def __len__(self) -> int:
        return len(self.rows)


class FederatedExecutor:
    """Runs conjunctive queries over the peers of one RPS.

    Args:
        system: the peer system; each peer's graph becomes an endpoint.
        network: the cost model (defaults to WAN-ish parameters).
        batch_size: bound-join batch size (bindings per message).

    Raises:
        FederationError: if the peer graphs do not share one term
            dictionary (ID-level joins would be meaningless), or the
            system has no peers.
    """

    def __init__(
        self,
        system: RPS,
        network: Optional[NetworkModel] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if not system.peers:
            raise FederationError("cannot federate over an empty peer system")
        if batch_size < 1:
            raise FederationError(f"batch_size must be >= 1, got {batch_size}")
        self.system = system
        self.network = network if network is not None else NetworkModel()
        self.batch_size = batch_size
        names = system.peer_names()
        self.endpoints: List[PeerEndpoint] = [
            PeerEndpoint(name, system.peers[name].graph) for name in names
        ]
        dictionaries = {id(ep.graph.dictionary) for ep in self.endpoints}
        if len(dictionaries) > 1:
            raise FederationError(
                "federated execution joins on term-dictionary IDs; all peer "
                "graphs must share one dictionary"
            )
        self.dictionary = self.endpoints[0].graph.dictionary

    # -- public API -----------------------------------------------------

    def execute(
        self,
        query: Union[str, GraphPatternQuery],
        strategy: str = "bound",
        nsm: Optional[NamespaceManager] = None,
    ) -> FederationResult:
        """Run one conjunctive query under the given strategy."""
        gpq = sparql_to_gpq(query, nsm) if isinstance(query, str) else query
        conjuncts = gpq.pattern.conjuncts()
        stats = NetworkStats()
        if strategy == "naive":
            bindings = self._run_naive(conjuncts, stats)
        elif strategy == "bound":
            bindings = self._run_bound(conjuncts, stats)
        elif strategy == "collect":
            rows = self._run_collect(gpq, stats)
            return FederationResult("collect", rows, stats)
        else:
            raise FederationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        decode = self.dictionary.decode
        rows = {
            tuple(decode(binding[v]) for v in gpq.head) for binding in bindings
        }
        return FederationResult(strategy, rows, stats)

    def run_all_strategies(
        self,
        query: Union[str, GraphPatternQuery],
        nsm: Optional[NamespaceManager] = None,
    ) -> Dict[str, FederationResult]:
        """Run every strategy and assert they agree on the answer set."""
        results = {
            strategy: self.execute(query, strategy, nsm)
            for strategy in STRATEGIES
        }
        reference = results[STRATEGIES[0]].rows
        for strategy, result in results.items():
            if result.rows != reference:
                raise FederationError(
                    f"strategy {strategy!r} disagrees: "
                    f"{len(result.rows)} vs {len(reference)} answers"
                )
        return results

    # -- naive per-pattern shipping -------------------------------------

    def _run_naive(
        self, conjuncts: Sequence[TriplePattern], stats: NetworkStats
    ) -> List[_IDBinding]:
        per_pattern: List[List[_IDBinding]] = []
        for tp in conjuncts:
            matches: List[_IDBinding] = []
            for endpoint in self.endpoints:
                solutions = endpoint.pattern_solutions(tp)
                self.network.charge_query(stats, endpoint.name, len(solutions))
                matches.extend(solutions)
            per_pattern.append(_dedupe(matches))
        bindings: List[_IDBinding] = [{}]
        for matches in per_pattern:
            bindings = _hash_join(bindings, matches)
            if not bindings:
                # The join is already empty, but shipping has happened:
                # naive sends every pattern regardless of partial results.
                return []
        return bindings

    # -- FedX-style bound joins -----------------------------------------

    def _relevant(self, tp: TriplePattern) -> List[PeerEndpoint]:
        out = [
            ep
            for ep in self.endpoints
            if ep.can_answer(tp, self.system.peers[ep.name].schema)
        ]
        return out

    def _order_conjuncts(
        self, conjuncts: Sequence[TriplePattern]
    ) -> List[TriplePattern]:
        """Greedy order: fewest free variables, then fewest sources."""
        remaining = list(enumerate(conjuncts))
        ordered: List[TriplePattern] = []
        bound: Set[Variable] = set()
        while remaining:
            def cost(pair: Tuple[int, TriplePattern]) -> Tuple[int, int, int]:
                index, tp = pair
                free = sum(
                    1
                    for term in tp
                    if isinstance(term, Variable) and term not in bound
                )
                return (free, len(self._relevant(tp)), index)

            best = min(remaining, key=cost)
            remaining.remove(best)
            ordered.append(best[1])
            bound.update(best[1].variables())
        return ordered

    def _run_bound(
        self, conjuncts: Sequence[TriplePattern], stats: NetworkStats
    ) -> List[_IDBinding]:
        bindings: List[_IDBinding] = [{}]
        for position, tp in enumerate(self._order_conjuncts(conjuncts)):
            relevant = self._relevant(tp)
            results: List[_IDBinding] = []
            if position == 0:
                for endpoint in relevant:
                    solutions = endpoint.pattern_solutions(tp)
                    self.network.charge_query(
                        stats, endpoint.name, len(solutions)
                    )
                    results.extend(solutions)
            else:
                ordered = _sorted_bindings(bindings)
                for batch in _batches(ordered, self.batch_size):
                    for endpoint in relevant:
                        solutions = endpoint.bound_solutions(tp, batch)
                        self.network.charge_query(
                            stats, endpoint.name, len(solutions)
                        )
                        results.extend(solutions)
            bindings = _dedupe(results)
            if not bindings:
                return []
        return bindings

    # -- centralised collect baseline -----------------------------------

    def _run_collect(
        self, gpq: GraphPatternQuery, stats: NetworkStats
    ) -> Set[Tuple[Term, ...]]:
        union = Graph(name="collected", dictionary=self.dictionary)
        for endpoint in self.endpoints:
            self.network.charge_dump(stats, endpoint.name, len(endpoint.graph))
            union.add_all(endpoint.graph)
        return evaluate_query_star(union, gpq)


def execute_federated(
    system: RPS,
    query: Union[str, GraphPatternQuery],
    strategy: str = "bound",
    network: Optional[NetworkModel] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    nsm: Optional[NamespaceManager] = None,
) -> FederationResult:
    """One-shot convenience wrapper around :class:`FederatedExecutor`."""
    executor = FederatedExecutor(system, network, batch_size)
    return executor.execute(query, strategy, nsm)


# ---------------------------------------------------------------------------
# ID-binding plumbing
# ---------------------------------------------------------------------------


def _canonical(binding: _IDBinding) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((v.name, tid) for v, tid in binding.items()))


def _dedupe(bindings: List[_IDBinding]) -> List[_IDBinding]:
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    out: List[_IDBinding] = []
    for binding in bindings:
        key = _canonical(binding)
        if key not in seen:
            seen.add(key)
            out.append(binding)
    return out


def _sorted_bindings(bindings: List[_IDBinding]) -> List[_IDBinding]:
    """Deterministic batch order, so message accounting is reproducible."""
    return sorted(bindings, key=_canonical)


def _batches(bindings: List[_IDBinding], size: int) -> List[List[_IDBinding]]:
    return [bindings[i : i + size] for i in range(0, len(bindings), size)]


def _hash_join(
    left: List[_IDBinding], right: List[_IDBinding]
) -> List[_IDBinding]:
    """Join two homogeneous binding lists on their shared variables.

    Both sides come from conjunct evaluation, so every binding on a side
    has the same domain; the join keys on the domain intersection.
    """
    if not left or not right:
        return []
    shared = sorted(
        set(left[0].keys()) & set(right[0].keys()), key=lambda v: v.name
    )
    if not shared:
        return [{**lhs, **rhs} for lhs in left for rhs in right]
    buckets: Dict[Tuple[int, ...], List[_IDBinding]] = {}
    for binding in right:
        key = tuple(binding[v] for v in shared)
        buckets.setdefault(key, []).append(binding)
    out: List[_IDBinding] = []
    for binding in left:
        key = tuple(binding[v] for v in shared)
        for match in buckets.get(key, ()):
            out.append({**binding, **match})
    return out
