"""Distributed SPARQL execution over an RPS.

Implements the execution-strategy half of the paper's prototype sketch:
a query — a :class:`~repro.gpq.query.GraphPatternQuery`, or SPARQL text
in the BGP + UNION + FILTER fragment — is answered from the *stored
databases* of the peers, with every simulated network exchange charged
to a :class:`~repro.federation.network.NetworkModel`.

Queries are normalised (:func:`repro.sparql.bridge.sparql_to_branches`)
into a union of conjunctive branches.  UNION branches become independent
per-endpoint sub-query pipelines; FILTER expressions are compiled once
through the single-graph planner's machinery
(:func:`repro.sparql.plan.compile_filter`) and pushed into the deepest
sub-query where they are decidable, so rejected rows never travel.

Five strategies, chosen per call:

``adaptive`` (default)
    Per-conjunct decisions from the cost model
    (:class:`~repro.federation.cost.CostModel`): each conjunct is
    *shipped* unbound, *bound-joined* against the current bindings, or
    its source relation is *pulled* into a local cache, whichever the
    endpoint cardinalities and the actual intermediate binding count
    (cardinality feedback) price cheapest.  Conjunct order is chosen
    dynamically the same way.

``parallel``
    The adaptive pipeline rebased onto the discrete-event runtime
    (:mod:`repro.runtime`): per-endpoint sub-queries and bound-join
    batch waves fan out concurrently onto per-endpoint channels, UNION
    branches overlap, and cost decisions are priced in *makespan*
    (overlap-aware elapsed seconds) instead of summed busy seconds.
    Conjuncts relevant to exactly one endpoint are fused into
    FedX-style *exclusive groups* — a single endpoint-side sub-query
    whose join runs at the endpoint, so only joined solutions travel.
    ``NetworkStats.elapsed_seconds`` becomes the simulated makespan
    while ``busy_seconds`` keeps the serial total.

``naive``
    Per-pattern shipping: every triple pattern is sent, unbound, to
    every peer; all matching solutions travel back and the join runs
    entirely at the caller.

``bound``
    FedX-style bound joins.  Source selection is schema-based and free,
    patterns are ordered by a (free-variables, relevant-sources)
    heuristic, and after the first pattern each subsequent one is sent
    *bound* by batches of the current partial solutions.

``collect``
    The centralised baseline: dump every peer's database (one transfer
    each), union locally, evaluate locally.

All strategies compute the same answer set — the projection of the
query over the union of the peer databases, equal to the single-graph
planner's — which the benchmark suite and tests assert.  Joining
happens on dictionary IDs, which requires all peer graphs to share one
term dictionary (the library default); a mixed system raises
:class:`~repro.errors.FederationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import FederationError
from repro.federation.cost import (
    CostModel,
    Decision,
    EndpointStats,
    bound_variable_positions,
    group_bound_positions,
)
from repro.federation.endpoint import PeerEndpoint
from repro.federation.network import NetworkModel, NetworkStats
from repro.federation.statistics import StatisticsCatalog
from repro.gpq.evaluation import compile_conjunct, extend_id_bindings
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.peers.system import RPS
from repro.runtime.channel import ChannelStats
from repro.runtime.scheduler import (
    DEFAULT_CONCURRENCY,
    OverlapScheduler,
    RequestHandle,
)
from repro.sparql.ast import AskQuery, FilterExpr, SelectQuery
from repro.sparql.bridge import ConjunctiveBranch, sparql_to_branches
from repro.sparql.plan import compile_filter

__all__ = [
    "ADAPTIVE",
    "FIXED_STRATEGIES",
    "PARALLEL",
    "STRATEGIES",
    "FederatedExecutor",
    "FederationResult",
    "execute_federated",
]

_IDBinding = Dict[Variable, int]
_Query = Union[str, GraphPatternQuery, SelectQuery, AskQuery]

#: The adaptive (cost-model-driven) strategy name.
ADAPTIVE = "adaptive"

#: The overlap-aware parallel strategy name (adaptive decisions priced
#: in makespan, executed on the discrete-event runtime with exclusive
#: groups).
PARALLEL = "parallel"

#: The three fixed baselines kept for comparison.
FIXED_STRATEGIES: Tuple[str, ...] = ("naive", "bound", "collect")

#: Strategy names accepted by :meth:`FederatedExecutor.execute`.
STRATEGIES: Tuple[str, ...] = (ADAPTIVE, PARALLEL) + FIXED_STRATEGIES

#: Default bound-join batch size (FedX ships 15-20 bindings per request;
#: a larger block keeps message counts low on the bench workloads while
#: still exercising multi-batch paths at scale).
DEFAULT_BATCH_SIZE = 64


@dataclass(frozen=True)
class _CompiledFilter:
    """A branch filter compiled to an ID-level predicate."""

    expr: FilterExpr
    variables: FrozenSet[Variable]
    accept: Callable[[_IDBinding], bool]


@dataclass(frozen=True)
class _Unit:
    """One schedulable step of the parallel pipeline.

    Either a single conjunct, or a FedX-style *exclusive group*: every
    conjunct relevant to exactly one endpoint, fused so the endpoint
    joins them locally in one round trip.

    Attributes:
        index: position of the unit's first pattern in the branch (the
            deterministic ordering tie-break).
        patterns: the member conjuncts (one for a plain unit).
        endpoints: the relevant endpoints (exactly one for a group).
        exclusive: True for a fused group.
    """

    index: int
    patterns: Tuple[TriplePattern, ...]
    endpoints: Tuple[PeerEndpoint, ...]
    exclusive: bool

    def variables(self) -> FrozenSet[Variable]:
        out: Set[Variable] = set()
        for tp in self.patterns:
            out.update(tp.variables())
        return frozenset(out)


@dataclass
class FederationResult:
    """Outcome of one federated execution.

    Attributes:
        strategy: which strategy produced it.
        rows: the answer set (projected rows; a cell is ``None`` when a
            UNION branch leaves the head variable unbound).
        stats: accumulated network statistics for this execution only.
        decisions: the cost model's per-conjunct decisions (adaptive
            and parallel strategies only) — the ``explain`` trace
            material.
        channels: per-endpoint service statistics of the runtime replay
            (parallel strategy only).
    """

    strategy: str
    rows: Set[Tuple[Optional[Term], ...]]
    stats: NetworkStats
    decisions: Tuple[Decision, ...] = ()
    channels: Dict[str, ChannelStats] = dataclass_field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)


class _RelationCache:
    """Source relations pulled so far, shared across one execution.

    A pull lands ID triples in one local graph; ``(endpoint, relation)``
    keys remember what has been paid for, so repeated conjuncts over the
    same relation (and later branches of a UNION) answer locally for
    free.  A full dump (``None`` key) subsumes every relation of that
    endpoint.
    """

    def __init__(self, dictionary) -> None:
        self.graph = Graph(name="pulled", dictionary=dictionary)
        self._pulled: Dict[str, Set[Optional[int]]] = {}

    def has(self, endpoint: str, key: Optional[int]) -> bool:
        keys = self._pulled.get(endpoint)
        if not keys:
            return False
        return key in keys or None in keys

    def add(self, endpoint: str, key: Optional[int], ids, dictionary) -> None:
        # The source dictionary travels with the IDs so a foreign-
        # dictionary endpoint fails loudly instead of caching garbage.
        self._pulled.setdefault(endpoint, set()).add(key)
        self.graph.add_id_triples(ids, dictionary)


class FederatedExecutor:
    """Runs queries over the peers of one RPS.

    Args:
        system: the peer system; each peer's graph becomes an endpoint.
        network: the cost model (defaults to WAN-ish parameters).
        batch_size: bound-join batch size (bindings per message).
        concurrency: per-endpoint channel concurrency of the parallel
            mode's runtime (also assumed by its makespan pricing).
        max_in_flight: per-endpoint outstanding-request window of the
            parallel runtime (``None`` = unbounded).
        stats_ttl: cardinality-statistics lifetime in executions;
            ``None`` (default) reads live statistics for free, any
            integer activates the TTL catalog whose refreshes are
            charged as real messages
            (:class:`~repro.federation.statistics.StatisticsCatalog`).

    Raises:
        FederationError: if the peer graphs do not share one term
            dictionary (ID-level joins would be meaningless), or the
            system has no peers.
    """

    def __init__(
        self,
        system: RPS,
        network: Optional[NetworkModel] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        concurrency: int = DEFAULT_CONCURRENCY,
        max_in_flight: Optional[int] = None,
        stats_ttl: Optional[int] = None,
    ) -> None:
        if not system.peers:
            raise FederationError("cannot federate over an empty peer system")
        if batch_size < 1:
            raise FederationError(f"batch_size must be >= 1, got {batch_size}")
        if concurrency < 1:
            raise FederationError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        if max_in_flight is not None and max_in_flight < concurrency:
            raise FederationError(
                f"max_in_flight ({max_in_flight}) must be >= concurrency "
                f"({concurrency}); a smaller window wastes service lanes"
            )
        self.system = system
        self.network = network if network is not None else NetworkModel()
        self.batch_size = batch_size
        self.concurrency = concurrency
        self.max_in_flight = max_in_flight
        names = system.peer_names()
        self.endpoints: List[PeerEndpoint] = [
            PeerEndpoint(name, system.peers[name].graph) for name in names
        ]
        dictionaries = {id(ep.graph.dictionary) for ep in self.endpoints}
        if len(dictionaries) > 1:
            raise FederationError(
                "federated execution joins on term-dictionary IDs; all peer "
                "graphs must share one dictionary"
            )
        self.dictionary = self.endpoints[0].graph.dictionary
        self.cost_model = CostModel(
            self.network, batch_size, concurrency=concurrency
        )
        self.catalog = StatisticsCatalog(self.network, stats_ttl)

    # -- public API -----------------------------------------------------

    def execute(
        self,
        query: _Query,
        strategy: str = ADAPTIVE,
        nsm: Optional[NamespaceManager] = None,
    ) -> FederationResult:
        """Run one query under the given strategy."""
        if strategy not in STRATEGIES:
            raise FederationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        head, branches = self._normalize(query, nsm)
        stats = NetworkStats()
        self.catalog.begin_execution(stats)
        decisions: List[Decision] = []
        channels: Dict[str, ChannelStats] = {}
        id_rows: Set[Tuple[Optional[int], ...]] = set()
        if strategy == "collect":
            union = self._collect_union(stats)
            for branch in branches:
                bindings = self._evaluate_branch_local(union, branch)
                id_rows |= _project(bindings, head)
        else:
            scheduler: Optional[OverlapScheduler] = None
            if strategy == PARALLEL:
                scheduler = OverlapScheduler(
                    concurrency=self.concurrency,
                    max_in_flight=self.max_in_flight,
                )
            cache = _RelationCache(self.dictionary)
            for index, branch in enumerate(branches):
                bindings = self._run_branch(
                    branch, strategy, stats, cache, decisions, index, scheduler
                )
                id_rows |= _project(bindings, head)
            if scheduler is not None:
                # Branch pipelines and fan-outs overlapped on the
                # runtime; the replayed makespan is the execution's
                # wall-clock-equivalent time (appended after any serial
                # planning-time charges such as statistics refreshes).
                stats.elapsed_seconds += scheduler.makespan()
                channels = scheduler.channel_stats()
        decode = self.dictionary.decode
        rows = {
            tuple(None if tid is None else decode(tid) for tid in row)
            for row in id_rows
        }
        return FederationResult(
            strategy, rows, stats, tuple(decisions), channels
        )

    def run_all_strategies(
        self,
        query: _Query,
        nsm: Optional[NamespaceManager] = None,
    ) -> Dict[str, FederationResult]:
        """Run every strategy (adaptive, parallel, and the fixed
        baselines), asserting they agree on the answer set."""
        results = {
            strategy: self.execute(query, strategy, nsm)
            for strategy in STRATEGIES
        }
        reference = results[STRATEGIES[0]].rows
        for strategy, result in results.items():
            if result.rows != reference:
                raise FederationError(
                    f"strategy {strategy!r} disagrees: "
                    f"{len(result.rows)} vs {len(reference)} answers"
                )
        return results

    def explain(
        self,
        query: _Query,
        nsm: Optional[NamespaceManager] = None,
        strategy: str = ADAPTIVE,
    ) -> str:
        """Human-readable trace of a cost-model-driven plan's decisions.

        Executes the query under ``strategy`` (``adaptive`` by default,
        ``parallel`` also carries decisions) and renders one line per
        conjunct or exclusive group: the chosen action, its target
        endpoints, the cost model's estimates and the rejected
        alternatives.
        """
        if strategy not in (ADAPTIVE, PARALLEL):
            raise FederationError(
                f"explain needs a decision-tracing strategy "
                f"({ADAPTIVE!r} or {PARALLEL!r}), got {strategy!r}"
            )
        result = self.execute(query, strategy, nsm)
        stats = result.stats
        lines = [
            f"{strategy}: {len(result.rows)} rows, "
            f"messages={stats.messages} "
            f"solutions={stats.solutions_transferred} "
            f"triples={stats.triples_transferred} "
            f"busy={stats.busy_seconds:.3f}s "
            f"elapsed={stats.elapsed_seconds:.3f}s"
        ]
        for decision in result.decisions:
            lines.append(f"  [branch {decision.branch}] {decision.describe()}")
        return "\n".join(lines)

    # -- query normalisation --------------------------------------------

    def _normalize(
        self, query: _Query, nsm: Optional[NamespaceManager]
    ) -> Tuple[Tuple[Variable, ...], List[ConjunctiveBranch]]:
        if isinstance(query, GraphPatternQuery):
            return query.head, [ConjunctiveBranch(tuple(query.conjuncts()))]
        return sparql_to_branches(query, nsm)

    def _compile_filters(
        self, filters: Sequence[FilterExpr]
    ) -> List[_CompiledFilter]:
        sentinels: Dict[Term, int] = {}
        graph = self.endpoints[0].graph  # dictionary access only
        return [
            _CompiledFilter(
                expr,
                frozenset(expr.variables()),
                compile_filter(graph, expr, sentinels),
            )
            for expr in filters
        ]

    # -- branch pipelines -----------------------------------------------

    def _run_branch(
        self,
        branch: ConjunctiveBranch,
        strategy: str,
        stats: NetworkStats,
        cache: _RelationCache,
        decisions: List[Decision],
        branch_index: int,
        scheduler: Optional[OverlapScheduler] = None,
    ) -> List[_IDBinding]:
        filters = self._compile_filters(branch.filters)
        if not branch.patterns:
            return _apply_filters([{}], filters)
        patterns = list(branch.patterns)
        if strategy == "naive":
            return self._branch_naive(patterns, filters, stats)
        if strategy == "bound":
            return self._branch_bound(patterns, filters, stats)
        if strategy == PARALLEL:
            assert scheduler is not None
            return self._branch_parallel(
                patterns,
                filters,
                stats,
                cache,
                decisions,
                branch_index,
                scheduler,
            )
        return self._branch_adaptive(
            patterns, filters, stats, cache, decisions, branch_index
        )

    def _branch_naive(
        self,
        patterns: List[TriplePattern],
        filters: List[_CompiledFilter],
        stats: NetworkStats,
    ) -> List[_IDBinding]:
        remaining = list(filters)
        per_pattern: List[List[_IDBinding]] = []
        for tp in patterns:
            push, remaining = _split_filters(remaining, tp.variables())
            accept = _compose(push)
            matches: List[_IDBinding] = []
            for endpoint in self.endpoints:
                solutions = endpoint.pattern_solutions(tp, accept)
                self.network.charge_query(stats, endpoint.name, len(solutions))
                matches.extend(solutions)
            per_pattern.append(_dedupe(matches))
        bindings: List[_IDBinding] = [{}]
        bound: Set[Variable] = set()
        for tp, matches in zip(patterns, per_pattern):
            bindings = _hash_join(bindings, matches)
            bound.update(tp.variables())
            ready, remaining = _split_filters(remaining, bound)
            bindings = _apply_filters(bindings, ready)
            if not bindings:
                # The join is already empty, but shipping has happened:
                # naive sends every pattern regardless of partial results.
                return []
        return _apply_filters(bindings, remaining)

    def _branch_bound(
        self,
        patterns: List[TriplePattern],
        filters: List[_CompiledFilter],
        stats: NetworkStats,
    ) -> List[_IDBinding]:
        remaining = list(filters)
        bindings: List[_IDBinding] = [{}]
        bound: Set[Variable] = set()
        for position, tp in enumerate(self._order_conjuncts(patterns)):
            relevant = self._relevant(tp)
            # At position 0 ``bound`` is empty, so the sub-query scope is
            # just the pattern's own variables; later it includes every
            # coordinator-bound variable the batch carries along.
            scope = bound | tp.variables()
            push, remaining = _split_filters(remaining, scope)
            accept = _compose(push)
            results: List[_IDBinding] = []
            if position == 0:
                for endpoint in relevant:
                    solutions = endpoint.pattern_solutions(tp, accept)
                    self.network.charge_query(
                        stats, endpoint.name, len(solutions)
                    )
                    results.extend(solutions)
            else:
                ordered = _sorted_bindings(bindings)
                for batch in _batches(ordered, self.batch_size):
                    for endpoint in relevant:
                        solutions = endpoint.bound_solutions(tp, batch, accept)
                        self.network.charge_query(
                            stats, endpoint.name, len(solutions)
                        )
                        results.extend(solutions)
            bindings = _dedupe(results)
            bound.update(tp.variables())
            ready, remaining = _split_filters(remaining, bound)
            bindings = _apply_filters(bindings, ready)
            if not bindings:
                return []
        return _apply_filters(bindings, remaining)

    # -- the adaptive pipeline ------------------------------------------

    def _branch_adaptive(
        self,
        patterns: List[TriplePattern],
        filters: List[_CompiledFilter],
        stats: NetworkStats,
        cache: _RelationCache,
        decisions: List[Decision],
        branch_index: int,
    ) -> List[_IDBinding]:
        remaining_filters = list(filters)
        remaining = list(enumerate(patterns))
        relevant: Dict[int, List[PeerEndpoint]] = {
            i: self._relevant(tp) for i, tp in remaining
        }
        counts: Dict[int, List[Tuple[PeerEndpoint, int, int]]] = {
            i: [
                (
                    ep,
                    self.catalog.pattern_count(ep, tp),
                    self.catalog.relation_count(ep, tp),
                )
                for ep in relevant[i]
            ]
            for i, tp in remaining
        }
        bindings: List[_IDBinding] = [{}]
        bound: FrozenSet[Variable] = frozenset()
        # Memoised per conjunct: endpoint counts are static for the whole
        # execution and only the `cached` flags can change — and only
        # after a pull, which invalidates the memo wholesale.  Keeps the
        # dynamic ordering's min() key O(1) per (round, conjunct).
        stats_memo: Dict[int, List[EndpointStats]] = {}

        def endpoint_stats(i: int, tp: TriplePattern) -> List[EndpointStats]:
            memoised = stats_memo.get(i)
            if memoised is None:
                memoised = [
                    EndpointStats(
                        ep.name,
                        pattern_count,
                        relation_count,
                        cache.has(ep.name, ep.relation_key(tp)),
                    )
                    for ep, pattern_count, relation_count in counts[i]
                ]
                stats_memo[i] = memoised
            return memoised

        while remaining:
            def order_key(pair: Tuple[int, TriplePattern]):
                i, tp = pair
                estimate, free = self.cost_model.order_estimate(
                    endpoint_stats(i, tp), bound, tp
                )
                return (estimate, free, i)

            best = min(remaining, key=order_key)
            remaining.remove(best)
            index, tp = best
            stats_now = endpoint_stats(index, tp)
            bound_after_vars = bound | tp.variables()
            ship_filters = sum(
                1 for f in remaining_filters if f.variables <= tp.variables()
            )
            bound_filters = sum(
                1 for f in remaining_filters if f.variables <= bound_after_vars
            )
            decision = self.cost_model.decide(
                tp,
                stats_now,
                len(bindings),
                bound_variable_positions(tp, bound),
                branch_index,
                ship_filters=ship_filters,
                bound_filters=bound_filters,
            )
            decisions.append(decision)
            bound_after = bound_after_vars
            active = self._active_endpoints(relevant[index], stats_now)
            if decision.action == "ship":
                push, remaining_filters = _split_filters(
                    remaining_filters, tp.variables()
                )
                accept = _compose(push)
                matches: List[_IDBinding] = []
                for endpoint in active:
                    solutions = endpoint.pattern_solutions(tp, accept)
                    self.network.charge_query(
                        stats, endpoint.name, len(solutions)
                    )
                    matches.extend(solutions)
                bindings = _hash_join(bindings, _dedupe(matches))
            elif decision.action == "bound":
                push, remaining_filters = _split_filters(
                    remaining_filters, bound_after
                )
                accept = _compose(push)
                results: List[_IDBinding] = []
                ordered = _sorted_bindings(bindings)
                for batch in _batches(ordered, self.batch_size):
                    for endpoint in active:
                        solutions = endpoint.bound_solutions(tp, batch, accept)
                        self.network.charge_query(
                            stats, endpoint.name, len(solutions)
                        )
                        results.extend(solutions)
                bindings = _dedupe(results)
            else:  # pull / local: answer from the relation cache
                if decision.action == "pull":
                    for endpoint in relevant[index]:
                        key = endpoint.relation_key(tp)
                        if cache.has(endpoint.name, key):
                            continue
                        ids = endpoint.relation_ids(tp)
                        if not ids:
                            continue
                        self.network.charge_dump(
                            stats, endpoint.name, len(ids)
                        )
                        cache.add(
                            endpoint.name,
                            key,
                            ids,
                            endpoint.graph.dictionary,
                        )
                    stats_memo.clear()  # cached flags changed
                bindings = self._extend_local(cache.graph, tp, bindings)
            bound = bound_after
            ready, remaining_filters = _split_filters(remaining_filters, bound)
            bindings = _apply_filters(bindings, ready)
            if not bindings:
                return []
        return _apply_filters(bindings, remaining_filters)

    # -- the parallel (overlap-aware) pipeline --------------------------

    def _exclusive_units(
        self, patterns: Sequence[TriplePattern]
    ) -> List[_Unit]:
        """Partition a branch into exclusive groups and plain units.

        Conjuncts whose schema-based source selection names exactly one
        endpoint are grouped by that endpoint; owners with two or more
        such conjuncts yield one fused group unit (FedX exclusive
        group).  Everything else stays a single-pattern unit.  Units
        keep branch order via their first pattern's index.
        """
        relevant = [tuple(self._relevant(tp)) for tp in patterns]
        owners: Dict[str, List[int]] = {}
        for i, endpoints in enumerate(relevant):
            if len(endpoints) == 1:
                owners.setdefault(endpoints[0].name, []).append(i)
        fused: Set[int] = set()
        units: List[_Unit] = []
        for name in sorted(owners):
            indices = owners[name]
            if len(indices) < 2:
                continue
            units.append(
                _Unit(
                    index=min(indices),
                    patterns=tuple(patterns[i] for i in indices),
                    endpoints=relevant[indices[0]],
                    exclusive=True,
                )
            )
            fused.update(indices)
        for i, tp in enumerate(patterns):
            if i not in fused:
                units.append(
                    _Unit(
                        index=i,
                        patterns=(tp,),
                        endpoints=relevant[i],
                        exclusive=False,
                    )
                )
        units.sort(key=lambda unit: unit.index)
        return units

    def _unit_counts(
        self, unit: _Unit
    ) -> List[Tuple[PeerEndpoint, int, int]]:
        """Catalog cardinalities for one unit, read once per execution.

        A group's result cardinality is estimated from its most
        selective member (pulling is not offered for groups, so the
        relation count is zero).
        """
        counts: List[Tuple[PeerEndpoint, int, int]] = []
        for ep in unit.endpoints:
            if unit.exclusive:
                pattern_count = min(
                    self.catalog.pattern_count(ep, tp) for tp in unit.patterns
                )
                relation_count = 0
            else:
                tp = unit.patterns[0]
                pattern_count = self.catalog.pattern_count(ep, tp)
                relation_count = self.catalog.relation_count(ep, tp)
            counts.append((ep, pattern_count, relation_count))
        return counts

    def _active_endpoints(
        self,
        endpoints: Sequence[PeerEndpoint],
        stats_now: Sequence[EndpointStats],
    ) -> List[PeerEndpoint]:
        """Endpoints a ship/bound action actually contacts.

        The one pruning rule shared by the serial and parallel
        pipelines: with live statistics an exact zero count prunes the
        endpoint; stale statistics must contact every relevant endpoint
        (a stale zero may hide fresh matches, and correctness never
        depends on the catalog's age).  ``stats_now`` is aligned with
        ``endpoints``.
        """
        if not self.catalog.live:
            return list(endpoints)
        return [
            ep
            for ep, stat in zip(endpoints, stats_now)
            if stat.pattern_count > 0
        ]

    def _branch_parallel(
        self,
        patterns: List[TriplePattern],
        filters: List[_CompiledFilter],
        stats: NetworkStats,
        cache: _RelationCache,
        decisions: List[Decision],
        branch_index: int,
        scheduler: OverlapScheduler,
    ) -> List[_IDBinding]:
        """The adaptive pipeline on the discrete-event runtime.

        Structure mirrors :meth:`_branch_adaptive`, with three changes:
        conjuncts fuse into exclusive groups, decisions are priced in
        makespan (``parallel=True``), and every simulated request is
        recorded on the scheduler — per-endpoint fan-outs and batch
        waves of one step share a dependency *wave* (they overlap),
        while consecutive steps chain through it (a step's requests
        wait for the wave that produced its input bindings).  UNION
        branches call this method with the same scheduler and no shared
        handles, so whole branches overlap too.
        """
        remaining_filters = list(filters)
        remaining = self._exclusive_units(patterns)
        counts = {unit.index: self._unit_counts(unit) for unit in remaining}
        bindings: List[_IDBinding] = [{}]
        bound: FrozenSet[Variable] = frozenset()
        wave: Tuple[RequestHandle, ...] = ()
        # Counts are read once above; only the `cached` flags can change
        # — and only after a pull, which clears this memo wholesale
        # (mirrors _branch_adaptive's stats_memo).
        stats_memo: Dict[int, List[EndpointStats]] = {}

        def unit_stats(unit: _Unit) -> List[EndpointStats]:
            memoised = stats_memo.get(unit.index)
            if memoised is None:
                if unit.exclusive:
                    memoised = [
                        EndpointStats(ep.name, pc, rc)
                        for ep, pc, rc in counts[unit.index]
                    ]
                else:
                    tp = unit.patterns[0]
                    memoised = [
                        EndpointStats(
                            ep.name,
                            pc,
                            rc,
                            cache.has(ep.name, ep.relation_key(tp)),
                        )
                        for ep, pc, rc in counts[unit.index]
                    ]
                stats_memo[unit.index] = memoised
            return memoised

        def order_key(unit: _Unit):
            if unit.exclusive:
                estimate, free = self.cost_model.order_estimate_group(
                    unit_stats(unit), bound, unit.patterns
                )
            else:
                estimate, free = self.cost_model.order_estimate(
                    unit_stats(unit), bound, unit.patterns[0]
                )
            return (estimate, free, unit.index)

        while remaining:
            best = min(remaining, key=order_key)
            remaining.remove(best)
            stats_now = unit_stats(best)
            unit_vars = best.variables()
            bound_after = bound | unit_vars
            ship_filters = sum(
                1 for f in remaining_filters if f.variables <= unit_vars
            )
            bound_filters = sum(
                1 for f in remaining_filters if f.variables <= bound_after
            )
            if best.exclusive:
                decision = self.cost_model.decide_group(
                    best.patterns,
                    stats_now,
                    len(bindings),
                    group_bound_positions(best.patterns, bound),
                    branch_index,
                    ship_filters=ship_filters,
                    bound_filters=bound_filters,
                    parallel=True,
                )
            else:
                decision = self.cost_model.decide(
                    best.patterns[0],
                    stats_now,
                    len(bindings),
                    bound_variable_positions(best.patterns[0], bound),
                    branch_index,
                    ship_filters=ship_filters,
                    bound_filters=bound_filters,
                    parallel=True,
                )
            decisions.append(decision)
            targets = self._active_endpoints(best.endpoints, stats_now)
            if decision.action == "ship":
                push, remaining_filters = _split_filters(
                    remaining_filters, unit_vars
                )
                accept = _compose(push)
                matches: List[_IDBinding] = []
                handles: List[RequestHandle] = []
                for ep in targets:
                    if best.exclusive:
                        solutions = ep.group_solutions(best.patterns, accept)
                    else:
                        solutions = ep.pattern_solutions(
                            best.patterns[0], accept
                        )
                    seconds = self.network.charge_query(
                        stats, ep.name, len(solutions), serial=False
                    )
                    handles.append(
                        scheduler.submit(
                            ep.name,
                            seconds,
                            after=wave,
                            label=f"b{branch_index} ship",
                        )
                    )
                    matches.extend(solutions)
                bindings = _hash_join(bindings, _dedupe(matches))
                wave = tuple(handles)
            elif decision.action == "bound":
                push, remaining_filters = _split_filters(
                    remaining_filters, bound_after
                )
                accept = _compose(push)
                results: List[_IDBinding] = []
                handles = []
                ordered = _sorted_bindings(bindings)
                for batch in _batches(ordered, self.batch_size):
                    for ep in targets:
                        if best.exclusive:
                            solutions = ep.bound_group_solutions(
                                best.patterns, batch, accept
                            )
                        else:
                            solutions = ep.bound_solutions(
                                best.patterns[0], batch, accept
                            )
                        seconds = self.network.charge_query(
                            stats, ep.name, len(solutions), serial=False
                        )
                        handles.append(
                            scheduler.submit(
                                ep.name,
                                seconds,
                                after=wave,
                                label=f"b{branch_index} bound",
                            )
                        )
                        results.extend(solutions)
                bindings = _dedupe(results)
                wave = tuple(handles)
            else:  # pull / local: answer from the relation cache
                tp = best.patterns[0]
                if decision.action == "pull":
                    handles = []
                    for ep in best.endpoints:
                        key = ep.relation_key(tp)
                        if cache.has(ep.name, key):
                            continue
                        ids = ep.relation_ids(tp)
                        if not ids:
                            continue
                        seconds = self.network.charge_dump(
                            stats, ep.name, len(ids), serial=False
                        )
                        handles.append(
                            scheduler.submit(
                                ep.name,
                                seconds,
                                after=wave,
                                label=f"b{branch_index} pull",
                            )
                        )
                        cache.add(ep.name, key, ids, ep.graph.dictionary)
                    stats_memo.clear()  # cached flags changed
                    if handles:
                        wave = tuple(handles)
                bindings = self._extend_local(cache.graph, tp, bindings)
            bound = bound_after
            ready, remaining_filters = _split_filters(
                remaining_filters, bound
            )
            bindings = _apply_filters(bindings, ready)
            if not bindings:
                return []
        return _apply_filters(bindings, remaining_filters)

    # -- fixed-strategy helpers -----------------------------------------

    def _relevant(self, tp: TriplePattern) -> List[PeerEndpoint]:
        return [
            ep
            for ep in self.endpoints
            if ep.can_answer(tp, self.system.peers[ep.name].schema)
        ]

    def _order_conjuncts(
        self, conjuncts: Sequence[TriplePattern]
    ) -> List[TriplePattern]:
        """Greedy order: fewest free variables, then fewest sources.

        Relevance (a schema check against every endpoint) is computed
        once per conjunct up front, not re-derived inside the ``min``
        key on every round.
        """
        source_counts = [len(self._relevant(tp)) for tp in conjuncts]
        remaining = list(enumerate(conjuncts))
        ordered: List[TriplePattern] = []
        bound: Set[Variable] = set()
        while remaining:
            def cost(pair: Tuple[int, TriplePattern]) -> Tuple[int, int, int]:
                index, tp = pair
                free = sum(
                    1
                    for term in tp
                    if isinstance(term, Variable) and term not in bound
                )
                return (free, source_counts[index], index)

            best = min(remaining, key=cost)
            remaining.remove(best)
            ordered.append(best[1])
            bound.update(best[1].variables())
        return ordered

    # -- centralised collect baseline -----------------------------------

    def _collect_union(self, stats: NetworkStats) -> Graph:
        union = Graph(name="collected", dictionary=self.dictionary)
        for endpoint in self.endpoints:
            self.network.charge_dump(stats, endpoint.name, len(endpoint.graph))
            union.add_all(endpoint.graph)
        return union

    def _evaluate_branch_local(
        self, graph: Graph, branch: ConjunctiveBranch
    ) -> List[_IDBinding]:
        filters = self._compile_filters(branch.filters)
        bindings: List[_IDBinding] = [{}]
        bound: Set[Variable] = set()
        for tp in branch.patterns:
            bindings = self._extend_local(graph, tp, bindings)
            bound.update(tp.variables())
            ready, filters = _split_filters(filters, bound)
            bindings = _apply_filters(bindings, ready)
            if not bindings:
                return []
        return _apply_filters(bindings, filters)

    @staticmethod
    def _extend_local(
        graph: Graph, tp: TriplePattern, bindings: List[_IDBinding]
    ) -> List[_IDBinding]:
        slots = compile_conjunct(graph, tp)
        if slots is None:
            return []
        out: List[_IDBinding] = []
        for partial in bindings:
            out.extend(extend_id_bindings(graph, slots, partial))
        return _dedupe(out)


def execute_federated(
    system: RPS,
    query: _Query,
    strategy: str = ADAPTIVE,
    network: Optional[NetworkModel] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    nsm: Optional[NamespaceManager] = None,
) -> FederationResult:
    """One-shot convenience wrapper around :class:`FederatedExecutor`."""
    executor = FederatedExecutor(system, network, batch_size)
    return executor.execute(query, strategy, nsm)


# ---------------------------------------------------------------------------
# ID-binding plumbing
# ---------------------------------------------------------------------------


def _canonical(binding: _IDBinding) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((v.name, tid) for v, tid in binding.items()))


def _dedupe(bindings: List[_IDBinding]) -> List[_IDBinding]:
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    out: List[_IDBinding] = []
    for binding in bindings:
        key = _canonical(binding)
        if key not in seen:
            seen.add(key)
            out.append(binding)
    return out


def _sorted_bindings(bindings: List[_IDBinding]) -> List[_IDBinding]:
    """Deterministic batch order, so message accounting is reproducible."""
    return sorted(bindings, key=_canonical)


def _batches(bindings: List[_IDBinding], size: int) -> List[List[_IDBinding]]:
    return [bindings[i : i + size] for i in range(0, len(bindings), size)]


def _project(
    bindings: List[_IDBinding], head: Tuple[Variable, ...]
) -> Set[Tuple[Optional[int], ...]]:
    """Project bindings onto the head; unbound cells become ``None``."""
    return {tuple(b.get(v) for v in head) for b in bindings}


def _split_filters(
    filters: List[_CompiledFilter], bound: Set[Variable]
) -> Tuple[List[_CompiledFilter], List[_CompiledFilter]]:
    """Partition filters into (decidable under ``bound``, the rest)."""
    ready: List[_CompiledFilter] = []
    rest: List[_CompiledFilter] = []
    for f in filters:
        (ready if f.variables <= bound else rest).append(f)
    return ready, rest


def _apply_filters(
    bindings: List[_IDBinding], filters: Sequence[_CompiledFilter]
) -> List[_IDBinding]:
    if not filters:
        return bindings
    return [b for b in bindings if all(f.accept(b) for f in filters)]


def _compose(
    filters: Sequence[_CompiledFilter],
) -> Optional[Callable[[_IDBinding], bool]]:
    """AND-compose compiled filters into one endpoint-side predicate."""
    if not filters:
        return None
    if len(filters) == 1:
        return filters[0].accept
    accepts = [f.accept for f in filters]
    return lambda binding: all(accept(binding) for accept in accepts)


def _group_by_domain(
    bindings: List[_IDBinding],
) -> Dict[FrozenSet[Variable], List[_IDBinding]]:
    groups: Dict[FrozenSet[Variable], List[_IDBinding]] = {}
    for binding in bindings:
        groups.setdefault(frozenset(binding), []).append(binding)
    return groups


def _hash_join(
    left: List[_IDBinding], right: List[_IDBinding]
) -> List[_IDBinding]:
    """Join two binding lists on their per-pair shared variables.

    Under FILTER/UNION pushdown a side may mix binding *domains*
    (endpoints can return partially-bound rows), so each side is grouped
    by domain and every domain pair joins on its own shared-variable
    set.  The previous implementation read the shared variables off the
    first row of each side, which silently degenerated to a cross
    product for heterogeneous inputs.  Domain pairs with no shared
    variables are a genuine cross product (disconnected patterns).
    """
    if not left or not right:
        return []
    out: List[_IDBinding] = []
    right_groups = _group_by_domain(right)
    for left_domain, left_rows in _group_by_domain(left).items():
        for right_domain, right_rows in right_groups.items():
            shared = sorted(left_domain & right_domain, key=lambda v: v.name)
            if not shared:
                out.extend(
                    {**lhs, **rhs} for lhs in left_rows for rhs in right_rows
                )
                continue
            buckets: Dict[Tuple[int, ...], List[_IDBinding]] = {}
            for binding in right_rows:
                key = tuple(binding[v] for v in shared)
                buckets.setdefault(key, []).append(binding)
            for binding in left_rows:
                key = tuple(binding[v] for v in shared)
                for match in buckets.get(key, ()):
                    out.append({**binding, **match})
    return out
