"""Distributed SPARQL execution over an RPS.

Implements the execution-strategy half of the paper's prototype sketch:
a query — a :class:`~repro.gpq.query.GraphPatternQuery`, or SPARQL text
in the BGP + UNION + FILTER + OPTIONAL fragment — is answered from the
*stored databases* of the peers, with every simulated network exchange
charged to a :class:`~repro.federation.network.NetworkModel`.

Queries are normalised (:func:`repro.sparql.bridge.sparql_to_branches`)
into a union of conjunctive branches (each optionally carrying
``OPTIONAL`` left-join blocks).  UNION branches become independent
per-endpoint sub-query pipelines; FILTER expressions are compiled once
through the single-graph planner's machinery
(:func:`repro.sparql.plan.compile_filter`) and pushed into the deepest
sub-query where they are decidable, so rejected rows never travel.

Execution itself lives in the physical-operator layer
(:mod:`repro.federation.plan`): each strategy is a *plan-construction
policy* over the same streaming operators (``RemoteScan``,
``BoundJoinStream``, ``ExclusiveGroupScan``, ``PullScan``,
``LocalHashJoin``, ``LeftJoin``, ``Filter``, ``Union``, ``Project``),
and one memoised interpreter walks the plan in either *serial* mode or
*runtime* mode (requests recorded on the discrete-event scheduler and
replayed into a makespan).  Five strategies, chosen per call:

``adaptive`` (default)
    Per-conjunct decisions from the cost model
    (:class:`~repro.federation.cost.CostModel`): each conjunct is
    *shipped* unbound, *bound-joined* against the current bindings, or
    its source relation is *pulled* into a local cache, whichever the
    endpoint cardinalities and the actual intermediate binding count
    (cardinality feedback) price cheapest.  The plan tree grows one
    decision at a time.

``parallel``
    The adaptive construction on the runtime interpreter: per-endpoint
    sub-queries, bound-join batches and UNION branches fan out onto
    per-endpoint channels, decisions are priced in *makespan* terms,
    and conjuncts relevant to exactly one endpoint fuse into FedX-style
    *exclusive groups*.  With ``streaming=True`` (the default) bound
    joins are **pipelined**: each batch's sub-query is emitted as soon
    as the batch fills, depending only on the upstream requests that
    produced its rows, instead of synchronising on PR 4's wave
    barriers.  ``NetworkStats.elapsed_seconds`` becomes the simulated
    makespan while ``busy_seconds`` keeps the serial total.

``naive``
    Per-pattern shipping: every triple pattern is sent, unbound, to
    every peer; all matching solutions travel back and the join runs
    entirely at the caller.

``bound``
    FedX-style bound joins.  Source selection is schema-based and free,
    patterns are ordered by a (free-variables, relevant-sources)
    heuristic, and after the first pattern each subsequent one is sent
    *bound* by batches of the current partial solutions.

``collect``
    The centralised baseline: dump every peer's database (one transfer
    each), union locally, evaluate locally.

Solution modifiers (``ORDER BY``/``LIMIT``/``OFFSET``) and ``ASK``
execute *federally*: an unordered ``LIMIT`` caps the interpreter's
demand so upstream operators stop issuing sub-queries once the window
can be filled, ``ORDER BY`` runs a :class:`~repro.federation.plan.
TopKNode` over full solutions (a non-projected sort variable is fine),
and ``ASK`` is the degenerate ``LIMIT 1`` — the first surviving row
short-circuits the whole pipeline.

All strategies compute the same answer set — the projection of the
query over the union of the peer databases, equal to the single-graph
planner's — which the benchmark suite and tests assert.  (For an
*unordered* ``LIMIT``/``OFFSET`` the answer is any legal subset of the
right cardinality; strategies may pick different rows.)  Joining
happens on dictionary IDs, which requires all peer graphs to share one
term dictionary (the library default); a mixed system raises
:class:`~repro.errors.FederationError`.

**Fault tolerance (PR 7).**  An executor built with a ``fault_model``
(:class:`~repro.federation.faults.FaultModel`) injects deterministic
failures into every endpoint contact: each :meth:`execute` draws a
fresh per-execution :class:`~repro.federation.faults.FaultSession`, so
repeated runs — and the strategies of one
:meth:`run_all_strategies` comparison — see identical fault schedules.
Recovery (retry with exponential backoff per the ``retry_policy``,
failover to configured ``replicas``) is priced through the network
model and, in parallel mode, the event kernel.  When an endpoint and
all its replicas exhaust their budgets the execution *degrades*: the
endpoint's contribution is dropped and the result carries a
:class:`~repro.federation.faults.PartialAnswer` naming every dropped
contribution — full answers when faults are recoverable, flagged
partial answers otherwise, never a silently wrong answer set.
:meth:`run_all_strategies` exempts flagged partial results from its
agreement check (different request sequences can exhaust different
endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import EndpointUnavailableError, FederationError
from repro.federation.bindings import (
    CompiledFilter,
    IDBinding,
    apply_filters,
    dedupe,
    left_join,
    project,
    split_filters,
)
from repro.federation.cost import CostModel, Decision
from repro.federation.endpoint import PeerEndpoint
from repro.federation.faults import (
    FaultModel,
    FaultSession,
    PartialAnswer,
    RetryPolicy,
    Unreachable,
)
from repro.federation.network import NetworkModel, NetworkStats
from repro.federation.plan import (
    ExecContext,
    FederatedPlanner,
    FedOp,
    FilterNode,
    InputNode,
    LeftJoinNode,
    PlanInterpreter,
    ProjectDedupe,
    RelationCache,
    SliceNode,
    TopKNode,
    UnionNode,
    explain_fed_plan,
    issue_request,
)
from repro.federation.statistics import StatisticsCatalog
from repro.gpq.evaluation import compile_conjunct
from repro.gpq.query import GraphPatternQuery
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.peers.system import RPS
from repro.runtime.channel import ChannelStats
from repro.runtime.control import (
    AimdController,
    AimdSettings,
    WindowAdjustment,
)
from repro.runtime.multi import QueryScheduler
from repro.runtime.scheduler import DEFAULT_CONCURRENCY, OverlapScheduler
from repro.sparql.ast import AskQuery, FilterExpr, OrderCondition, SelectQuery
from repro.sparql.batch import extend_bindings_batch
from repro.sparql.bridge import ConjunctiveBranch, sparql_to_branches
from repro.sparql.cache import PlanCache, nsm_fingerprint
from repro.sparql.parser import parse_query
from repro.sparql.plan import OrderKey, compile_filter

__all__ = [
    "ADAPTIVE",
    "FIXED_STRATEGIES",
    "PARALLEL",
    "STRATEGIES",
    "ConcurrentResult",
    "FederatedExecutor",
    "FederationResult",
    "PreparedQuery",
    "TenantOutcome",
    "execute_federated",
]

_Query = Union[str, GraphPatternQuery, SelectQuery, AskQuery]

#: The adaptive (cost-model-driven) strategy name.
ADAPTIVE = "adaptive"

#: The overlap-aware parallel strategy name (adaptive decisions priced
#: in makespan, executed on the discrete-event runtime with exclusive
#: groups and pipelined bound joins).
PARALLEL = "parallel"

#: The three fixed baselines kept for comparison.
FIXED_STRATEGIES: Tuple[str, ...] = ("naive", "bound", "collect")

#: Strategy names accepted by :meth:`FederatedExecutor.execute`.
STRATEGIES: Tuple[str, ...] = (ADAPTIVE, PARALLEL) + FIXED_STRATEGIES

#: Default bound-join batch size (FedX ships 15-20 bindings per request;
#: a larger block keeps message counts low on the bench workloads while
#: still exercising multi-batch paths at scale).
DEFAULT_BATCH_SIZE = 64


@dataclass(frozen=True)
class PreparedOptional:
    """One OPTIONAL block with its filters compiled to ID predicates."""

    branches: Tuple[Tuple[Tuple[TriplePattern, ...],
                          Tuple[CompiledFilter, ...]], ...]
    condition: Optional[Callable[[IDBinding], bool]] = None


@dataclass(frozen=True)
class PreparedBranch:
    """One conjunctive branch with compiled filters and optionals."""

    patterns: Tuple[TriplePattern, ...]
    filters: Tuple[CompiledFilter, ...]
    optionals: Tuple[PreparedOptional, ...] = ()


@dataclass(frozen=True)
class PreparedQuery:
    """A query normalised and filter-compiled exactly once.

    :meth:`FederatedExecutor.prepare` produces one; every strategy of a
    :meth:`FederatedExecutor.run_all_strategies` comparison then reuses
    it, so the four strategies don't each re-run
    :func:`~repro.sparql.bridge.sparql_to_branches` and filter
    compilation on the same query text.

    Solution modifiers ride along: ``order``/``limit``/``offset`` are
    read off the AST (the branches describe the WHERE clause only) and
    ``ask`` marks an ASK query, executed federally as ``LIMIT 1`` over
    the empty projection.
    """

    head: Tuple[Variable, ...]
    branches: Tuple[PreparedBranch, ...]
    order: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    ask: bool = False


@dataclass
class FederationResult:
    """Outcome of one federated execution.

    Attributes:
        strategy: which strategy produced it.
        rows: the answer set (projected rows; a cell is ``None`` when a
            branch leaves the head variable unbound — UNION branches
            with unequal domains and unmatched OPTIONAL extensions).
        stats: accumulated network statistics for this execution only.
        decisions: the cost model's per-conjunct decisions (adaptive
            and parallel strategies only) — the ``explain`` trace
            material.
        channels: per-endpoint service statistics of the runtime replay
            (parallel strategy only).
        plans: the executed operator tree, one root per execution
            (empty for the collect baseline, which has no federated
            plan).
        partial: ``None`` for a complete answer; a
            :class:`~repro.federation.faults.PartialAnswer` naming
            every dropped contribution when the execution degraded
            (an endpoint and all its replicas exhausted their retry
            budgets).
    """

    strategy: str
    rows: Set[Tuple[Optional[Term], ...]]
    stats: NetworkStats
    decisions: Tuple[Decision, ...] = ()
    channels: Dict[str, ChannelStats] = dataclass_field(default_factory=dict)
    plans: Tuple[FedOp, ...] = ()
    partial: Optional[PartialAnswer] = None

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class TenantOutcome:
    """One tenant's slice of a multi-tenant execution.

    Attributes:
        tenant: the tenant name.
        result: the tenant's :class:`FederationResult`; its
            ``stats.elapsed_seconds`` is the tenant's completion time
            on the *shared* clock (admission wait included) and its
            ``channels`` are the tenant's share of each contended
            channel's statistics.
        makespan: the tenant's completion time in simulated seconds.
        admission_wait: seconds the query waited for an active slot
            under the ``max_active`` admission cap.
    """

    tenant: str
    result: FederationResult
    makespan: float
    admission_wait: float


@dataclass
class ConcurrentResult:
    """Outcome of one multi-tenant concurrent execution.

    Attributes:
        outcomes: per-tenant outcomes in registration (admission)
            order.
        makespan: completion time of the last tenant — the batch's
            overall elapsed simulated seconds.
        channels: per-endpoint aggregate service statistics under
            contention.
        discipline: the backlog admission policy that ran
            (``"fifo"``/``"wrr"``).
        max_active: the admission cap (``None`` = unlimited).
        active_peak: maximum concurrently active queries observed.
        batch_size: the bound-join batch size of the final planning
            round (the adaptive controller may have retuned it).
        adjustments: every AIMD window adjustment of the final round,
            in virtual-clock order (empty without a controller).
        rounds: planning rounds executed (1 unless adaptive control
            re-planned).
    """

    outcomes: Tuple[TenantOutcome, ...]
    makespan: float
    channels: Dict[str, ChannelStats]
    discipline: str
    max_active: Optional[int] = None
    active_peak: int = 0
    batch_size: int = 0
    adjustments: Tuple[WindowAdjustment, ...] = ()
    rounds: int = 1

    def __len__(self) -> int:
        return len(self.outcomes)

    def tenant(self, name: str) -> TenantOutcome:
        """Look one tenant's outcome up by name."""
        for outcome in self.outcomes:
            if outcome.tenant == name:
                return outcome
        raise FederationError(f"unknown tenant {name!r}")

    def makespans(self) -> Tuple[float, ...]:
        """Per-tenant completion times in registration order."""
        return tuple(outcome.makespan for outcome in self.outcomes)

    def p95_makespan(self) -> float:
        """95th-percentile per-tenant completion time (nearest-rank)."""
        spans = sorted(self.makespans())
        if not spans:
            return 0.0
        rank = -(-len(spans) * 95 // 100)  # ceil(0.95 n), nearest-rank
        return spans[max(0, rank - 1)]

    def throughput(self) -> float:
        """Completed queries per simulated second."""
        if self.makespan <= 0.0:
            return 0.0
        return len(self.outcomes) / self.makespan

    def fairness_ratio(self) -> float:
        """Max/min per-tenant makespan — 1.0 is perfectly fair."""
        spans = [span for span in self.makespans() if span > 0.0]
        if not spans:
            return 1.0
        return max(spans) / min(spans)

    def metrics(self) -> MetricsRegistry:
        """Channel, admission and controller counters as a registry.

        Mirrors :meth:`FederatedExecutor.metrics` for the concurrent
        path: per-channel service/admission counters, the admission
        cap's observed peak, and the AIMD controller's adjustment
        counts, all behind one
        :class:`~repro.obs.metrics.MetricsRegistry` whose ``render()``
        is the bench/CI export format.
        """
        registry = MetricsRegistry()
        registry.set("admission.active_peak", self.active_peak)
        registry.set(
            "admission.max_active",
            self.max_active if self.max_active is not None else 0,
        )
        registry.set("admission.queries", len(self.outcomes))
        registry.set("controller.adjustments", len(self.adjustments))
        registry.set(
            "controller.decreases",
            sum(1 for adj in self.adjustments if adj.congested),
        )
        registry.set("controller.rounds", self.rounds)
        registry.set("controller.batch_size", self.batch_size)
        for name, stats in sorted(self.channels.items()):
            prefix = f"channel.{name}"
            registry.counter(f"{prefix}.completed").inc(stats.completed)
            registry.counter(f"{prefix}.admitted").inc(stats.admitted)
            registry.counter(f"{prefix}.failed").inc(stats.failed)
            registry.set(f"{prefix}.peak_in_flight", stats.peak_in_flight)
            registry.set(f"{prefix}.peak_backlog", stats.peak_backlog)
            registry.observe(
                f"{prefix}.queueing_delay",
                stats.queueing_delay(),
                bounds=(0.01, 0.1, 1.0, 10.0),
            )
        return registry


class FederatedExecutor:
    """Runs queries over the peers of one RPS.

    Args:
        system: the peer system; each peer's graph becomes an endpoint.
        network: the cost model (defaults to WAN-ish parameters).
        batch_size: bound-join batch size (bindings per message).
        concurrency: per-endpoint channel concurrency of the parallel
            mode's runtime (also assumed by its makespan pricing).
        max_in_flight: per-endpoint outstanding-request window of the
            parallel runtime (``None`` = unbounded).
        streaming: pipelined bound-join batches in the parallel mode
            (each batch depends only on the requests that produced its
            rows); ``False`` restores PR 4's wave barriers.  Message
            counts and answers are identical either way.
        stats_ttl: cardinality-statistics lifetime in executions;
            ``None`` (default) reads live statistics for free, any
            integer activates the TTL catalog whose refreshes are
            charged as real messages
            (:class:`~repro.federation.statistics.StatisticsCatalog`).
        fault_model: deterministic fault injection configuration
            (:class:`~repro.federation.faults.FaultModel`); ``None``
            (default) keeps the request path byte-identical to the
            fault-free engine.
        retry_policy: retry/backoff/timeout parameters used when a
            fault model is attached (defaults to
            :class:`~repro.federation.faults.RetryPolicy`'s).
        replicas: replica count per endpoint name (``{"peer1": 2}``);
            replica ``i`` of ``name`` is an endpoint ``"name.r{i+1}"``
            over the same graph, contacted in order when the primary
            exhausts its retry budget.

    Raises:
        FederationError: if the peer graphs do not share one term
            dictionary (ID-level joins would be meaningless), the
            system has no peers, or ``replicas`` names an unknown
            endpoint.
    """

    def __init__(
        self,
        system: RPS,
        network: Optional[NetworkModel] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        concurrency: int = DEFAULT_CONCURRENCY,
        max_in_flight: Optional[int] = None,
        streaming: bool = True,
        stats_ttl: Optional[int] = None,
        fault_model: Optional[FaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        replicas: Optional[Dict[str, int]] = None,
    ) -> None:
        if not system.peers:
            raise FederationError("cannot federate over an empty peer system")
        if batch_size < 1:
            raise FederationError(f"batch_size must be >= 1, got {batch_size}")
        if concurrency < 1:
            raise FederationError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        if max_in_flight is not None and max_in_flight < concurrency:
            raise FederationError(
                f"max_in_flight ({max_in_flight}) must be >= concurrency "
                f"({concurrency}); a smaller window wastes service lanes"
            )
        self.system = system
        self.network = network if network is not None else NetworkModel()
        self.batch_size = batch_size
        self.concurrency = concurrency
        self.max_in_flight = max_in_flight
        self.streaming = streaming
        self.fault_model = fault_model
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        names = system.peer_names()
        replica_map = dict(replicas or {})
        unknown = sorted(set(replica_map) - set(names))
        if unknown:
            raise FederationError(
                f"replicas configured for unknown endpoint(s): {unknown}"
            )
        for name, count in replica_map.items():
            if count < 0:
                raise FederationError(
                    f"replica count must be >= 0 for {name!r}, got {count}"
                )
        self.endpoints: List[PeerEndpoint] = [
            PeerEndpoint(
                name,
                system.peers[name].graph,
                replicas=tuple(
                    PeerEndpoint(f"{name}.r{i + 1}", system.peers[name].graph)
                    for i in range(replica_map.get(name, 0))
                ),
            )
            for name in names
        ]
        dictionaries = {id(ep.graph.dictionary) for ep in self.endpoints}
        if len(dictionaries) > 1:
            raise FederationError(
                "federated execution joins on term-dictionary IDs; all peer "
                "graphs must share one dictionary"
            )
        self.dictionary = self.endpoints[0].graph.dictionary
        self.cost_model = CostModel(
            self.network, batch_size, concurrency=concurrency
        )
        self.catalog = StatisticsCatalog(self.network, stats_ttl)
        self.planner = FederatedPlanner(self)
        #: Cross-query LRU of :class:`PreparedQuery` values keyed on
        #: (text, namespace fingerprint, statistics epoch, dictionary
        #: size) — repeated traffic skips normalisation and filter
        #: compilation; a statistics refresh (or explicit
        #: ``catalog.invalidate_plans()``) strands stale entries by
        #: changing the key.
        self.plan_cache = PlanCache(capacity=128)

    # -- public API -----------------------------------------------------

    def prepare(
        self, query: _Query, nsm: Optional[NamespaceManager] = None
    ) -> PreparedQuery:
        """Normalise a query and compile its filters, once.

        The result can be passed to :meth:`execute` in place of the
        query, skipping repeated :func:`sparql_to_branches` runs and
        filter compilation — :meth:`run_all_strategies` does exactly
        that for its four executions.

        Text queries additionally go through the executor's
        cross-query :attr:`plan_cache`: identical traffic pays for
        parse, normalisation and filter compilation once per
        statistics epoch.  The dictionary size rides in the key
        because compiled filters capture term IDs — interning a
        previously-unknown constant must invalidate.
        """
        key = None
        if isinstance(query, str):
            key = (
                query,
                nsm_fingerprint(nsm),
                self.catalog.statistics_epoch,
                len(self.dictionary),
            )
            cached = self.plan_cache.get(key)
            if cached is not None:
                return cached
        head, branches, order, limit, offset, ask = self._normalize(query, nsm)
        sentinels: Dict[Term, int] = {}
        prepared = tuple(
            self._compile_branch(branch, sentinels) for branch in branches
        )
        result = PreparedQuery(head, prepared, order, limit, offset, ask)
        if key is not None:
            self.plan_cache.put(key, result)
        return result

    def execute(
        self,
        query: Union[_Query, PreparedQuery],
        strategy: str = ADAPTIVE,
        nsm: Optional[NamespaceManager] = None,
        tracer=NULL_TRACER,
        analyze: bool = False,
    ) -> FederationResult:
        """Run one (possibly pre-:meth:`prepare`-d) query under the
        given strategy.

        ``tracer`` collects structured spans: one wall span around the
        whole execution, virtual spans for every simulated request,
        fault attempt and backoff (serial interpretation) and, in
        parallel mode, the replayed per-channel service intervals.
        ``analyze`` attaches actual-counter dicts to every executed
        operator — the material :meth:`explain` renders with
        ``analyze=True``.
        """
        if strategy not in STRATEGIES:
            raise FederationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        with tracer.span(f"execute:{strategy}"):
            return self._execute(query, strategy, nsm, tracer, analyze)

    def _execute(
        self,
        query: Union[_Query, PreparedQuery],
        strategy: str,
        nsm: Optional[NamespaceManager],
        tracer,
        analyze: bool,
    ) -> FederationResult:
        if isinstance(query, PreparedQuery):
            prepared = query
        else:
            prepared = self.prepare(query, nsm)
        stats = NetworkStats()
        self.catalog.begin_execution(stats)
        decisions: List[Decision] = []
        channels: Dict[str, ChannelStats] = {}
        plans: Tuple[FedOp, ...] = ()
        id_rows: Set[Tuple[Optional[int], ...]] = set()
        # A fresh session per execution: every run (and every strategy
        # of a run_all_strategies comparison) sees the same schedule.
        session: Optional[FaultSession] = (
            self.fault_model.session() if self.fault_model is not None
            else None
        )
        unreachable: List[Unreachable] = []
        modified = bool(
            prepared.order
            or prepared.limit is not None
            or prepared.offset
            or prepared.ask
        )
        if strategy == "collect":
            union, unreachable = self._collect_union(stats, session, tracer)
            if modified:
                all_bindings: List[IDBinding] = []
                for branch in prepared.branches:
                    all_bindings.extend(
                        self._evaluate_branch_local(union, branch)
                    )
                id_rows = self._modified_id_rows(all_bindings, prepared)
            else:
                for branch in prepared.branches:
                    bindings = self._evaluate_branch_local(union, branch)
                    id_rows |= project(bindings, prepared.head)
        else:
            scheduler: Optional[OverlapScheduler] = None
            if strategy == PARALLEL:
                scheduler = OverlapScheduler(
                    concurrency=self.concurrency,
                    max_in_flight=self.max_in_flight,
                )
            id_rows, plans, unreachable = self._record(
                prepared,
                strategy,
                stats,
                scheduler,
                session,
                decisions,
                tracer=tracer,
                analyze=analyze,
            )
            if scheduler is not None:
                # Branch pipelines and fan-outs overlapped on the
                # runtime; the replayed makespan is the execution's
                # wall-clock-equivalent time (appended after any serial
                # planning-time charges such as statistics refreshes).
                stats.elapsed_seconds += scheduler.makespan()
                channels = scheduler.channel_stats()
                if tracer.enabled:
                    _emit_runtime_spans(tracer, scheduler)
        decode = self.dictionary.decode
        rows = {
            tuple(None if tid is None else decode(tid) for tid in row)
            for row in id_rows
        }
        partial = PartialAnswer(tuple(unreachable)) if unreachable else None
        return FederationResult(
            strategy,
            rows,
            stats,
            tuple(decisions),
            channels,
            plans,
            partial=partial,
        )

    def _record(
        self,
        prepared: PreparedQuery,
        strategy: str,
        stats: NetworkStats,
        scheduler,
        session: Optional[FaultSession],
        decisions: List[Decision],
        tracer=NULL_TRACER,
        analyze: bool = False,
        batch_size: Optional[int] = None,
    ) -> Tuple[
        Set[Tuple[Optional[int], ...]],
        Tuple[FedOp, ...],
        List[Unreachable],
    ]:
        """Plan and interpret one prepared query against the peers.

        The shared recording core of :meth:`_execute` (one query onto
        its private :class:`OverlapScheduler`) and
        :meth:`execute_concurrent` (N queries, each onto a tenant view
        of one shared :class:`~repro.runtime.multi.QueryScheduler`).
        Issues every simulated request against ``scheduler`` and
        returns the ID-level answer rows, the executed plan roots and
        the unreachable endpoints.  The *caller* owns makespan
        finalisation: under multi-tenancy the replay may only run after
        every tenant has recorded, so nothing here touches
        ``scheduler.makespan()``.

        ``batch_size`` overrides the executor's bound-join batch size
        for this recording only — the adaptive concurrency
        controller's between-rounds re-planning hook.
        """
        modified = bool(
            prepared.order
            or prepared.limit is not None
            or prepared.offset
            or prepared.ask
        )
        # The planning-time demand cap: an unordered LIMIT can never
        # emit more than offset+limit distinct rows, and ASK needs one.
        # ORDER BY drains fully (sorting is a pipeline breaker), so it
        # plans without a cap.  Streams are resumable — if projection
        # collapses rows, the final slice simply pulls deeper.
        demand: Optional[int] = None
        if prepared.ask:
            demand = 1
        elif not prepared.order and prepared.limit is not None:
            demand = max(1, prepared.offset + prepared.limit)
        ctx = ExecContext(
            self.network,
            stats,
            RelationCache(self.dictionary),
            scheduler,
            self.streaming,
            demand=demand,
            faults=session,
            retry=self.retry_policy,
            tracer=tracer,
            analyze=analyze,
            batch_size=batch_size,
        )
        interp = PlanInterpreter(ctx)
        roots = [
            self._run_branch(
                branch, strategy, interp, decisions, index, demand
            )
            for index, branch in enumerate(prepared.branches)
        ]
        union_node = roots[0] if len(roots) == 1 else UnionNode(roots)
        if prepared.order:
            root: FedOp = TopKNode(
                union_node,
                prepared.head,
                prepared.order,
                prepared.offset,
                prepared.limit,
                self.dictionary,
            )
        elif modified:
            root = SliceNode(
                ProjectDedupe(union_node, prepared.head),
                offset=0 if prepared.ask else prepared.offset,
                limit=1 if prepared.ask else prepared.limit,
            )
        else:
            root = ProjectDedupe(union_node, prepared.head)
        rows_out = interp.run(root)
        id_rows = project(rows_out.bindings, prepared.head)
        return id_rows, (root,), ctx.unreachable

    def run_all_strategies(
        self,
        query: _Query,
        nsm: Optional[NamespaceManager] = None,
    ) -> Dict[str, FederationResult]:
        """Run every strategy (adaptive, parallel, and the fixed
        baselines), asserting they agree on the answer set.

        The query is normalised and filter-compiled exactly once
        (:meth:`prepare`); the strategies share the prepared form.
        """
        prepared = self.prepare(query, nsm)
        results = {
            strategy: self.execute(prepared, strategy)
            for strategy in STRATEGIES
        }
        # Flagged partial results are exempt from the agreement check:
        # with a fault model attached, different strategies issue
        # different request sequences, so they can exhaust different
        # endpoints (or none).  The reference is the first *complete*
        # answer; complete answers must still all agree.
        reference: Optional[Set[Tuple[Optional[Term], ...]]] = None
        for strategy in STRATEGIES:
            if results[strategy].partial is None:
                reference = results[strategy].rows
                break
        # An unordered LIMIT/OFFSET admits *any* subset of the right
        # cardinality — strategies legitimately pick different rows, so
        # only the cardinality is comparable.  Ordered (and unmodified,
        # and ASK) queries must agree exactly.
        sliced_unordered = (
            not prepared.order
            and not prepared.ask
            and (prepared.limit is not None or prepared.offset > 0)
        )
        for strategy, result in results.items():
            if result.partial is not None or reference is None:
                continue
            if sliced_unordered:
                agree = len(result.rows) == len(reference)
            else:
                agree = result.rows == reference
            if not agree:
                raise FederationError(
                    f"strategy {strategy!r} disagrees: "
                    f"{len(result.rows)} vs {len(reference)} answers"
                )
        return results

    def execute_concurrent(
        self,
        queries: Union[
            Mapping[str, Union[_Query, PreparedQuery]],
            Iterable[Tuple[str, Union[_Query, PreparedQuery]]],
        ],
        nsm: Optional[NamespaceManager] = None,
        *,
        strategy: str = PARALLEL,
        discipline: str = "fifo",
        weights: Optional[Mapping[str, int]] = None,
        max_active: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        adaptive: bool = False,
        control: Optional[AimdSettings] = None,
        tracer=NULL_TRACER,
    ) -> ConcurrentResult:
        """Run N tenants' queries concurrently on one shared runtime.

        Every tenant's query is planned exactly as :meth:`execute`
        would plan it, but all of them record onto **one**
        :class:`~repro.runtime.multi.QueryScheduler` — one simulation
        kernel, one channel per endpoint — so the coordinators
        genuinely contend: per-endpoint queues interleave different
        tenants' requests under the executor's ``concurrency`` and
        in-flight limits, and each tenant's reported elapsed time is
        its completion time on the *shared* clock.

        Args:
            queries: tenant-name → query mapping, or ``(name, query)``
                pairs; order is the admission order.  Queries may be
                pre-:meth:`prepare`-d; otherwise each *distinct* query
                (by text, or by object identity) is prepared exactly
                once and shared across the tenants that submitted it.
            nsm: namespace manager for text queries.
            strategy: any per-request strategy — ``"parallel"``
                (default), ``"adaptive"``, ``"bound"`` or ``"naive"``;
                the physical operators record onto the shared runtime
                whatever policy built the plan.  ``"collect"`` is
                rejected: a whole-database dump has no per-request
                runtime surface to contend on.
            discipline: backlog admission policy per channel —
                ``"fifo"`` or ``"wrr"`` (weighted round-robin across
                tenants).
            weights: per-tenant weights for the ``"wrr"`` discipline
                (default 1 each; ignored by FIFO).
            max_active: admission-control cap on concurrently active
                queries (``None`` = all tenants start at once).
            max_in_flight: per-endpoint window override for this call
                (defaults to the executor's; ignored when adaptive
                control is on, which supplies its own start window).
            adaptive: attach an AIMD controller
                (:class:`~repro.runtime.control.AimdController`) that
                retunes each channel's in-flight window inside the
                replay, then re-plans the bound-join batch size
                between rounds from the observed queueing delay; the
                better round — by (p95 tenant makespan, overall
                makespan) — is returned.  Answer sets are asserted
                identical across rounds.
            control: AIMD tuning constants (implies nothing unless
                ``adaptive`` is set).
            tracer: receives one wall span for the whole call plus
                virtual spans — per-tenant lanes with their replayed
                requests, and one ``controller:`` span per window
                adjustment.

        Returns:
            A :class:`ConcurrentResult`: per-tenant
            :class:`TenantOutcome`\\ s (each wrapping a normal
            :class:`FederationResult` whose ``channels`` are the
            tenant's share of the contended channels), the overall
            makespan, aggregate channel statistics, and the adaptive
            controller's adjustment log.

        Raises:
            FederationError: on an empty tenant set, a duplicate or
                empty tenant name, or a non-runtime strategy.
        """
        if strategy not in STRATEGIES or strategy == "collect":
            raise FederationError(
                f"execute_concurrent needs a per-request strategy "
                f"(one of {tuple(s for s in STRATEGIES if s != 'collect')}),"
                f" got {strategy!r}"
            )
        if isinstance(queries, Mapping):
            items = list(queries.items())
        else:
            items = [(name, query) for name, query in queries]
        if not items:
            raise FederationError("execute_concurrent needs >= 1 tenant")
        for name, _ in items:
            if not isinstance(name, str) or not name:
                raise FederationError(
                    f"tenant names must be non-empty strings: {name!r}"
                )
        weight_of = dict(weights or {})
        # Prepare each *distinct* query once — tenants submitting the
        # same text (or the same query object) share one PreparedQuery,
        # exactly like run_all_strategies shares across strategies.
        prepared_by_key: Dict[object, PreparedQuery] = {}
        tenants: List[Tuple[str, PreparedQuery]] = []
        for name, query in items:
            if isinstance(query, PreparedQuery):
                prepared = query
            else:
                key: object = (
                    query if isinstance(query, str) else id(query)
                )
                cached = prepared_by_key.get(key)
                if cached is None:
                    cached = self.prepare(query, nsm)
                    prepared_by_key[key] = cached
                prepared = cached
            tenants.append((name, prepared))
        window = (
            max_in_flight if max_in_flight is not None
            else self.max_in_flight
        )
        with tracer.span(f"execute_concurrent:{discipline}"):
            return self._execute_concurrent_rounds(
                tenants,
                strategy,
                discipline,
                weight_of,
                max_active,
                window,
                adaptive,
                control,
                tracer,
            )

    def _execute_concurrent_rounds(
        self,
        tenants: List[Tuple[str, PreparedQuery]],
        strategy: str,
        discipline: str,
        weight_of: Dict[str, int],
        max_active: Optional[int],
        window: Optional[int],
        adaptive: bool,
        control: Optional[AimdSettings],
        tracer,
    ) -> ConcurrentResult:
        """Planning-round loop behind :meth:`execute_concurrent`.

        Round 1 records every tenant with the executor's bound-join
        batch size.  Under adaptive control the controller then reads
        the round's aggregate channel statistics and may recommend a
        different batch size (:meth:`AimdController.recommend_batch`);
        if it does, one re-planning round runs and the better round —
        ordered by (p95 tenant makespan, overall makespan) — wins.
        Answers must be byte-identical across rounds; anything else is
        a planning bug and raises.
        """
        decode = self.dictionary.decode
        batch = self.batch_size
        rounds = 0
        best: Optional[ConcurrentResult] = None
        best_key: Optional[Tuple[float, float]] = None
        best_scheduler: Optional[QueryScheduler] = None
        best_controller: Optional[AimdController] = None
        reference_rows: Optional[Dict[str, Set]] = None
        while True:
            rounds += 1
            controller = AimdController(control) if adaptive else None
            scheduler = QueryScheduler(
                concurrency=self.concurrency,
                max_in_flight=window,
                discipline=discipline,
                max_active=max_active,
                controller=controller,
            )
            recorded = []
            for name, prepared in tenants:
                recorder = scheduler.tenant(name, weight_of.get(name, 1))
                stats = NetworkStats()
                self.catalog.begin_execution(stats)
                # A fresh session per tenant per round: every round
                # (and every tenant) sees the same fault schedule.
                session: Optional[FaultSession] = (
                    self.fault_model.session()
                    if self.fault_model is not None
                    else None
                )
                decisions: List[Decision] = []
                id_rows, plans, unreachable = self._record(
                    prepared,
                    strategy,
                    stats,
                    recorder,
                    session,
                    decisions,
                    batch_size=batch,
                )
                recorded.append(
                    (name, stats, decisions, id_rows, plans, unreachable)
                )
            makespan = scheduler.run()
            outcomes: List[TenantOutcome] = []
            for name, stats, decisions, id_rows, plans, unreachable in (
                recorded
            ):
                span = scheduler.tenant_makespan(name)
                stats.elapsed_seconds += span
                rows = {
                    tuple(
                        None if tid is None else decode(tid) for tid in row
                    )
                    for row in id_rows
                }
                partial = (
                    PartialAnswer(tuple(unreachable))
                    if unreachable
                    else None
                )
                outcomes.append(
                    TenantOutcome(
                        tenant=name,
                        result=FederationResult(
                            strategy,
                            rows,
                            stats,
                            tuple(decisions),
                            scheduler.tenant_channel_stats(name),
                            plans,
                            partial=partial,
                        ),
                        makespan=span,
                        admission_wait=scheduler.admission_wait(name),
                    )
                )
            rows_by_tenant = {
                outcome.tenant: outcome.result.rows for outcome in outcomes
            }
            if reference_rows is None:
                reference_rows = rows_by_tenant
            elif rows_by_tenant != reference_rows:
                raise FederationError(
                    "adaptive re-planning changed a tenant's answer set"
                )
            candidate = ConcurrentResult(
                outcomes=tuple(outcomes),
                makespan=makespan,
                channels=scheduler.channel_stats(),
                discipline=discipline,
                max_active=max_active,
                active_peak=scheduler.active_peak,
                batch_size=batch,
                adjustments=(
                    tuple(controller.adjustments)
                    if controller is not None
                    else ()
                ),
                rounds=rounds,
            )
            key = (candidate.p95_makespan(), candidate.makespan)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
                best_scheduler, best_controller = scheduler, controller
            if controller is None or rounds >= 2:
                break
            next_batch = controller.recommend_batch(
                scheduler.channel_stats(), batch
            )
            if next_batch == batch:
                break
            batch = next_batch
        assert best is not None and best_scheduler is not None
        best.rounds = rounds
        if tracer.enabled:
            _emit_concurrent_spans(tracer, best_scheduler, best_controller)
        return best

    def metrics(self) -> MetricsRegistry:
        """The executor's cumulative counters behind one registry.

        Absorbs the previously scattered counter bags — plan-cache
        hits/misses/size and the statistics catalog's epochs and
        refresh count — into one
        :class:`~repro.obs.metrics.MetricsRegistry` snapshot; the
        ``explain`` metrics block and the bench runner's exported
        ``metrics`` section both render from it.
        """
        registry = MetricsRegistry()
        cache = self.plan_cache.stats()
        registry.counter("plan_cache.hits").inc(cache["hits"])
        registry.counter("plan_cache.misses").inc(cache["misses"])
        registry.set("plan_cache.size", cache["size"])
        registry.set("plan_cache.capacity", cache["capacity"])
        registry.set(
            "catalog.statistics_epoch", self.catalog.statistics_epoch
        )
        registry.counter("catalog.refreshes").inc(self.catalog.refreshes)
        return registry

    def explain(
        self,
        query: Union[_Query, PreparedQuery],
        nsm: Optional[NamespaceManager] = None,
        strategy: str = ADAPTIVE,
        analyze: bool = False,
    ) -> str:
        """Human-readable trace: the executed operator tree plus the
        cost model's decisions.

        Executes the query under ``strategy`` (``adaptive`` by default;
        ``parallel`` additionally annotates bound joins with their
        batch pipelining — mode and peak in-flight overlap) and renders
        the plan tree followed by one line per decision: the chosen
        action, its target endpoints, the cost model's estimates and
        the rejected alternatives.  A ``metric``-prefixed block renders
        the unified metrics registry: the executor's cumulative
        counters normally, or — under ``analyze=True`` — this run's
        network counters only, so analyzed output is a deterministic
        function of the seed.  ``analyze=True`` additionally annotates
        every operator line with its executed actuals (rows/batches
        out, build sizes, requests issued).
        """
        if strategy not in (ADAPTIVE, PARALLEL):
            raise FederationError(
                f"explain needs a decision-tracing strategy "
                f"({ADAPTIVE!r} or {PARALLEL!r}), got {strategy!r}"
            )
        result = self.execute(query, strategy, nsm, analyze=analyze)
        stats = result.stats
        lines = [
            f"{strategy}: {len(result.rows)} rows, "
            f"messages={stats.messages} "
            f"solutions={stats.solutions_transferred} "
            f"triples={stats.triples_transferred} "
            f"busy={stats.busy_seconds:.3f}s "
            f"elapsed={stats.elapsed_seconds:.3f}s",
        ]
        if analyze:
            lines.extend(_stats_registry(stats).render(prefix="metric "))
        else:
            lines.extend(self.metrics().render(prefix="metric "))
        for plan in result.plans:
            lines.append("plan:")
            rendered = explain_fed_plan(plan).split("\n")
            lines.extend(f"  {line}" for line in rendered)
        for decision in result.decisions:
            lines.append(f"  [branch {decision.branch}] {decision.describe()}")
        return "\n".join(lines)

    # -- query normalisation --------------------------------------------

    def _normalize(
        self, query: _Query, nsm: Optional[NamespaceManager]
    ) -> Tuple[
        Tuple[Variable, ...],
        List[ConjunctiveBranch],
        Tuple[OrderCondition, ...],
        Optional[int],
        int,
        bool,
    ]:
        if isinstance(query, GraphPatternQuery):
            branches = [ConjunctiveBranch(tuple(query.conjuncts()))]
            return query.head, branches, (), None, 0, False
        ast = parse_query(query, nsm) if isinstance(query, str) else query
        head, branches = sparql_to_branches(ast, nsm)
        if isinstance(ast, SelectQuery):
            return (
                head,
                branches,
                tuple(ast.order),
                ast.limit,
                ast.offset or 0,
                False,
            )
        return head, branches, (), None, 0, isinstance(ast, AskQuery)

    def _compile_branch(
        self, branch: ConjunctiveBranch, sentinels: Dict[Term, int]
    ) -> PreparedBranch:
        graph = self.endpoints[0].graph  # dictionary access only
        optionals = []
        for block in branch.optionals:
            if block.expr is not None:
                condition = compile_filter(graph, block.expr, sentinels)
            else:
                condition = None
            optionals.append(
                PreparedOptional(
                    branches=tuple(
                        (
                            opt.patterns,
                            self._compile_filters(
                                opt.filters, graph, sentinels
                            ),
                        )
                        for opt in block.branches
                    ),
                    condition=condition,
                )
            )
        return PreparedBranch(
            patterns=branch.patterns,
            filters=self._compile_filters(branch.filters, graph, sentinels),
            optionals=tuple(optionals),
        )

    @staticmethod
    def _compile_filters(
        filters: Sequence[FilterExpr], graph: Graph, sentinels: Dict[Term, int]
    ) -> Tuple[CompiledFilter, ...]:
        return tuple(
            CompiledFilter(
                expr,
                frozenset(expr.variables()),
                compile_filter(graph, expr, sentinels),
            )
            for expr in filters
        )

    # -- branch plans ----------------------------------------------------

    def _plan_required(
        self,
        patterns: Tuple[TriplePattern, ...],
        filters: List[CompiledFilter],
        strategy: str,
        interp: PlanInterpreter,
        decisions: List[Decision],
        branch_index: int,
        label: str = "",
        demand: Optional[int] = None,
    ) -> Tuple[FedOp, List[CompiledFilter]]:
        """Build (and, for the adaptive strategies, run) the plan of one
        conjunctive block under the given strategy."""
        if not patterns:
            return InputNode(), filters
        if strategy == "naive":
            return self.planner.plan_naive(patterns, filters)
        if strategy == "bound":
            return self.planner.plan_bound(patterns, filters)
        if strategy == PARALLEL:
            return self.planner.run_parallel(
                interp, patterns, filters, decisions, branch_index, label,
                demand,
            )
        return self.planner.run_adaptive(
            interp, patterns, filters, decisions, branch_index, label, demand
        )

    def _run_branch(
        self,
        branch: PreparedBranch,
        strategy: str,
        interp: PlanInterpreter,
        decisions: List[Decision],
        branch_index: int,
        demand: Optional[int] = None,
    ) -> FedOp:
        root, leftovers = self._plan_required(
            branch.patterns,
            list(branch.filters),
            strategy,
            interp,
            decisions,
            branch_index,
            demand=demand,
        )
        rows = interp.run(root, demand)
        if rows.bindings:
            for block in branch.optionals:
                if not block.branches:
                    # Every optional branch was statically false (e.g. a
                    # nested-group filter over an out-of-scope variable):
                    # the optional side is empty, the left join is the
                    # identity.
                    continue
                sub_roots = []
                for opt_patterns, opt_filters in block.branches:
                    sub_root, sub_left = self._plan_required(
                        opt_patterns,
                        list(opt_filters),
                        strategy,
                        interp,
                        decisions,
                        branch_index,
                        label=f"b{branch_index} opt",
                        demand=demand,
                    )
                    if sub_left:
                        sub_root = FilterNode(sub_root, sub_left)
                    sub_roots.append(sub_root)
                if len(sub_roots) == 1:
                    optional_root = sub_roots[0]
                else:
                    optional_root = UnionNode(sub_roots)
                root = LeftJoinNode(root, optional_root, block.condition)
                rows = interp.run(root, demand)
                if not rows.bindings:
                    break
        if leftovers:
            root = FilterNode(root, leftovers)
            interp.run(root, demand)
        return root

    # -- source selection and fixed conjunct ordering --------------------

    def _relevant(self, tp: TriplePattern) -> List[PeerEndpoint]:
        return [
            ep
            for ep in self.endpoints
            if ep.can_answer(tp, self.system.peers[ep.name].schema)
        ]

    def _order_conjuncts(
        self, conjuncts: Sequence[TriplePattern]
    ) -> List[TriplePattern]:
        """Greedy order: fewest free variables, then fewest sources.

        Relevance (a schema check against every endpoint) is computed
        once per conjunct up front, not re-derived inside the ``min``
        key on every round.
        """
        source_counts = [len(self._relevant(tp)) for tp in conjuncts]
        remaining = list(enumerate(conjuncts))
        ordered: List[TriplePattern] = []
        bound: Set[Variable] = set()
        while remaining:
            def cost(pair: Tuple[int, TriplePattern]) -> Tuple[int, int, int]:
                index, tp = pair
                free = sum(
                    1
                    for term in tp
                    if isinstance(term, Variable) and term not in bound
                )
                return (free, source_counts[index], index)

            best = min(remaining, key=cost)
            remaining.remove(best)
            ordered.append(best[1])
            bound.update(best[1].variables())
        return ordered

    # -- centralised collect baseline -----------------------------------

    def _collect_union(
        self,
        stats: NetworkStats,
        session: Optional[FaultSession] = None,
        tracer=NULL_TRACER,
    ) -> Tuple[Graph, List[Unreachable]]:
        """Dump every peer into one local graph (the collect baseline).

        Dumps go through the same fault/recovery funnel as federated
        sub-queries; an unreachable peer's database is simply missing
        from the union, and the dropped dump is reported for the
        partial-answer flag.
        """
        union = Graph(name="collected", dictionary=self.dictionary)
        ctx = ExecContext(
            self.network,
            stats,
            RelationCache(self.dictionary),
            faults=session,
            retry=self.retry_policy,
            tracer=tracer,
        )
        for endpoint in self.endpoints:
            try:
                graph, _ = issue_request(
                    ctx,
                    endpoint,
                    lambda ep: ep.graph,
                    lambda ep, g: self.network.charge_dump(
                        stats, ep.name, len(g)
                    ),
                    label="collect",
                )
            except EndpointUnavailableError as exc:
                ctx.record_unreachable(exc.endpoint, "dump")
                continue
            union.add_all(graph)
        return union, ctx.unreachable

    def _evaluate_branch_local(
        self, graph: Graph, branch: PreparedBranch
    ) -> List[IDBinding]:
        filters = list(branch.filters)
        bindings: List[IDBinding] = [{}]
        bound: Set[Variable] = set()
        for tp in branch.patterns:
            bindings = self._extend_local(graph, tp, bindings)
            bound.update(tp.variables())
            ready, filters = split_filters(filters, bound)
            bindings = apply_filters(bindings, ready)
            if not bindings:
                return []
        for block in branch.optionals:
            optional_rows: List[IDBinding] = []
            for opt_patterns, opt_filters in block.branches:
                rows = [{}]
                opt_remaining = list(opt_filters)
                opt_bound: Set[Variable] = set()
                for tp in opt_patterns:
                    rows = self._extend_local(graph, tp, rows)
                    opt_bound.update(tp.variables())
                    ready, opt_remaining = split_filters(
                        opt_remaining, opt_bound
                    )
                    rows = apply_filters(rows, ready)
                    if not rows:
                        break
                optional_rows.extend(apply_filters(rows, opt_remaining))
            bindings = left_join(
                bindings, dedupe(optional_rows), block.condition
            )
        return apply_filters(bindings, filters)

    def _modified_id_rows(
        self, bindings: List[IDBinding], prepared: PreparedQuery
    ) -> Set[Tuple[Optional[int], ...]]:
        """Apply solution modifiers to the collect baseline's solutions.

        ORDER BY mirrors :class:`~repro.federation.plan.TopKNode`
        exactly (same comparator, same dedupe) so ordered answer sets
        match the federated strategies; an unordered slice takes the
        canonical-order window — a deterministic representative of the
        many legal subsets.
        """
        head = prepared.head
        if prepared.ask:
            return {()} if bindings else set()
        decode = self.dictionary.decode
        key_cache: Dict[int, Tuple] = {}

        def cell_key(tid: Optional[int]) -> Tuple:
            if tid is None:
                return (0,)
            cached = key_cache.get(tid)
            if cached is None:
                cached = (1,) + decode(tid).sort_key()
                key_cache[tid] = cached
            return cached

        if prepared.order:
            flags = tuple(c.descending for c in prepared.order)
            order_vars = tuple(c.variable for c in prepared.order)
            best: Dict[Tuple[Optional[int], ...], OrderKey] = {}
            for binding in bindings:
                row = tuple(binding.get(v) for v in head)
                key = OrderKey(
                    tuple(cell_key(binding.get(v)) for v in order_vars),
                    flags,
                    tuple(cell_key(cell) for cell in row),
                )
                current = best.get(row)
                if current is None or key < current:
                    best[row] = key
            ordered = [
                row
                for row, _ in sorted(best.items(), key=lambda item: item[1])
            ]
        else:
            ordered = sorted(
                project(bindings, head),
                key=lambda row: tuple(cell_key(cell) for cell in row),
            )
        sliced = ordered[prepared.offset :]
        if prepared.limit is not None:
            sliced = sliced[: prepared.limit]
        return set(sliced)

    @staticmethod
    def _extend_local(
        graph: Graph, tp: TriplePattern, bindings: List[IDBinding]
    ) -> List[IDBinding]:
        """One conjunct step of the collect baseline, run columnar.

        :func:`extend_bindings_batch` probes the index with selection
        vectors instead of a per-row python loop, and is contractually
        order-identical to the ``extend_id_bindings`` loop it replaced,
        so the first-occurrence dedupe keeps the same representatives.
        """
        slots = compile_conjunct(graph, tp)
        if slots is None:
            return []
        out, _ = extend_bindings_batch(graph, slots, bindings)
        return dedupe(out)


def _stats_registry(stats: NetworkStats) -> MetricsRegistry:
    """One execution's network counters as a run-scoped registry.

    Every value is an integer accumulated on the deterministic
    simulated clock, so the rendered block is byte-identical across
    repeated seeded runs — what ``explain(analyze=True)`` gates on.
    """
    registry = MetricsRegistry()
    registry.counter("network.messages").inc(stats.messages)
    registry.counter("network.solutions_transferred").inc(
        stats.solutions_transferred
    )
    registry.counter("network.triples_transferred").inc(
        stats.triples_transferred
    )
    registry.counter("network.stats_refreshes").inc(stats.stats_refreshes)
    registry.counter("network.retries").inc(stats.retries)
    registry.counter("network.failures").inc(stats.failures)
    registry.counter("network.timeouts").inc(stats.timeouts)
    registry.counter("network.failovers").inc(stats.failovers)
    return registry


def _emit_runtime_spans(tracer, scheduler: OverlapScheduler) -> None:
    """Virtual spans from the runtime's replayed request timeline.

    Serial interpretation spans requests as they charge the elapsed
    clock; the runtime cannot — the simulated order only exists after
    the makespan replay.  This emits the spans post hoc instead: one
    parent span per endpoint channel covering its occupied window
    (first arrival to last completion), with one child span per request
    covering its replayed service interval, so the exported trace shows
    exactly how the overlap scheduler's DAG replay nested the traffic.
    """
    by_endpoint: Dict[str, List] = {}
    for handle in scheduler.timeline():
        by_endpoint.setdefault(handle.endpoint, []).append(handle)
    for name in sorted(by_endpoint):
        group = by_endpoint[name]
        parent = tracer.record(
            f"channel:{name}",
            min(handle.arrived_at for handle in group),
            max(handle.completed_at for handle in group),
            lane=name,
            requests=len(group),
        )
        for handle in group:
            tracer.record(
                f"request:{name}",
                handle.started_at,
                handle.completed_at,
                lane=name,
                parent=parent,
                index=handle.index,
                label=handle.label,
                failed=int(handle.failed),
            )


def _emit_concurrent_spans(
    tracer,
    scheduler: QueryScheduler,
    controller: Optional[AimdController],
) -> None:
    """Virtual spans for a multi-tenant replay: one lane per tenant.

    Where the single-query export groups spans by endpoint channel,
    the multi-tenant export groups them by *tenant* — each tenant gets
    its own lane (its own ``tid`` in the Chrome-trace rendering), with
    one parent span covering the query's activation-to-completion
    window and one child span per replayed request.  The controller's
    window adjustments render on a dedicated ``controller`` lane: each
    ``controller:<channel>`` span covers the completion epoch that
    triggered the decision and carries the window before/after.
    """
    by_tenant: Dict[str, List] = {}
    for handle in scheduler.timeline():
        by_tenant.setdefault(handle.tenant, []).append(handle)
    for name in scheduler.tenants:
        group = by_tenant.get(name, [])
        parent = tracer.record(
            f"tenant:{name}",
            scheduler.admission_wait(name),
            scheduler.tenant_makespan(name),
            lane=name,
            requests=len(group),
        )
        for handle in group:
            tracer.record(
                f"request:{handle.endpoint}",
                handle.started_at,
                handle.completed_at,
                lane=name,
                parent=parent,
                index=handle.index,
                endpoint=handle.endpoint,
                label=handle.label,
                failed=int(handle.failed),
            )
    if controller is None:
        return
    for adjustment in controller.adjustments:
        tracer.record(
            f"controller:{adjustment.channel}",
            adjustment.epoch_start,
            adjustment.at,
            lane="controller",
            window_before=adjustment.before,
            window_after=adjustment.after,
            congested=int(adjustment.congested),
        )


def execute_federated(
    system: RPS,
    query: _Query,
    strategy: str = ADAPTIVE,
    network: Optional[NetworkModel] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    nsm: Optional[NamespaceManager] = None,
) -> FederationResult:
    """One-shot convenience wrapper around :class:`FederatedExecutor`."""
    executor = FederatedExecutor(system, network, batch_size)
    return executor.execute(query, strategy, nsm)
