"""Simulated network cost model for federated query execution.

The paper's prototype sketch (§5 item 4) federates sub-queries over
remote SPARQL access points.  No live endpoints exist in this offline
reproduction, so the network is *simulated*: every request/response pair
is accounted with a parametric cost model (per-message latency plus
per-solution transfer cost), and the simulated clock replaces wall time.
This preserves the quantities the prototype design reasons about —
message counts, data volume, and their dependence on the join strategy —
without real sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["NetworkModel", "NetworkStats"]


@dataclass
class NetworkStats:
    """Accumulated traffic statistics for one execution.

    Attributes:
        messages: number of request/response round trips.
        solutions_transferred: total solution mappings shipped back.
        triples_transferred: total result triples shipped (for dumps).
        simulated_seconds: total simulated time spent on the wire.
        per_endpoint_messages: message count per endpoint name.
    """

    messages: int = 0
    solutions_transferred: int = 0
    triples_transferred: int = 0
    simulated_seconds: float = 0.0
    per_endpoint_messages: Dict[str, int] = field(default_factory=dict)

    @property
    def transfer_units(self) -> int:
        """Total payload items shipped (solution mappings + triples).

        The byte-volume proxy the adaptive benchmarks compare across
        strategies: a solution mapping and a triple are both one unit
        (each is a handful of terms on the wire).
        """
        return self.solutions_transferred + self.triples_transferred

    def merge(self, other: "NetworkStats") -> None:
        self.messages += other.messages
        self.solutions_transferred += other.solutions_transferred
        self.triples_transferred += other.triples_transferred
        self.simulated_seconds += other.simulated_seconds
        for endpoint, count in other.per_endpoint_messages.items():
            self.per_endpoint_messages[endpoint] = (
                self.per_endpoint_messages.get(endpoint, 0) + count
            )


@dataclass
class NetworkModel:
    """Parametric cost model applied to every simulated exchange.

    Attributes:
        latency_seconds: fixed cost per round trip (default 50 ms — a
            typical WAN RTT to a public SPARQL endpoint).
        per_solution_seconds: marginal cost per solution mapping
            transferred (serialisation + wire).
        per_triple_seconds: marginal cost per triple for data dumps.
    """

    latency_seconds: float = 0.05
    per_solution_seconds: float = 0.0001
    per_triple_seconds: float = 0.00005

    def charge_query(
        self, stats: NetworkStats, endpoint: str, solutions: int
    ) -> None:
        """Account one sub-query round trip returning ``solutions`` rows."""
        stats.messages += 1
        stats.solutions_transferred += solutions
        stats.simulated_seconds += (
            self.latency_seconds + solutions * self.per_solution_seconds
        )
        stats.per_endpoint_messages[endpoint] = (
            stats.per_endpoint_messages.get(endpoint, 0) + 1
        )

    def charge_dump(
        self, stats: NetworkStats, endpoint: str, triples: int
    ) -> None:
        """Account one full data-dump transfer (the centralised baseline)."""
        stats.messages += 1
        stats.triples_transferred += triples
        stats.simulated_seconds += (
            self.latency_seconds + triples * self.per_triple_seconds
        )
        stats.per_endpoint_messages[endpoint] = (
            stats.per_endpoint_messages.get(endpoint, 0) + 1
        )
