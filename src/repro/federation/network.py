"""Simulated network cost model for federated query execution.

The paper's prototype sketch (§5 item 4) federates sub-queries over
remote SPARQL access points.  No live endpoints exist in this offline
reproduction, so the network is *simulated*: every request/response pair
is accounted with a parametric cost model (per-message latency plus
per-solution transfer cost), and the simulated clock replaces wall time.
This preserves the quantities the prototype design reasons about —
message counts, data volume, and their dependence on the join strategy —
without real sockets.

Time is accounted on two axes:

* ``busy_seconds`` — summed wire time of every request, as if all were
  serial.  This is the total *work* placed on the network.  (The PR 5
  ``simulated_seconds`` alias for it is gone; see docs/architecture.md
  for the removal schedule.)
* ``elapsed_seconds`` — the makespan: what a wall clock would show.
  Serial strategies accumulate it in lockstep with ``busy_seconds``;
  the parallel execution mode overlaps requests on the discrete-event
  runtime (:mod:`repro.runtime`) and adds only the simulated makespan,
  so ``elapsed_seconds <= busy_seconds`` measures the won concurrency.

Accounting invariant: every attempt that leaves the coordinator — a
successful sub-query, an error reply, a timed-out request — is one
message and its wire time lands in ``busy_seconds``, in issue order.
Failed attempts (:meth:`NetworkModel.charge_fault`) are therefore
charged like real traffic; only retry *backoff* is different — it is
waiting, not wire work, so it advances ``elapsed_seconds`` (serial
mode) or the runtime's request arrival times, never ``busy_seconds``
or ``messages``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["NetworkModel", "NetworkStats"]


@dataclass
class NetworkStats:
    """Accumulated traffic statistics for one execution.

    Attributes:
        messages: number of request/response round trips (failed and
            timed-out attempts included — they occupy the wire too).
        solutions_transferred: total solution mappings shipped back.
        triples_transferred: total result triples shipped (for dumps).
        busy_seconds: summed simulated wire time of every request (the
            serial total).
        elapsed_seconds: simulated makespan — wall-clock-equivalent time
            once request overlap is accounted.  Equal to
            ``busy_seconds`` plus backoff waits for serial strategies.
        stats_refreshes: cardinality-statistics refresh round trips
            (included in ``messages`` as well).
        retries: re-issued attempts after a failure or timeout.
        failures: attempts answered with an error reply (injected).
        timeouts: attempts that timed out (injected).
        failovers: logical requests served by a replica endpoint after
            the primary exhausted its retry budget.
        backoff_seconds: summed retry backoff waits (elapsed-only time;
            never part of ``busy_seconds``).
        per_endpoint_messages: message count per endpoint name.
    """

    messages: int = 0
    solutions_transferred: int = 0
    triples_transferred: int = 0
    busy_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    stats_refreshes: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    failovers: int = 0
    backoff_seconds: float = 0.0
    per_endpoint_messages: Dict[str, int] = field(default_factory=dict)

    @property
    def transfer_units(self) -> int:
        """Total payload items shipped (solution mappings + triples).

        The byte-volume proxy the adaptive benchmarks compare across
        strategies: a solution mapping and a triple are both one unit
        (each is a handful of terms on the wire).
        """
        return self.solutions_transferred + self.triples_transferred

    def merge(self, other: "NetworkStats") -> None:
        """Fold ``other`` into this one, treating both as *concurrent*.

        Counters, ``busy_seconds`` and ``backoff_seconds`` add (work is
        work, waiting is waiting), but ``elapsed_seconds`` takes the
        max: two sub-executions that ran side by side finish when the
        slower one does.  Callers merging genuinely sequential
        executions should add elapsed times themselves.
        """
        self.messages += other.messages
        self.solutions_transferred += other.solutions_transferred
        self.triples_transferred += other.triples_transferred
        self.busy_seconds += other.busy_seconds
        self.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
        self.stats_refreshes += other.stats_refreshes
        self.retries += other.retries
        self.failures += other.failures
        self.timeouts += other.timeouts
        self.failovers += other.failovers
        self.backoff_seconds += other.backoff_seconds
        for endpoint, count in other.per_endpoint_messages.items():
            self.per_endpoint_messages[endpoint] = (
                self.per_endpoint_messages.get(endpoint, 0) + count
            )


@dataclass
class NetworkModel:
    """Parametric cost model applied to every simulated exchange.

    Attributes:
        latency_seconds: fixed cost per round trip (default 50 ms — a
            typical WAN RTT to a public SPARQL endpoint).
        per_solution_seconds: marginal cost per solution mapping
            transferred (serialisation + wire).
        per_triple_seconds: marginal cost per triple for data dumps.
    """

    latency_seconds: float = 0.05
    per_solution_seconds: float = 0.0001
    per_triple_seconds: float = 0.00005

    # -- pricing (no accounting) ----------------------------------------

    def query_seconds(self, solutions: int) -> float:
        """Wire duration of one sub-query returning ``solutions`` rows."""
        return self.latency_seconds + solutions * self.per_solution_seconds

    def dump_seconds(self, triples: int) -> float:
        """Wire duration of one data dump of ``triples`` triples."""
        return self.latency_seconds + triples * self.per_triple_seconds

    # -- accounting -----------------------------------------------------

    def _charge(
        self, stats: NetworkStats, endpoint: str, seconds: float, serial: bool
    ) -> float:
        """Shared per-message accounting behind every charge_* method."""
        stats.messages += 1
        stats.busy_seconds += seconds
        if serial:
            stats.elapsed_seconds += seconds
        stats.per_endpoint_messages[endpoint] = (
            stats.per_endpoint_messages.get(endpoint, 0) + 1
        )
        return seconds

    def charge_query(
        self,
        stats: NetworkStats,
        endpoint: str,
        solutions: int,
        serial: bool = True,
    ) -> float:
        """Account one sub-query round trip returning ``solutions`` rows.

        With ``serial=True`` (the default, every fixed strategy) the
        duration also advances ``elapsed_seconds``; overlap-aware
        callers pass ``serial=False`` and settle elapsed time from the
        runtime scheduler's makespan instead.  Returns the duration so
        those callers can hand it to the scheduler.
        """
        stats.solutions_transferred += solutions
        return self._charge(
            stats, endpoint, self.query_seconds(solutions), serial
        )

    def charge_dump(
        self,
        stats: NetworkStats,
        endpoint: str,
        triples: int,
        serial: bool = True,
    ) -> float:
        """Account one full data-dump transfer (the centralised baseline)."""
        stats.triples_transferred += triples
        return self._charge(
            stats, endpoint, self.dump_seconds(triples), serial
        )

    def charge_refresh(
        self, stats: NetworkStats, endpoint: str, serial: bool = True
    ) -> float:
        """Account one cardinality-statistics refresh round trip.

        A refresh ships a fixed-size statistics document (VoID-style),
        so it is priced as bare latency; it still counts as a real
        message against the endpoint.
        """
        stats.stats_refreshes += 1
        return self._charge(stats, endpoint, self.latency_seconds, serial)

    def charge_fault(
        self,
        stats: NetworkStats,
        endpoint: str,
        kind: str,
        serial: bool = True,
        timeout_seconds: float = 0.0,
    ) -> float:
        """Account one *failed* attempt, charged like real traffic.

        ``kind`` is ``"fail"`` (an error reply: one bare round trip) or
        ``"timeout"`` (no reply: the coordinator waits out its
        per-request timeout, so the attempt costs ``timeout_seconds``).
        Either way the attempt is one message against the endpoint and
        its duration lands in ``busy_seconds``, exactly like a
        successful request — failures are not free.
        """
        if kind == "timeout":
            stats.timeouts += 1
            seconds = timeout_seconds
        else:
            stats.failures += 1
            seconds = self.latency_seconds
        return self._charge(stats, endpoint, seconds, serial)

    def charge_backoff(
        self, stats: NetworkStats, seconds: float, serial: bool = True
    ) -> float:
        """Account one retry backoff wait.

        Backoff is coordinator-side waiting, not wire work: it never
        touches ``messages`` or ``busy_seconds``.  Serial interpreters
        advance ``elapsed_seconds`` here; the runtime interpreter
        instead delays the retry's arrival on the event kernel, so the
        replayed makespan carries the wait.
        """
        stats.backoff_seconds += seconds
        if serial:
            stats.elapsed_seconds += seconds
        return seconds
