"""Federated physical-operator layer: one plan, two interpreters.

PR 4 left the federation engine with four near-duplicate strategy
monoliths inside the executor.  This module replaces them with a proper
planner/operator split, mirroring the ID-native design of
:mod:`repro.sparql.plan`:

* **Operators** — small declarative nodes over ID bindings:
  :class:`RemoteScan` (unbound sub-query fan-out),
  :class:`ExclusiveGroupScan` (a FedX exclusive group fused into one
  endpoint-side sub-query), :class:`BoundJoinStream` (batched bound
  joins, *pipelined* under the runtime interpreter),
  :class:`PullScan` (source-relation transfer into the shared relation
  cache plus local extension), :class:`LocalHashJoin`,
  :class:`LeftJoinNode` (federated ``OPTIONAL``), :class:`FilterNode`,
  :class:`UnionNode` and :class:`ProjectDedupe`.

* **Planner** (:class:`FederatedPlanner`) — builds operator trees from
  the cost model's decisions.  ``naive`` and ``bound`` are static
  plan shapes; ``adaptive`` and ``parallel`` build the tree
  *incrementally*, one cost-model decision at a time, feeding each
  operator's actual output cardinality back into the next decision
  (the executor's cardinality feedback, now expressed as plan
  construction).

* **Interpreter** (:class:`PlanInterpreter`) — one memoised walker with
  two modes.  *Serial* (no scheduler): every request charges
  ``elapsed_seconds`` in lockstep with ``busy_seconds``.  *Runtime*
  (an :class:`~repro.runtime.scheduler.OverlapScheduler` attached):
  requests are priced the same but recorded onto the scheduler's
  dependency DAG and replayed into a makespan, so independent fan-outs,
  batch waves and UNION branches overlap.

**Pipelined bound joins.**  Every produced row carries its *origin* —
the recorded request that returned it.  Under ``streaming=True`` a
:class:`BoundJoinStream` orders its input by origin (rows from
earlier-submitted upstream requests first, canonical order within), and
each batch's sub-query depends only on the origins of the rows it
carries — the batch is *sent as soon as it fills*, overlapping the
still-outstanding remainder of the upstream step within the channel's
``max_in_flight`` window.  Under ``streaming=False`` the operator keeps
PR 4's wave barriers: every batch waits for the entire upstream step.
Batch count, message count and transferred solutions are identical in
both modes (the same rows travel in the same number of envelopes); only
the simulated timeline changes, which is what the ``streaming`` bench
suite gates on.  The *choice* of operator is still made from the cost
model's cardinality feedback at plan-construction time — like FedX, the
plan is fixed before rows stream through it; the simulation's planning
oracle sees counts the pipelined timeline only later "earns".

**Demand propagation (PR 6).**  Operators produce rows through
generators; the interpreter wraps each node in a memoised
:class:`_Stream` cursor, so a consumer pulls exactly as many rows as it
needs and the cursor is resumable — a later consumer (or a later pull
with higher demand) continues where the last one stopped, never
re-charging the network for rows already materialised.  A ``LIMIT k``
query runs its plan under ``demand = offset + k``: :class:`SliceNode`
stops pulling once the window is full, which ripples *against* the
dataflow — :class:`ProjectDedupe` stops pulling its child,
:class:`BoundJoinStream` stops filling batches (unsent batches are
never charged), :class:`RemoteScan` stops contacting later endpoints —
while the memoised prefix keeps already-paid rows available to every
consumer.  Operators that need their input's *cardinality* or wave
(:class:`LocalHashJoin` build sides, :class:`LeftJoinNode`,
:class:`TopKNode`, wave-barrier batching) drain their children fully,
exactly as before; a full drain reproduces the eager interpreter's
charges byte for byte, so unlimited queries are unchanged.
:class:`TopKNode` (federated ``ORDER BY``) sorts full solutions with
the same comparator as the local engine's ``TopKOp`` and federated
``ASK`` runs as ``SliceNode(limit=1)`` — the first surviving row
short-circuits the whole pipeline.

**Fault tolerance (PR 7).**  Every endpoint contact funnels through
:func:`issue_request`.  Without a fault model attached the function is
a pass-through — evaluate, charge, submit, byte-identical to the
fault-free engine.  With one
(:class:`~repro.federation.faults.FaultSession` on the context) each
attempt first draws an outcome: failures and timeouts are charged like
real traffic (:meth:`~repro.federation.network.NetworkModel.
charge_fault`), retried up to the :class:`~repro.federation.faults.
RetryPolicy`'s budget with exponential backoff (elapsed-only time —
serial interpreters advance the clock, the runtime delays the retry's
arrival on the event kernel), and failed over to the endpoint's
replicas once the primary's budget is spent.  When every candidate is
exhausted the request raises
:class:`~repro.errors.EndpointUnavailableError`; operators catch it,
record the dropped contribution on ``ctx.unreachable`` and continue
with the remaining endpoints — the execution degrades to a flagged
partial answer instead of failing.  The planner routes around
endpoints already marked down (zero further charges), recording them
too, so a partial answer's provenance names every dropped
contribution.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Generator,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EndpointUnavailableError
from repro.federation.bindings import (
    CompiledFilter,
    IDBinding,
    canonical,
    compose,
    join_pairs,
    merge_compatible,
    split_filters,
)
from repro.federation.cost import (
    Decision,
    EndpointStats,
    bound_variable_positions,
    group_bound_positions,
)
from repro.federation.endpoint import PeerEndpoint
from repro.federation.faults import FaultSession, RetryPolicy, Unreachable
from repro.obs.analyze import format_actuals
from repro.obs.trace import NULL_TRACER
from repro.rdf.graph import Graph
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.ast import OrderCondition
from repro.sparql.plan import OrderKey
from repro.gpq.evaluation import compile_conjunct, extend_id_bindings
from repro.sparql.batch import extend_bindings_batch
from repro.runtime.scheduler import RequestHandle, peak_overlap

__all__ = [
    "BoundJoinStream",
    "ExclusiveGroupScan",
    "ExecContext",
    "FederatedPlanner",
    "FedOp",
    "FilterNode",
    "InputNode",
    "LeftJoinNode",
    "LocalHashJoin",
    "PlanInterpreter",
    "ProjectDedupe",
    "PullScan",
    "RelationCache",
    "RemoteScan",
    "Rows",
    "SliceNode",
    "TopKNode",
    "UnionNode",
    "explain_fed_plan",
    "issue_request",
]

_Origin = Tuple[RequestHandle, ...]
_Accept = Optional[Callable[[IDBinding], bool]]


class RelationCache:
    """Source relations pulled so far, shared across one execution.

    A pull lands ID triples in one local graph; ``(endpoint, relation)``
    keys remember what has been paid for, so repeated conjuncts over the
    same relation (and later branches of a UNION) answer locally for
    free.  A full dump (``None`` key) subsumes every relation of that
    endpoint.
    """

    def __init__(self, dictionary) -> None:
        self.graph = Graph(name="pulled", dictionary=dictionary)
        self._pulled: Dict[str, Set[Optional[int]]] = {}

    def has(self, endpoint: str, key: Optional[int]) -> bool:
        keys = self._pulled.get(endpoint)
        if not keys:
            return False
        return key in keys or None in keys

    def add(self, endpoint: str, key: Optional[int], ids, dictionary) -> None:
        # The source dictionary travels with the IDs so a foreign-
        # dictionary endpoint fails loudly instead of caching garbage.
        self._pulled.setdefault(endpoint, set()).add(key)
        self.graph.add_id_triples(ids, dictionary)


class ExecContext:
    """Everything one plan execution needs besides the plan itself.

    Args:
        network: the cost model charging every simulated exchange.
        stats: the execution's accumulated statistics.
        cache: the execution-wide relation cache (shared across UNION
            branches and optional blocks).
        scheduler: the runtime scheduler, or ``None`` for serial
            interpretation (elapsed advances with busy).
        streaming: pipelined bound-join batches (origin-scoped
            dependencies) vs PR 4's wave barriers.  Only meaningful
            with a scheduler attached.
        demand: the query-level row cap (``offset + limit``, or ``1``
            for ASK), ``None`` when the query is unbounded.  Operators
            only read its *presence*: a bounded execution switches
            :class:`BoundJoinStream` to lazy arrival-order batching so
            early termination can leave batches unsent; an unbounded
            one reproduces the eager interpreter exactly.
        faults: the execution's :class:`~repro.federation.faults.
            FaultSession`, or ``None`` for a fault-free run (the
            request path is then byte-identical to the pre-fault
            engine).
        retry: the :class:`~repro.federation.faults.RetryPolicy`
            governing attempts, backoff and per-request timeouts.
        tracer: the :class:`~repro.obs.trace.Tracer` collecting spans,
            or the shared :data:`~repro.obs.trace.NULL_TRACER` — every
            span hook guards on ``tracer.enabled`` and costs one
            attribute read when tracing is off.
        analyze: when True the interpreter attaches an actual-counter
            dict to every operator it starts (EXPLAIN ANALYZE).
        batch_size: per-execution bound-join batch override.  The
            planner stamps every :class:`BoundJoinStream` with the
            executor's constructor knob; a non-``None`` value here
            replaces it at execution time — the adaptive concurrency
            controller's re-planning hook
            (:meth:`~repro.runtime.control.AimdController.
            recommend_batch`).

    Attributes:
        unreachable: dropped contributions, in drop order and deduped
            by ``(endpoint, operation)`` — the provenance a
            :class:`~repro.federation.faults.PartialAnswer` is built
            from.
    """

    def __init__(
        self,
        network,
        stats,
        cache: RelationCache,
        scheduler=None,
        streaming: bool = True,
        demand: Optional[int] = None,
        faults: Optional[FaultSession] = None,
        retry: Optional[RetryPolicy] = None,
        tracer=NULL_TRACER,
        analyze: bool = False,
        batch_size: Optional[int] = None,
    ) -> None:
        self.network = network
        self.stats = stats
        self.cache = cache
        self.scheduler = scheduler
        self.streaming = streaming
        self.demand = demand
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.tracer = tracer
        self.analyze = analyze
        self.batch_size = batch_size
        self.unreachable: List[Unreachable] = []
        self._unreachable_seen: Set[Tuple[str, str]] = set()

    @property
    def serial(self) -> bool:
        return self.scheduler is None

    def record_unreachable(self, endpoint: str, operation: str) -> None:
        """Record one dropped contribution (idempotent per pair)."""
        key = (endpoint, operation)
        if key in self._unreachable_seen:
            return
        self._unreachable_seen.add(key)
        self.unreachable.append(Unreachable(endpoint, operation))


def issue_request(
    ctx: ExecContext,
    endpoint: PeerEndpoint,
    evaluate: Callable[[PeerEndpoint], Any],
    charge: Callable[[PeerEndpoint, Any], float],
    deps: _Origin = (),
    label: str = "",
) -> Tuple[Any, Optional["RequestHandle"]]:
    """Contact one logical endpoint through the fault/recovery machinery.

    The single funnel for every simulated request.  ``evaluate`` runs
    the sub-query against a concrete endpoint instance (primary or
    replica) and ``charge`` prices + accounts it, returning the wire
    seconds; the helper returns ``(payload, handle)`` where ``handle``
    is the recorded runtime request (``None`` in serial mode).

    Without a fault session the path is evaluate → charge → submit,
    byte-identical to the fault-free engine.  With one, each candidate
    instance — the primary, then its replicas in order — gets
    ``1 + max_retries`` attempts.  Failed and timed-out attempts are
    charged like real traffic and, in runtime mode, recorded as
    ``failed`` requests that the retry depends on; backoff waits are
    charged elapsed-only (serial) or carried as the retry's arrival
    ``delay`` (runtime).  A candidate that exhausts its budget is
    marked down for the rest of the execution (later contacts fail
    fast, free of charge); when every candidate is down the request
    raises :class:`~repro.errors.EndpointUnavailableError`.
    """
    session = ctx.faults
    tracer = ctx.tracer
    # Serial requests are spanned as they charge the elapsed clock;
    # runtime requests get their spans post hoc from the scheduler's
    # replayed timeline (the charge order is not the simulated order).
    traced = tracer.enabled and ctx.serial
    if session is None:
        payload = evaluate(endpoint)
        before = ctx.stats.elapsed_seconds
        seconds = charge(endpoint, payload)
        if traced:
            tracer.record(
                f"request:{endpoint.name}",
                before,
                ctx.stats.elapsed_seconds,
                lane=endpoint.name,
                label=label,
            )
        handle: Optional[RequestHandle] = None
        if ctx.scheduler is not None:
            handle = ctx.scheduler.submit(
                endpoint.name, seconds, after=deps, label=label
            )
        return payload, handle

    policy = ctx.retry
    last_deps: _Origin = tuple(deps)
    pending_delay = 0.0
    attempts_total = 0
    for candidate in (endpoint,) + endpoint.replicas:
        if session.is_down(candidate.name):
            continue
        for attempt in range(policy.max_retries + 1):
            outcome = session.outcome(candidate.name, ctx.stats.busy_seconds)
            attempts_total += 1
            if outcome == "ok":
                payload = evaluate(candidate)
                before = ctx.stats.elapsed_seconds
                seconds = charge(candidate, payload)
                if traced:
                    tracer.record(
                        f"request:{candidate.name}",
                        before,
                        ctx.stats.elapsed_seconds,
                        lane=candidate.name,
                        label=label,
                        failover=int(candidate is not endpoint),
                    )
                handle = None
                if ctx.scheduler is not None:
                    handle = ctx.scheduler.submit(
                        candidate.name,
                        seconds,
                        after=last_deps,
                        label=label,
                        delay=pending_delay,
                    )
                if candidate is not endpoint:
                    ctx.stats.failovers += 1
                return payload, handle
            before = ctx.stats.elapsed_seconds
            seconds = ctx.network.charge_fault(
                ctx.stats,
                candidate.name,
                outcome,
                serial=ctx.serial,
                timeout_seconds=policy.timeout_seconds,
            )
            if traced:
                tracer.record(
                    f"request:{candidate.name} !{outcome}",
                    before,
                    ctx.stats.elapsed_seconds,
                    lane=candidate.name,
                    label=label,
                )
            if ctx.scheduler is not None:
                failed = ctx.scheduler.submit(
                    candidate.name,
                    seconds,
                    after=last_deps,
                    label=f"{label} !{outcome}".strip(),
                    delay=pending_delay,
                    failed=True,
                )
                last_deps = (failed,)
            pending_delay = 0.0
            if attempt < policy.max_retries:
                backoff = policy.backoff(attempt)
                before = ctx.stats.elapsed_seconds
                ctx.network.charge_backoff(
                    ctx.stats, backoff, serial=ctx.serial
                )
                if traced:
                    tracer.record(
                        f"backoff:{candidate.name}",
                        before,
                        ctx.stats.elapsed_seconds,
                        lane=candidate.name,
                        attempt=attempt,
                    )
                ctx.stats.retries += 1
                pending_delay = backoff
        session.mark_down(candidate.name)
    raise EndpointUnavailableError(
        f"endpoint {endpoint.name!r} unreachable after "
        f"{attempts_total} attempt(s), replicas included",
        endpoint=endpoint.name,
        attempts=attempts_total,
    )


class Rows:
    """One operator's materialised output.

    Attributes:
        bindings: the produced ID bindings (order is deterministic).
        origins: per-row provenance, aligned with ``bindings`` — the
            recorded request(s) whose completion makes the row
            available.  Empty tuples for locally produced rows and for
            serial interpretation.
        wave: every request handle of the producing step (PR 4's wave):
            what a wave-barrier dependent must wait for.
    """

    __slots__ = ("bindings", "origins", "wave")

    def __init__(
        self,
        bindings: List[IDBinding],
        origins: List[_Origin],
        wave: _Origin = (),
    ) -> None:
        self.bindings = bindings
        self.origins = origins
        self.wave = wave

    def __len__(self) -> int:
        return len(self.bindings)


def _dedupe_rows(
    bindings: List[IDBinding], origins: List[_Origin]
) -> Tuple[List[IDBinding], List[_Origin]]:
    """Row dedupe keeping first occurrences and their origins."""
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    out_b: List[IDBinding] = []
    out_o: List[_Origin] = []
    for binding, origin in zip(bindings, origins):
        key = canonical(binding)
        if key not in seen:
            seen.add(key)
            out_b.append(binding)
            out_o.append(origin)
    return out_b, out_o


def _merge_origins(left: _Origin, right: _Origin) -> _Origin:
    if not left:
        return right
    if not right:
        return left
    merged = {handle.index: handle for handle in left}
    for handle in right:
        merged.setdefault(handle.index, handle)
    return tuple(merged.values())


def _batch_dependencies(origins: Sequence[_Origin]) -> _Origin:
    """Deterministic union of the origins of one batch's rows."""
    merged: Dict[int, RequestHandle] = {}
    for origin in origins:
        for handle in origin:
            merged.setdefault(handle.index, handle)
    return tuple(handle for _, handle in sorted(merged.items()))


#: An operator's row generator: yields ``(binding, origin)`` pairs and
#: returns the step's wave (every recorded request handle) on exhaustion.
_RowGen = Generator[Tuple[IDBinding, _Origin], None, _Origin]


class _Stream:
    """A memoised, resumable cursor over one operator's row generator.

    ``pull(demand)`` extends the materialised prefix to ``demand`` rows
    (or drains on ``None``); already-produced rows stay indexable, so
    multiple consumers — and repeated interpretations of a growing plan
    — read the same prefix without re-executing the operator.  ``wave``
    is only meaningful once ``exhausted`` is set: wave consumers drain
    their child fully before reading it.
    """

    __slots__ = ("_gen", "bindings", "origins", "exhausted", "wave")

    def __init__(self, gen: _RowGen) -> None:
        self._gen = gen
        self.bindings: List[IDBinding] = []
        self.origins: List[_Origin] = []
        self.exhausted = False
        self.wave: _Origin = ()

    def pull(self, demand: Optional[int] = None) -> None:
        while not self.exhausted and (
            demand is None or len(self.bindings) < demand
        ):
            try:
                binding, origin = next(self._gen)
            except StopIteration as stop:
                self.exhausted = True
                self.wave = stop.value or ()
            else:
                self.bindings.append(binding)
                self.origins.append(origin)


def _observed(node: FedOp, ctx: ExecContext, gen: _RowGen) -> _RowGen:
    """Count rows out of (and trace the active window of) one node.

    Wraps a node's row generator without disturbing its protocol:
    yielded pairs pass through with ``rows_out`` kept current, and the
    generator's return value — the step's wave — is re-returned so
    :class:`_Stream` still sees it.  Serial traced runs additionally
    record one virtual span per exhausted node covering the elapsed
    -clock window in which it produced rows; nodes abandoned by demand
    (a full LIMIT window) record no span, matching their unfinished
    state.
    """
    actuals = node.actuals
    tracer = ctx.tracer
    traced = tracer.enabled and ctx.serial
    start = ctx.stats.elapsed_seconds if traced else 0.0
    rows = 0
    while True:
        try:
            item = next(gen)
        except StopIteration as stop:
            if traced:
                tracer.record(
                    f"op:{node.kind}",
                    start,
                    ctx.stats.elapsed_seconds,
                    lane="operators",
                    rows_out=rows,
                )
            return stop.value or ()
        rows += 1
        if actuals is not None:
            actuals["rows_out"] = rows
        yield item


def _rows_of(stream: _Stream) -> Iterator[Tuple[IDBinding, _Origin]]:
    """Iterate a stream one row at a time, pulling lazily."""
    pos = 0
    while True:
        stream.pull(pos + 1)
        if pos >= len(stream.bindings):
            return
        yield stream.bindings[pos], stream.origins[pos]
        pos += 1


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class FedOp:
    """Base class of the federated physical operators.

    Operators are declarative: they hold what to contact and which
    filters ride along; the interpreter decides how charges map onto
    the simulated timeline.  After execution a node carries its
    recorded request handles (runtime mode) for explain traces.
    """

    kind = "FedOp"
    decision: Optional[Decision] = None
    handles: Tuple[RequestHandle, ...] = ()
    #: EXPLAIN ANALYZE counters — ``None`` (analysis off, one attribute
    #: read on the hot path) or a per-node dict the interpreter attaches.
    actuals: Optional[Dict[str, int]] = None

    def children(self) -> Tuple["FedOp", ...]:
        return ()

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        raise NotImplementedError

    def describe(self) -> str:
        """One explain line (children are rendered by the walker)."""
        return self.kind

    def explain(self, depth: int = 0) -> List[str]:
        line = f"{'  ' * depth}{self.describe()}"
        lines = [f"{line}{format_actuals(self.actuals)}"]
        for child in self.children():
            lines.extend(child.explain(depth + 1))
        return lines


class InputNode(FedOp):
    """The singleton seed: one empty binding (a branch's starting Ω)."""

    kind = "Input"

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        yield {}, ()
        return ()


class RemoteScan(FedOp):
    """Unbound sub-query fan-out: one pattern shipped to its endpoints.

    Every relevant endpoint answers on its own channel; solutions are
    concatenated in endpoint order and deduplicated keep-first.  Under
    the runtime interpreter each request depends on the wave of
    ``after`` (the plan step whose results triggered this decision) —
    the coordinator cannot *decide* to ship before seeing them.

    The fan-out is demand-aware: endpoints are contacted one at a time,
    so a consumer that stops pulling (a full LIMIT window, a satisfied
    ASK) never charges the remaining endpoints.
    """

    kind = "RemoteScan"

    def __init__(
        self,
        patterns: Tuple[TriplePattern, ...],
        endpoints: Tuple[PeerEndpoint, ...],
        accept: _Accept = None,
        pushed: Tuple[CompiledFilter, ...] = (),
        decision: Optional[Decision] = None,
        after: Optional[FedOp] = None,
        label: str = "",
    ) -> None:
        self.patterns = patterns
        self.endpoints = endpoints
        self.accept = accept
        self.pushed = pushed
        self.decision = decision
        self.after = after
        self.label = label

    def children(self) -> Tuple[FedOp, ...]:
        return ()

    def _solutions(self, endpoint: PeerEndpoint) -> List[IDBinding]:
        return endpoint.pattern_solutions(self.patterns[0], self.accept)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        deps: _Origin = ()
        if ctx.scheduler is not None and self.after is not None:
            # Waves require exhaustion: drain the triggering step fully.
            deps = interp.run(self.after).wave
        handles: List[RequestHandle] = []
        seen: Set[Tuple[Tuple[str, int], ...]] = set()
        for endpoint in self.endpoints:
            try:
                solutions, handle = issue_request(
                    ctx,
                    endpoint,
                    self._solutions,
                    lambda ep, found: ctx.network.charge_query(
                        ctx.stats, ep.name, len(found), serial=ctx.serial
                    ),
                    deps=deps,
                    label=self.label,
                )
            except EndpointUnavailableError as exc:
                ctx.record_unreachable(
                    exc.endpoint, " ".join(tp.n3() for tp in self.patterns)
                )
                continue
            if self.actuals is not None:
                self.actuals["requests"] = self.actuals.get("requests", 0) + 1
            origin: _Origin = ()
            if handle is not None:
                handles.append(handle)
                self.handles = tuple(handles)
                origin = (handle,)
            for binding in solutions:
                key = canonical(binding)
                if key in seen:
                    continue
                seen.add(key)
                yield binding, origin
        return tuple(handles)

    def describe(self) -> str:
        shape = " ".join(tp.n3() for tp in self.patterns)
        targets = ",".join(ep.name for ep in self.endpoints) or "-"
        note = f" +{len(self.pushed)}f" if self.pushed else ""
        return f"{self.kind} {shape} -> {targets}{note}"


class ExclusiveGroupScan(RemoteScan):
    """A FedX exclusive group: the owning endpoint joins the conjuncts
    locally and only joined solutions travel — one round trip for the
    whole group."""

    kind = "ExclusiveGroupScan"

    def _solutions(self, endpoint: PeerEndpoint) -> List[IDBinding]:
        return endpoint.group_solutions(self.patterns, self.accept)


class BoundJoinStream(FedOp):
    """FedX-style bound join, batched and (optionally) pipelined.

    The child's rows are shipped in batches of ``batch_size`` as
    bindings for the pattern(s); endpoints return only extensions.
    Under the runtime interpreter with ``streaming=True`` the input is
    ordered by row origin and each batch depends only on the requests
    that produced its own rows — successive batches overlap the
    upstream step instead of waiting for its wave barrier.

    Under a demand cap (``ctx.demand`` set: the query carries a LIMIT
    or is an ASK) the operator instead pulls its child lazily and fills
    batches in arrival order, sending each batch before pulling the
    next — downstream demand that dries up leaves the remaining batches
    unsent and the upstream sub-queries that would have fed them
    unissued.  Unbounded executions keep the sorted batch composition,
    so their traffic and timelines are exactly the eager interpreter's.
    """

    kind = "BoundJoinStream"

    def __init__(
        self,
        child: FedOp,
        patterns: Tuple[TriplePattern, ...],
        endpoints: Tuple[PeerEndpoint, ...],
        accept: _Accept = None,
        batch_size: int = 64,
        pushed: Tuple[CompiledFilter, ...] = (),
        exclusive: bool = False,
        decision: Optional[Decision] = None,
        label: str = "",
    ) -> None:
        self.child = child
        self.patterns = patterns
        self.endpoints = endpoints
        self.accept = accept
        self.batch_size = batch_size
        self.pushed = pushed
        self.exclusive = exclusive
        self.decision = decision
        self.label = label
        self.n_batches = 0
        self.mode = "serial"

    def children(self) -> Tuple[FedOp, ...]:
        return (self.child,)

    def _solutions(
        self, endpoint: PeerEndpoint, batch: List[IDBinding]
    ) -> List[IDBinding]:
        if self.exclusive:
            return endpoint.bound_group_solutions(
                self.patterns, batch, self.accept
            )
        return endpoint.bound_solutions(self.patterns[0], batch, self.accept)

    def _chunks_eager(
        self, ctx: ExecContext, interp: "PlanInterpreter"
    ) -> Iterator[List[Tuple[IDBinding, _Origin]]]:
        """PR 5's batching: drain the child, sort, chunk."""
        rows = interp.run(self.child)
        pairs = list(zip(rows.bindings, rows.origins))
        if ctx.scheduler is not None and ctx.streaming:
            # Rows from earlier-submitted upstream requests batch first:
            # the simulated arrival order of a streaming consumer.
            pairs.sort(
                key=lambda pair: (
                    max((h.index for h in pair[1]), default=-1),
                    canonical(pair[0]),
                )
            )
        else:
            pairs.sort(key=lambda pair: canonical(pair[0]))
        for i in range(0, len(pairs), self.batch_size):
            yield pairs[i : i + self.batch_size]

    def _chunks_lazy(
        self, ctx: ExecContext, interp: "PlanInterpreter"
    ) -> Iterator[List[Tuple[IDBinding, _Origin]]]:
        """Demand-bounded batching: pull the child one batch at a time."""
        child = interp.stream(self.child)
        if ctx.scheduler is not None and not ctx.streaming:
            # Wave barriers: every batch depends on the entire upstream
            # step, so the child must exhaust before the first send.
            interp.run(self.child)
        pos = 0
        while True:
            chunk: List[Tuple[IDBinding, _Origin]] = []
            while len(chunk) < self.batch_size:
                child.pull(pos + 1)
                if pos >= len(child.bindings):
                    break
                chunk.append((child.bindings[pos], child.origins[pos]))
                pos += 1
            if not chunk:
                return
            yield chunk

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        if ctx.batch_size is not None:
            # Adaptive re-planning: the execution context's batch size
            # overrides the constructor knob the planner stamped in.
            self.batch_size = ctx.batch_size
        pipelined = ctx.scheduler is not None and ctx.streaming
        if ctx.serial:
            self.mode = "serial"
        elif pipelined:
            self.mode = "pipelined"
        else:
            self.mode = "waves"
        if ctx.demand is None:
            chunks = self._chunks_eager(ctx, interp)
        else:
            chunks = self._chunks_lazy(ctx, interp)
        handles: List[RequestHandle] = []
        seen: Set[Tuple[Tuple[str, int], ...]] = set()
        for chunk in chunks:
            self.n_batches += 1
            if self.actuals is not None:
                self.actuals["batches"] = self.n_batches
            batch = [binding for binding, _ in chunk]
            if ctx.serial:
                deps: _Origin = ()
            elif pipelined:
                deps = _batch_dependencies([origin for _, origin in chunk])
            else:
                deps = interp.stream(self.child).wave
            for endpoint in self.endpoints:
                try:
                    solutions, handle = issue_request(
                        ctx,
                        endpoint,
                        lambda ep, batch=batch: self._solutions(ep, batch),
                        lambda ep, found: ctx.network.charge_query(
                            ctx.stats, ep.name, len(found), serial=ctx.serial
                        ),
                        deps=deps,
                        label=self.label,
                    )
                except EndpointUnavailableError as exc:
                    ctx.record_unreachable(
                        exc.endpoint,
                        " ".join(tp.n3() for tp in self.patterns),
                    )
                    continue
                if self.actuals is not None:
                    self.actuals["requests"] = (
                        self.actuals.get("requests", 0) + 1
                    )
                origin: _Origin = ()
                if handle is not None:
                    handles.append(handle)
                    self.handles = tuple(handles)
                    origin = (handle,)
                for binding in solutions:
                    key = canonical(binding)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield binding, origin
        return tuple(handles)

    def describe(self) -> str:
        shape = " ".join(tp.n3() for tp in self.patterns)
        targets = ",".join(ep.name for ep in self.endpoints) or "-"
        group = f"[group {len(self.patterns)}] " if self.exclusive else ""
        note = f" +{len(self.pushed)}f" if self.pushed else ""
        line = (
            f"{self.kind} {group}{shape} -> {targets}"
            f" batch={self.batch_size}{note}"
        )
        if self.n_batches:
            line += f" batches={self.n_batches} mode={self.mode}"
            if self.handles:
                line += f" in_flight={peak_overlap(self.handles)}"
        return line


class PullScan(FedOp):
    """Pull the pattern's source relation(s), then extend locally.

    Uncached relevant endpoints dump the relation once into the shared
    :class:`RelationCache`; the child's rows then extend against the
    cache graph for free.  With every relation already cached this is
    the cost model's ``local`` action (zero network).
    """

    kind = "PullScan"

    def __init__(
        self,
        child: FedOp,
        pattern: TriplePattern,
        endpoints: Tuple[PeerEndpoint, ...],
        decision: Optional[Decision] = None,
        label: str = "",
    ) -> None:
        self.child = child
        self.pattern = pattern
        self.endpoints = endpoints
        self.decision = decision
        self.label = label
        self.pulled: Tuple[str, ...] = ()

    def children(self) -> Tuple[FedOp, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        if ctx.serial:
            # No wave to depend on: the relation dump is charged up
            # front (as before) but the child extends lazily, so a
            # satisfied LIMIT stops pulling upstream rows.
            deps: _Origin = ()
            child = interp.stream(self.child)
            source = _rows_of(child)
        else:
            rows = interp.run(self.child)
            deps = rows.wave
            source = iter(zip(rows.bindings, rows.origins))
        handles: List[RequestHandle] = []
        pulled: List[str] = []
        for endpoint in self.endpoints:
            key = endpoint.relation_key(self.pattern)
            if ctx.cache.has(endpoint.name, key):
                continue
            ids = endpoint.relation_ids(self.pattern)
            if not ids:
                continue
            try:
                # Replicas share the primary's graph, so the already-
                # computed dump is what any candidate would return;
                # the charge lands on whichever instance served it.
                ids, handle = issue_request(
                    ctx,
                    endpoint,
                    lambda ep, ids=ids: ids,
                    lambda ep, found: ctx.network.charge_dump(
                        ctx.stats, ep.name, len(found), serial=ctx.serial
                    ),
                    deps=deps,
                    label=self.label,
                )
            except EndpointUnavailableError as exc:
                ctx.record_unreachable(
                    exc.endpoint, f"pull {self.pattern.n3()}"
                )
                continue
            if handle is not None:
                handles.append(handle)
            if self.actuals is not None:
                self.actuals["requests"] = self.actuals.get("requests", 0) + 1
            pulled.append(endpoint.name)
            ctx.cache.add(endpoint.name, key, ids, endpoint.graph.dictionary)
        self.handles = tuple(handles)
        self.pulled = tuple(pulled)
        pull_origin = self.handles
        slots = compile_conjunct(ctx.cache.graph, self.pattern)
        seen: Set[Tuple[Tuple[str, int], ...]] = set()
        if slots is not None and not ctx.serial:
            # The child is already fully drained (runtime mode), so the
            # local join against the cache graph runs columnar: one
            # selection-vector probe over all rows, order-identical to
            # the per-row loop (downstream batching and dedupe are
            # stream-order-sensitive and message counts are gated).
            extended_rows, sources = extend_bindings_batch(
                ctx.cache.graph, slots, rows.bindings
            )
            origins = rows.origins
            for extended, source_index in zip(extended_rows, sources):
                key = canonical(extended)
                if key in seen:
                    continue
                seen.add(key)
                yield extended, _merge_origins(
                    origins[source_index], pull_origin
                )
        elif slots is not None:
            # Serial mode keeps the lazy per-row loop: a satisfied
            # LIMIT must stop pulling upstream rows mid-stream.
            for binding, origin in source:
                for extended in extend_id_bindings(
                    ctx.cache.graph, slots, binding
                ):
                    key = canonical(extended)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield extended, _merge_origins(origin, pull_origin)
        if self.handles:
            return self.handles
        return () if ctx.serial else rows.wave

    def describe(self) -> str:
        targets = ",".join(ep.name for ep in self.endpoints) or "-"
        line = f"{self.kind} {self.pattern.n3()} -> {targets}"
        if self.pulled:
            line += f" pulled={','.join(self.pulled)}"
        elif self.handles == () and self.decision is not None:
            line += f" [{self.decision.action}]"
        return line


class LocalHashJoin(FedOp):
    """Join two sub-plans locally on their per-pair shared variables.

    Delegates to :func:`repro.federation.bindings.join_pairs` (the one
    domain-aware join algorithm), tracking row origins so a merged row
    depends on both parents' requests.
    """

    kind = "LocalHashJoin"

    def __init__(self, left: FedOp, right: FedOp) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[FedOp, ...]:
        return (self.left, self.right)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        # Both sides drain fully: the hash join needs its build side
        # complete, and the charge/submission order must match the
        # eager interpreter's.
        left = interp.run(self.left)
        right = interp.run(self.right)
        wave = right.wave if right.wave else left.wave
        if not left.bindings or not right.bindings:
            return wave
        left_origin = dict(zip(map(id, left.bindings), left.origins))
        right_origin = dict(zip(map(id, right.bindings), right.origins))
        for lhs, rhs, merged in join_pairs(left.bindings, right.bindings):
            yield merged, _merge_origins(
                left_origin[id(lhs)], right_origin[id(rhs)]
            )
        return wave


class FilterNode(FedOp):
    """Apply compiled FILTER predicates that just became decidable."""

    kind = "Filter"

    def __init__(
        self, child: FedOp, filters: Sequence[CompiledFilter]
    ) -> None:
        self.child = child
        self.filters = tuple(filters)

    def children(self) -> Tuple[FedOp, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        child = interp.stream(self.child)
        for binding, origin in _rows_of(child):
            if all(f.accept(binding) for f in self.filters):
                yield binding, origin
        return child.wave

    def describe(self) -> str:
        return f"{self.kind} [{len(self.filters)} expr(s)]"


class LeftJoinNode(FedOp):
    """Federated ``OPTIONAL``: extend left rows with compatible optional
    rows that pass the block condition; keep unmatched rows unchanged.

    The optional side is an independent sub-plan (typically a
    :class:`UnionNode` over the block's conjunctive branches) whose
    requests carry no dependency on the required side — under the
    runtime interpreter both sides overlap.  The condition (the optional
    group's top-level FILTER) evaluates on the merged row, per the
    SPARQL translation; an empty required side skips the optional
    sub-plan entirely.
    """

    kind = "LeftJoin"

    def __init__(
        self,
        left: FedOp,
        optional: FedOp,
        condition: _Accept = None,
    ) -> None:
        self.left = left
        self.optional = optional
        self.condition = condition

    def children(self) -> Tuple[FedOp, ...]:
        return (self.left, self.optional)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        # Both sides drain fully: every left row must see the complete
        # optional side before it can stream through unmatched.
        left = interp.run(self.left)
        if not left.bindings:
            return left.wave
        optional = interp.run(self.optional)
        condition = self.condition
        seen: Set[Tuple[Tuple[str, int], ...]] = set()
        for binding, origin in zip(left.bindings, left.origins):
            extended = 0
            for opt, opt_origin in zip(optional.bindings, optional.origins):
                merged = merge_compatible(binding, opt)
                if merged is None:
                    continue
                if condition is not None and not condition(merged):
                    continue
                extended += 1
                key = canonical(merged)
                if key in seen:
                    continue
                seen.add(key)
                yield merged, _merge_origins(origin, opt_origin)
            if not extended:
                key = canonical(binding)
                if key not in seen:
                    seen.add(key)
                    yield binding, origin
        return left.wave

    def describe(self) -> str:
        cond = " cond" if self.condition is not None else ""
        return f"{self.kind}{cond}"


class UnionNode(FedOp):
    """Concatenate branch outputs, deduplicating across branches."""

    kind = "Union"

    def __init__(self, branches: Sequence[FedOp]) -> None:
        self.branches = tuple(branches)

    def children(self) -> Tuple[FedOp, ...]:
        return self.branches

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        seen: Set[Tuple[Tuple[str, int], ...]] = set()
        for branch in self.branches:
            for binding, origin in _rows_of(interp.stream(branch)):
                key = canonical(binding)
                if key in seen:
                    continue
                seen.add(key)
                yield binding, origin
        return ()

    def describe(self) -> str:
        return f"{self.kind} [{len(self.branches)} branch(es)]"


class ProjectDedupe(FedOp):
    """Project onto the query head and deduplicate the projected rows."""

    kind = "Project"

    def __init__(self, child: FedOp, head: Tuple[Variable, ...]) -> None:
        self.child = child
        self.head = head

    def children(self) -> Tuple[FedOp, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        head = self.head
        seen: Set[Tuple[Tuple[str, int], ...]] = set()
        for binding, origin in _rows_of(interp.stream(self.child)):
            projected = {v: binding[v] for v in head if v in binding}
            key = canonical(projected)
            if key in seen:
                continue
            seen.add(key)
            yield projected, origin
        return ()

    def describe(self) -> str:
        head = " ".join(f"?{v.name}" for v in self.head) or "(ask)"
        return f"{self.kind} {head} distinct"


class SliceNode(FedOp):
    """OFFSET/LIMIT over a distinct projected stream — the demand sink.

    Pulls its child one row at a time and stops dead once ``limit``
    rows survive past ``offset``; federated ``ASK`` is the degenerate
    ``SliceNode(offset=0, limit=1)`` — one surviving row short-circuits
    every upstream sub-query.
    """

    kind = "Slice"

    def __init__(
        self, child: FedOp, offset: int = 0, limit: Optional[int] = None
    ) -> None:
        self.child = child
        self.offset = offset
        self.limit = limit

    def children(self) -> Tuple[FedOp, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        if self.limit == 0:
            return ()
        skipped = 0
        emitted = 0
        for binding, origin in _rows_of(interp.stream(self.child)):
            if skipped < self.offset:
                skipped += 1
                continue
            yield binding, origin
            emitted += 1
            if self.limit is not None and emitted >= self.limit:
                break
        return ()

    def describe(self) -> str:
        note = f" offset={self.offset}" if self.offset else ""
        if self.limit is not None:
            note += f" limit={self.limit}"
        return f"{self.kind}{note}"


class TopKNode(FedOp):
    """Federated ``ORDER BY`` (+ OFFSET/LIMIT): sort, project, dedupe.

    Sorting is a pipeline breaker — the child drains fully — but the
    comparator is shared with the local engine's
    :class:`repro.sparql.plan.TopKOp`: keys are built from *full*
    solutions (ORDER BY may name non-projected variables), per distinct
    projected row the minimal-key solution wins, and ties break on the
    projected row's canonical term order, so every strategy and the
    reference evaluator agree on the emitted order.
    """

    kind = "TopK"

    def __init__(
        self,
        child: FedOp,
        head: Tuple[Variable, ...],
        order: Tuple[OrderCondition, ...],
        offset: int,
        limit: Optional[int],
        dictionary,
    ) -> None:
        self.child = child
        self.head = tuple(head)
        self.order = tuple(order)
        self.offset = offset
        self.limit = limit
        self.dictionary = dictionary

    def children(self) -> Tuple[FedOp, ...]:
        return (self.child,)

    def _stream(self, ctx: ExecContext, interp: "PlanInterpreter") -> _RowGen:
        rows = interp.run(self.child)
        decode = self.dictionary.decode
        key_cache: Dict[int, Tuple] = {}

        def cell_key(tid: Optional[int]) -> Tuple:
            if tid is None:
                return (0,)
            cached = key_cache.get(tid)
            if cached is None:
                cached = (1,) + decode(tid).sort_key()
                key_cache[tid] = cached
            return cached

        flags = tuple(condition.descending for condition in self.order)
        order_vars = tuple(condition.variable for condition in self.order)
        head = self.head
        best: Dict[
            Tuple[Tuple[str, int], ...], Tuple[OrderKey, IDBinding, _Origin]
        ] = {}
        for binding, origin in zip(rows.bindings, rows.origins):
            projected = {v: binding[v] for v in head if v in binding}
            row_key = canonical(projected)
            key = OrderKey(
                tuple(cell_key(binding.get(v)) for v in order_vars),
                flags,
                tuple(cell_key(binding.get(v)) for v in head),
            )
            current = best.get(row_key)
            if current is None or key < current[0]:
                best[row_key] = (key, projected, origin)
        ordered = sorted(best.values(), key=lambda item: item[0])
        sliced = ordered[self.offset :]
        if self.limit is not None:
            sliced = sliced[: self.limit]
        for _, projected, origin in sliced:
            yield projected, origin
        return ()

    def describe(self) -> str:
        order = ",".join(
            f"desc(?{c.variable.name})" if c.descending
            else f"?{c.variable.name}"
            for c in self.order
        )
        head = " ".join(f"?{v.name}" for v in self.head) or "(ask)"
        note = f" order={order}"
        if self.offset:
            note += f" offset={self.offset}"
        if self.limit is not None:
            note += f" limit={self.limit}"
        return f"{self.kind} {head}{note}"


class PlanInterpreter:
    """Memoised plan walker: each node's generator starts exactly once.

    The interpreter is what makes incremental plan construction cheap —
    the adaptive planner extends the tree one operator at a time and
    re-runs the root; already-started sub-trees resume their cached
    :class:`_Stream` without re-charging the network for materialised
    rows.  ``run(node, demand)`` pulls at most ``demand`` rows
    (``None`` drains the node — byte-identical to the pre-demand eager
    interpreter); the returned :class:`Rows` is a live view of the
    stream's materialised prefix.
    """

    def __init__(self, ctx: ExecContext) -> None:
        self.ctx = ctx
        # Keyed by the node itself (identity hash): the memo then also
        # keeps every executed node alive, so a recycled object id can
        # never alias a dead node's cached stream.
        self._memo: Dict[FedOp, _Stream] = {}

    def stream(self, node: FedOp) -> _Stream:
        cached = self._memo.get(node)
        if cached is None:
            ctx = self.ctx
            if ctx.analyze and node.actuals is None:
                # The adaptive planner grows the tree mid-execution, so
                # actual-counter dicts attach lazily at first pull.
                node.actuals = {}
            gen = node._stream(ctx, self)
            if node.actuals is not None or (
                ctx.tracer.enabled and ctx.serial
            ):
                gen = _observed(node, ctx, gen)
            cached = _Stream(gen)
            self._memo[node] = cached
        return cached

    def run(self, node: FedOp, demand: Optional[int] = None) -> Rows:
        stream = self.stream(node)
        stream.pull(demand)
        return Rows(stream.bindings, stream.origins, wave=stream.wave)


def explain_fed_plan(root: FedOp) -> str:
    """Render one plan tree deterministically (one line per operator)."""
    return "\n".join(root.explain())


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class _Unit:
    """One schedulable step of the parallel pipeline: a single conjunct
    or a FedX exclusive group (every conjunct owned by one endpoint,
    fused so the join runs endpoint-side in one round trip)."""

    __slots__ = ("index", "patterns", "endpoints", "exclusive")

    def __init__(
        self,
        index: int,
        patterns: Tuple[TriplePattern, ...],
        endpoints: Tuple[PeerEndpoint, ...],
        exclusive: bool,
    ) -> None:
        self.index = index
        self.patterns = patterns
        self.endpoints = endpoints
        self.exclusive = exclusive

    def variables(self) -> FrozenSet[Variable]:
        out: Set[Variable] = set()
        for tp in self.patterns:
            out.update(tp.variables())
        return frozenset(out)


class FederatedPlanner:
    """Builds federated operator plans from the cost model's decisions.

    ``host`` is the owning :class:`~repro.federation.executor.
    FederatedExecutor` — the planner reads its endpoints, cost model,
    statistics catalog and batch size, so every strategy is a
    plan-construction policy over the same operator vocabulary.
    """

    def __init__(self, host) -> None:
        self.host = host

    # -- shared pruning --------------------------------------------------

    def _active(
        self,
        endpoints: Sequence[PeerEndpoint],
        stats_now: Sequence[EndpointStats],
        ctx: Optional[ExecContext] = None,
        operation: str = "",
    ) -> Tuple[PeerEndpoint, ...]:
        """Endpoints a ship/bound action actually contacts.

        Endpoints marked down (primary and every replica exhausted) are
        routed around — no further charges — and recorded as dropped
        contributions on ``ctx`` so the partial answer names them.
        With live statistics an exact zero count prunes the endpoint;
        stale statistics must contact every relevant endpoint (a stale
        zero may hide fresh matches — correctness never depends on the
        catalog's age).
        """
        up: List[Tuple[PeerEndpoint, EndpointStats]] = []
        for ep, stat in zip(endpoints, stats_now):
            if stat.down:
                if ctx is not None:
                    ctx.record_unreachable(ep.name, operation)
                continue
            up.append((ep, stat))
        if not self.host.catalog.live:
            return tuple(ep for ep, _ in up)
        return tuple(ep for ep, stat in up if stat.pattern_count > 0)

    # -- static plan shapes: the fixed baselines -------------------------

    def plan_naive(
        self,
        patterns: Sequence[TriplePattern],
        filters: List[CompiledFilter],
    ) -> Tuple[FedOp, List[CompiledFilter]]:
        """Per-pattern shipping: every pattern to every peer, join local.

        Naive ships unconditionally — every scan runs even when an
        earlier join already emptied the intermediate result.
        """
        remaining = list(filters)
        scans: List[RemoteScan] = []
        for tp in patterns:
            push, remaining = split_filters(remaining, set(tp.variables()))
            scans.append(
                RemoteScan(
                    (tp,),
                    tuple(self.host.endpoints),
                    compose(push),
                    pushed=tuple(push),
                )
            )
        root: FedOp = scans[0]
        bound: Set[Variable] = set(patterns[0].variables())
        ready, remaining = split_filters(remaining, bound)
        if ready:
            root = FilterNode(root, ready)
        for tp, scan in zip(patterns[1:], scans[1:]):
            root = LocalHashJoin(root, scan)
            bound.update(tp.variables())
            ready, remaining = split_filters(remaining, bound)
            if ready:
                root = FilterNode(root, ready)
        return root, remaining

    def plan_bound(
        self,
        patterns: Sequence[TriplePattern],
        filters: List[CompiledFilter],
    ) -> Tuple[FedOp, List[CompiledFilter]]:
        """FedX-style bound joins over the greedy conjunct order."""
        remaining = list(filters)
        root: Optional[FedOp] = None
        bound: Set[Variable] = set()
        for position, tp in enumerate(self.host._order_conjuncts(patterns)):
            relevant = tuple(self.host._relevant(tp))
            # At position 0 ``bound`` is empty, so the sub-query scope is
            # just the pattern's own variables; later it includes every
            # coordinator-bound variable the batch carries along.
            scope = bound | tp.variables()
            push, remaining = split_filters(remaining, scope)
            accept = compose(push)
            if position == 0:
                root = RemoteScan((tp,), relevant, accept, pushed=tuple(push))
            else:
                root = BoundJoinStream(
                    root,
                    (tp,),
                    relevant,
                    accept,
                    batch_size=self.host.batch_size,
                    pushed=tuple(push),
                )
            bound.update(tp.variables())
            ready, remaining = split_filters(remaining, bound)
            if ready:
                root = FilterNode(root, ready)
        assert root is not None
        return root, remaining

    # -- incremental construction: the cost-model-driven strategies ------

    def run_adaptive(
        self,
        interp: PlanInterpreter,
        patterns: Sequence[TriplePattern],
        filters: List[CompiledFilter],
        decisions: List[Decision],
        branch_index: int,
        label: str = "",
        demand: Optional[int] = None,
    ) -> Tuple[FedOp, List[CompiledFilter]]:
        """Build and run the adaptive plan one decision at a time.

        Each step asks the cost model to price ship/bound/pull from the
        endpoint cardinalities and the *actual* intermediate binding
        count (the memoised interpreter makes re-running the extended
        root free), then appends the chosen operator to the tree.

        ``demand`` caps how many rows each step materialises — a
        LIMIT-bearing query plans against (at most) the rows it can
        ever emit; the streams stay resumable, so a downstream consumer
        needing more simply pulls deeper.
        """
        host = self.host
        prefix = label or f"b{branch_index}"
        remaining_filters = list(filters)
        remaining = list(enumerate(patterns))
        relevant: Dict[int, List[PeerEndpoint]] = {
            i: host._relevant(tp) for i, tp in remaining
        }
        counts: Dict[int, List[Tuple[PeerEndpoint, int, int]]] = {
            i: [
                (
                    ep,
                    host.catalog.pattern_count(ep, tp),
                    host.catalog.relation_count(ep, tp),
                )
                for ep in relevant[i]
            ]
            for i, tp in remaining
        }
        root: FedOp = InputNode()
        rows = interp.run(root, demand)
        bound: FrozenSet[Variable] = frozenset()
        # Memoised per conjunct: endpoint counts are static for the whole
        # execution and only the `cached` flags can change — and only
        # after a pull, which invalidates the memo wholesale.  Keeps the
        # dynamic ordering's min() key O(1) per (round, conjunct).
        stats_memo: Dict[int, List[EndpointStats]] = {}

        def endpoint_stats(i: int, tp: TriplePattern) -> List[EndpointStats]:
            memoised = stats_memo.get(i)
            if memoised is None:
                memoised = [
                    EndpointStats(
                        ep.name,
                        pattern_count,
                        relation_count,
                        interp.ctx.cache.has(ep.name, ep.relation_key(tp)),
                    )
                    for ep, pattern_count, relation_count in counts[i]
                ]
                stats_memo[i] = memoised
            return memoised

        def with_down(
            stats: List[EndpointStats], endpoints: Sequence[PeerEndpoint]
        ) -> List[EndpointStats]:
            # Down flags are applied fresh on top of the memo: they can
            # flip mid-execution as budgets exhaust, unlike the counts.
            session = interp.ctx.faults
            if session is None:
                return stats
            return [
                replace(stat, down=session.unreachable(ep))
                for stat, ep in zip(stats, endpoints)
            ]

        while remaining:
            def order_key(pair: Tuple[int, TriplePattern]):
                i, tp = pair
                estimate, free = host.cost_model.order_estimate(
                    with_down(endpoint_stats(i, tp), relevant[i]), bound, tp
                )
                return (estimate, free, i)

            best = min(remaining, key=order_key)
            remaining.remove(best)
            index, tp = best
            stats_now = with_down(endpoint_stats(index, tp), relevant[index])
            bound_after = bound | tp.variables()
            ship_filters = sum(
                1 for f in remaining_filters if f.variables <= tp.variables()
            )
            bound_filters = sum(
                1 for f in remaining_filters if f.variables <= bound_after
            )
            decision = host.cost_model.decide(
                tp,
                stats_now,
                len(rows.bindings),
                bound_variable_positions(tp, bound),
                branch_index,
                ship_filters=ship_filters,
                bound_filters=bound_filters,
            )
            decisions.append(decision)
            active = self._active(
                relevant[index], stats_now, interp.ctx, tp.n3()
            )
            if decision.action == "ship":
                push, remaining_filters = split_filters(
                    remaining_filters, set(tp.variables())
                )
                scan = RemoteScan(
                    (tp,),
                    active,
                    compose(push),
                    pushed=tuple(push),
                    decision=decision,
                    after=root,
                    label=f"{prefix} ship",
                )
                root = LocalHashJoin(root, scan)
            elif decision.action == "bound":
                push, remaining_filters = split_filters(
                    remaining_filters, set(bound_after)
                )
                root = BoundJoinStream(
                    root,
                    (tp,),
                    active,
                    compose(push),
                    batch_size=host.batch_size,
                    pushed=tuple(push),
                    decision=decision,
                    label=f"{prefix} bound",
                )
            else:  # pull / local: answer from the relation cache
                if decision.action == "pull":
                    pull_from = tuple(relevant[index])
                else:
                    pull_from = ()
                root = PullScan(
                    root,
                    tp,
                    pull_from,
                    decision=decision,
                    label=f"{prefix} pull",
                )
            rows = interp.run(root, demand)
            if decision.action == "pull":
                stats_memo.clear()  # cached flags changed
            bound = bound_after
            ready, remaining_filters = split_filters(
                remaining_filters, set(bound)
            )
            if ready:
                root = FilterNode(root, ready)
                rows = interp.run(root, demand)
            if not rows.bindings:
                break
        return root, remaining_filters

    # -- exclusive groups (parallel mode) --------------------------------

    def exclusive_units(
        self, patterns: Sequence[TriplePattern]
    ) -> List[_Unit]:
        """Partition a branch into exclusive groups and plain units.

        Conjuncts whose schema-based source selection names exactly one
        endpoint are grouped by that endpoint; owners with two or more
        such conjuncts yield one fused group unit (FedX exclusive
        group).  Everything else stays a single-pattern unit.  Units
        keep branch order via their first pattern's index.
        """
        relevant = [tuple(self.host._relevant(tp)) for tp in patterns]
        owners: Dict[str, List[int]] = {}
        for i, endpoints in enumerate(relevant):
            if len(endpoints) == 1:
                owners.setdefault(endpoints[0].name, []).append(i)
        fused: Set[int] = set()
        units: List[_Unit] = []
        for name in sorted(owners):
            indices = owners[name]
            if len(indices) < 2:
                continue
            units.append(
                _Unit(
                    index=min(indices),
                    patterns=tuple(patterns[i] for i in indices),
                    endpoints=relevant[indices[0]],
                    exclusive=True,
                )
            )
            fused.update(indices)
        for i, tp in enumerate(patterns):
            if i not in fused:
                units.append(
                    _Unit(
                        index=i,
                        patterns=(tp,),
                        endpoints=relevant[i],
                        exclusive=False,
                    )
                )
        units.sort(key=lambda unit: unit.index)
        return units

    def _unit_counts(
        self, unit: _Unit
    ) -> List[Tuple[PeerEndpoint, int, int]]:
        """Catalog cardinalities for one unit, read once per execution.

        A group's result cardinality is estimated from its most
        selective member (pulling is not offered for groups, so the
        relation count is zero).
        """
        catalog = self.host.catalog
        counts: List[Tuple[PeerEndpoint, int, int]] = []
        for ep in unit.endpoints:
            if unit.exclusive:
                pattern_count = min(
                    catalog.pattern_count(ep, tp) for tp in unit.patterns
                )
                relation_count = 0
            else:
                tp = unit.patterns[0]
                pattern_count = catalog.pattern_count(ep, tp)
                relation_count = catalog.relation_count(ep, tp)
            counts.append((ep, pattern_count, relation_count))
        return counts

    def run_parallel(
        self,
        interp: PlanInterpreter,
        patterns: Sequence[TriplePattern],
        filters: List[CompiledFilter],
        decisions: List[Decision],
        branch_index: int,
        label: str = "",
        demand: Optional[int] = None,
    ) -> Tuple[FedOp, List[CompiledFilter]]:
        """The adaptive construction over exclusive-group units with
        makespan-priced decisions (``parallel=True``)."""
        host = self.host
        prefix = label or f"b{branch_index}"
        remaining_filters = list(filters)
        remaining = self.exclusive_units(patterns)
        counts = {unit.index: self._unit_counts(unit) for unit in remaining}
        root: FedOp = InputNode()
        rows = interp.run(root, demand)
        bound: FrozenSet[Variable] = frozenset()
        # Counts are read once above; only the `cached` flags can change
        # — and only after a pull, which clears this memo wholesale.
        stats_memo: Dict[int, List[EndpointStats]] = {}

        def unit_stats(unit: _Unit) -> List[EndpointStats]:
            memoised = stats_memo.get(unit.index)
            if memoised is None:
                if unit.exclusive:
                    memoised = [
                        EndpointStats(ep.name, pc, rc)
                        for ep, pc, rc in counts[unit.index]
                    ]
                else:
                    tp = unit.patterns[0]
                    memoised = [
                        EndpointStats(
                            ep.name,
                            pc,
                            rc,
                            interp.ctx.cache.has(
                                ep.name, ep.relation_key(tp)
                            ),
                        )
                        for ep, pc, rc in counts[unit.index]
                    ]
                stats_memo[unit.index] = memoised
            return memoised

        def with_down(
            stats: List[EndpointStats], endpoints: Sequence[PeerEndpoint]
        ) -> List[EndpointStats]:
            # Applied fresh on top of the memo: down flags can flip
            # mid-execution as retry budgets exhaust.
            session = interp.ctx.faults
            if session is None:
                return stats
            return [
                replace(stat, down=session.unreachable(ep))
                for stat, ep in zip(stats, endpoints)
            ]

        def order_key(unit: _Unit):
            stats = with_down(unit_stats(unit), unit.endpoints)
            if unit.exclusive:
                estimate, free = host.cost_model.order_estimate_group(
                    stats, bound, unit.patterns
                )
            else:
                estimate, free = host.cost_model.order_estimate(
                    stats, bound, unit.patterns[0]
                )
            return (estimate, free, unit.index)

        while remaining:
            best = min(remaining, key=order_key)
            remaining.remove(best)
            stats_now = with_down(unit_stats(best), best.endpoints)
            unit_vars = best.variables()
            bound_after = bound | unit_vars
            ship_filters = sum(
                1 for f in remaining_filters if f.variables <= unit_vars
            )
            bound_filters = sum(
                1 for f in remaining_filters if f.variables <= bound_after
            )
            if best.exclusive:
                decision = host.cost_model.decide_group(
                    best.patterns,
                    stats_now,
                    len(rows.bindings),
                    group_bound_positions(best.patterns, bound),
                    branch_index,
                    ship_filters=ship_filters,
                    bound_filters=bound_filters,
                    parallel=True,
                )
            else:
                decision = host.cost_model.decide(
                    best.patterns[0],
                    stats_now,
                    len(rows.bindings),
                    bound_variable_positions(best.patterns[0], bound),
                    branch_index,
                    ship_filters=ship_filters,
                    bound_filters=bound_filters,
                    parallel=True,
                )
            decisions.append(decision)
            targets = self._active(
                best.endpoints,
                stats_now,
                interp.ctx,
                " ".join(tp.n3() for tp in best.patterns),
            )
            if decision.action == "ship":
                push, remaining_filters = split_filters(
                    remaining_filters, set(unit_vars)
                )
                if best.exclusive:
                    scan_cls = ExclusiveGroupScan
                else:
                    scan_cls = RemoteScan
                scan = scan_cls(
                    best.patterns,
                    targets,
                    compose(push),
                    pushed=tuple(push),
                    decision=decision,
                    after=root,
                    label=f"{prefix} ship",
                )
                root = LocalHashJoin(root, scan)
            elif decision.action == "bound":
                push, remaining_filters = split_filters(
                    remaining_filters, set(bound_after)
                )
                root = BoundJoinStream(
                    root,
                    best.patterns,
                    targets,
                    compose(push),
                    batch_size=host.batch_size,
                    pushed=tuple(push),
                    exclusive=best.exclusive,
                    decision=decision,
                    label=f"{prefix} bound",
                )
            else:  # pull / local: answer from the relation cache
                if decision.action == "pull":
                    pull_from = tuple(best.endpoints)
                else:
                    pull_from = ()
                root = PullScan(
                    root,
                    best.patterns[0],
                    pull_from,
                    decision=decision,
                    label=f"{prefix} pull",
                )
            rows = interp.run(root, demand)
            if decision.action == "pull":
                stats_memo.clear()  # cached flags changed
            bound = bound_after
            ready, remaining_filters = split_filters(
                remaining_filters, set(bound)
            )
            if ready:
                root = FilterNode(root, ready)
                rows = interp.run(root, demand)
            if not rows.bindings:
                break
        return root, remaining_filters
