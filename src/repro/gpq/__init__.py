"""Graph pattern queries — the paper's Section-2.1 query language.

Triple patterns closed under AND, queries ``q(x) ← GP`` with free and
existential variables, the ``subjQ``/``predQ``/``objQ`` probes, and both
evaluation semantics (``Q_D`` blank-dropping, ``Q*_D`` blank-keeping).
This language is the "conjunctive fragment" of SPARQL; see
:mod:`repro.sparql.bridge` for the two-way translation.
"""

from repro.gpq.bindings import (
    EMPTY_MAPPING,
    SolutionMapping,
    compatible,
    join,
    project,
    union,
)
from repro.gpq.evaluation import (
    ask,
    evaluate_pattern,
    evaluate_query,
    evaluate_query_star,
)
from repro.gpq.pattern import And, GraphPattern, make_pattern
from repro.gpq.query import (
    GraphPatternQuery,
    obj_query,
    pred_query,
    subj_query,
)

__all__ = [
    "And",
    "EMPTY_MAPPING",
    "GraphPattern",
    "GraphPatternQuery",
    "SolutionMapping",
    "ask",
    "compatible",
    "evaluate_pattern",
    "evaluate_query",
    "evaluate_query_star",
    "join",
    "make_pattern",
    "obj_query",
    "pred_query",
    "project",
    "subj_query",
    "union",
]
