"""Graph patterns: triple patterns closed under AND (Section 2.1).

The paper's grammar is minimal — a graph pattern is either a triple
pattern or ``(GP₁ AND GP₂)``.  :class:`GraphPattern` keeps that recursive
structure (useful for pretty-printing and for the SPARQL bridge) while
also exposing a flattened conjunct list, which is what evaluation and the
data-exchange translation consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.rdf.terms import IRI, Literal, Term, Variable
from repro.rdf.triples import TriplePattern

__all__ = ["GraphPattern", "And", "make_pattern"]


class GraphPattern:
    """A graph pattern: a non-empty AND-tree of triple patterns.

    Construct leaves with ``GraphPattern.leaf(tp)`` and conjunctions with
    :class:`And` or ``GraphPattern.conjunction([...])``.
    """

    __slots__ = ("_leaf", "_left", "_right", "_hash")

    def __init__(
        self,
        leaf: Optional[TriplePattern] = None,
        left: Optional["GraphPattern"] = None,
        right: Optional["GraphPattern"] = None,
    ) -> None:
        if leaf is not None:
            if left is not None or right is not None:
                raise QueryError("a pattern is either a leaf or an AND, not both")
        else:
            if left is None or right is None:
                raise QueryError("AND pattern needs both operands")
        object.__setattr__(self, "_leaf", leaf)
        object.__setattr__(self, "_left", left)
        object.__setattr__(self, "_right", right)
        object.__setattr__(self, "_hash", hash(("GP", leaf, left, right)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GraphPattern is immutable")

    # -- constructors ----------------------------------------------------

    @staticmethod
    def leaf(tp: TriplePattern) -> "GraphPattern":
        """Wrap a single triple pattern."""
        return GraphPattern(leaf=tp)

    @staticmethod
    def conjunction(
        patterns: Sequence[Union[TriplePattern, "GraphPattern"]]
    ) -> "GraphPattern":
        """Left-deep AND of the given patterns.

        Raises:
            QueryError: if ``patterns`` is empty.
        """
        if not patterns:
            raise QueryError("a graph pattern must contain at least one triple pattern")
        nodes = [
            p if isinstance(p, GraphPattern) else GraphPattern.leaf(p)
            for p in patterns
        ]
        out = nodes[0]
        for node in nodes[1:]:
            out = GraphPattern(left=out, right=node)
        return out

    # -- structure -------------------------------------------------------

    def is_leaf(self) -> bool:
        return self._leaf is not None

    @property
    def triple_pattern(self) -> TriplePattern:
        if self._leaf is None:
            raise QueryError("not a leaf pattern")
        return self._leaf

    @property
    def left(self) -> "GraphPattern":
        if self._left is None:
            raise QueryError("not an AND pattern")
        return self._left

    @property
    def right(self) -> "GraphPattern":
        if self._right is None:
            raise QueryError("not an AND pattern")
        return self._right

    def conjuncts(self) -> List[TriplePattern]:
        """Flatten the AND-tree into its leaf triple patterns, in order."""
        out: List[TriplePattern] = []
        stack: List[GraphPattern] = [self]
        while stack:
            node = stack.pop()
            if node._leaf is not None:
                out.append(node._leaf)
            else:
                # push right first so left comes out first
                assert node._right is not None and node._left is not None
                stack.append(node._right)
                stack.append(node._left)
        return out

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.conjuncts())

    def __len__(self) -> int:
        return len(self.conjuncts())

    # -- variables & terms -------------------------------------------------

    def variables(self) -> FrozenSet[Variable]:
        """The set ``var(GP)``."""
        out: set = set()
        for tp in self.conjuncts():
            out.update(tp.variables())
        return frozenset(out)

    def iris(self) -> FrozenSet[IRI]:
        """All IRIs mentioned (used for peer-schema validation)."""
        out: set = set()
        for tp in self.conjuncts():
            out.update(t for t in tp if isinstance(t, IRI))
        return frozenset(out)

    def literals(self) -> FrozenSet[Literal]:
        out: set = set()
        for tp in self.conjuncts():
            out.update(t for t in tp if isinstance(t, Literal))
        return frozenset(out)

    def substitute(self, mapping: Dict[Variable, Term]) -> "GraphPattern":
        """Apply a partial substitution to every leaf."""
        if self._leaf is not None:
            return GraphPattern.leaf(self._leaf.substitute(mapping))
        assert self._left is not None and self._right is not None
        return GraphPattern(
            left=self._left.substitute(mapping),
            right=self._right.substitute(mapping),
        )

    # -- value object ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphPattern):
            return NotImplemented
        return (
            self._leaf == other._leaf
            and self._left == other._left
            and self._right == other._right
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"GraphPattern({self.to_text()})"

    def to_text(self) -> str:
        """Paper-style rendering: ``(tp₁ AND tp₂)``."""
        if self._leaf is not None:
            tp = self._leaf
            return (
                f"({tp.subject.n3()}, {tp.predicate.n3()}, {tp.object.n3()})"
            )
        assert self._left is not None and self._right is not None
        return f"({self._left.to_text()} AND {self._right.to_text()})"


def And(left: GraphPattern, right: GraphPattern) -> GraphPattern:
    """The paper's ``(GP₁ AND GP₂)`` constructor."""
    return GraphPattern(left=left, right=right)


def make_pattern(
    *patterns: Union[TriplePattern, Tuple[Term, Term, Term]]
) -> GraphPattern:
    """Convenience constructor from triple patterns or raw 3-tuples.

    Example:
        >>> make_pattern((s, p, Variable("x")), (Variable("x"), q, o))
    """
    tps = [
        p if isinstance(p, TriplePattern) else TriplePattern(*p)
        for p in patterns
    ]
    return GraphPattern.conjunction(tps)
