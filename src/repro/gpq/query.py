"""Graph pattern queries ``q(x) ← GP`` and the subjQ/predQ/objQ probes.

A :class:`GraphPatternQuery` of arity *n* pairs a graph pattern with an
ordered tuple of free variables drawn from ``var(GP)``; the remaining
pattern variables are existentially quantified (Section 2.1).  The module
also defines the three special probe queries of Section 2.3 —
``subjQ(c)``, ``predQ(c)`` and ``objQ(c)`` — used by the semantics of
equivalence mappings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import QueryError
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import TriplePattern
from repro.gpq.pattern import GraphPattern

__all__ = [
    "GraphPatternQuery",
    "subj_query",
    "pred_query",
    "obj_query",
]


class GraphPatternQuery:
    """A graph pattern query ``q(x₁,…,xₙ) ← GP``.

    Args:
        head: ordered free variables ``x``; duplicates are not allowed.
        pattern: the body graph pattern ``GP``.
        name: optional label used in diagnostics (defaults to ``q``).

    Raises:
        QueryError: if a head variable does not occur in the body, or the
            head contains duplicates.
    """

    __slots__ = ("head", "pattern", "name", "_hash")

    def __init__(
        self,
        head: Sequence[Variable],
        pattern: GraphPattern,
        name: str = "q",
    ) -> None:
        head_tuple: Tuple[Variable, ...] = tuple(head)
        for var in head_tuple:
            if not isinstance(var, Variable):
                raise QueryError(f"head element must be a Variable, got {var!r}")
        if len(set(head_tuple)) != len(head_tuple):
            raise QueryError("duplicate variable in query head")
        body_vars = pattern.variables()
        missing = [v for v in head_tuple if v not in body_vars]
        if missing:
            names = ", ".join(v.name for v in missing)
            raise QueryError(
                f"free variable(s) {names} do not occur in the query body"
            )
        object.__setattr__(self, "head", head_tuple)
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((head_tuple, pattern)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GraphPatternQuery is immutable")

    # -- structure ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.head)

    def free_variables(self) -> Tuple[Variable, ...]:
        return self.head

    def existential_variables(self) -> FrozenSet[Variable]:
        """Variables of the body that are not free (the paper's ``y``)."""
        return self.pattern.variables() - set(self.head)

    def conjuncts(self) -> List[TriplePattern]:
        return self.pattern.conjuncts()

    def is_boolean(self) -> bool:
        """True for arity-0 queries (the BCQs of Section 4)."""
        return self.arity == 0

    def iris(self) -> FrozenSet:
        return self.pattern.iris()

    # -- operations ----------------------------------------------------------

    def substitute(self, mapping: Dict[Variable, Term]) -> "GraphPatternQuery":
        """Substitute ground terms for some *free* variables.

        Substituted variables leave the head (they are no longer free);
        this is how the Listing-2 tuple check turns a SELECT query into an
        ASK query.

        Raises:
            QueryError: if an existential variable is being substituted.
        """
        existential = self.existential_variables()
        for var in mapping:
            if var in existential:
                raise QueryError(
                    f"cannot substitute existential variable {var}"
                )
        new_head = tuple(v for v in self.head if v not in mapping)
        return GraphPatternQuery(
            new_head, self.pattern.substitute(mapping), name=self.name
        )

    def bind_tuple(self, values: Sequence[Term]) -> "GraphPatternQuery":
        """Substitute the whole head with a candidate answer tuple.

        Returns the Boolean query asking "is ``values`` an answer?"
        (the reduction used in Example 3 / Listing 2).

        Raises:
            QueryError: if the tuple arity does not match.
        """
        if len(values) != self.arity:
            raise QueryError(
                f"expected {self.arity} values, got {len(values)}"
            )
        return self.substitute(dict(zip(self.head, values)))

    def rename_variables(self, suffix: str) -> "GraphPatternQuery":
        """Uniformly rename every variable by appending ``suffix``.

        Used to keep variable scopes apart when a query is combined with
        mapping assertions during the chase and rewriting.
        """
        renaming: Dict[Variable, Term] = {}
        for var in self.pattern.variables():
            renaming[var] = Variable(var.name + suffix)
        new_head = tuple(Variable(v.name + suffix) for v in self.head)
        return GraphPatternQuery(
            new_head, self.pattern.substitute(renaming), name=self.name
        )

    # -- value object ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphPatternQuery):
            return NotImplemented
        return self.head == other.head and self.pattern == other.pattern

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"GraphPatternQuery({self.to_text()})"

    def to_text(self) -> str:
        """Paper-style rendering ``q(x, y) <- GP``."""
        head = ", ".join(v.n3() for v in self.head)
        return f"{self.name}({head}) <- {self.pattern.to_text()}"


# ---------------------------------------------------------------------------
# The three probe queries of Section 2.3.
# ---------------------------------------------------------------------------

_X_SUBJ = Variable("xsubj")
_X_PRED = Variable("xpred")
_X_OBJ = Variable("xobj")


def subj_query(constant: Term) -> GraphPatternQuery:
    """``subjQ(c) := q(x_pred, x_obj) ← (c, x_pred, x_obj)``."""
    tp = TriplePattern(constant, _X_PRED, _X_OBJ)
    return GraphPatternQuery(
        (_X_PRED, _X_OBJ), GraphPattern.leaf(tp), name="subjQ"
    )


def pred_query(constant: Term) -> GraphPatternQuery:
    """``predQ(c) := q(x_subj, x_obj) ← (x_subj, c, x_obj)``."""
    tp = TriplePattern(_X_SUBJ, constant, _X_OBJ)
    return GraphPatternQuery(
        (_X_SUBJ, _X_OBJ), GraphPattern.leaf(tp), name="predQ"
    )


def obj_query(constant: Term) -> GraphPatternQuery:
    """``objQ(c) := q(x_subj, x_pred) ← (x_subj, x_pred, c)``."""
    tp = TriplePattern(_X_SUBJ, _X_PRED, constant)
    return GraphPatternQuery(
        (_X_SUBJ, _X_PRED), GraphPattern.leaf(tp), name="objQ"
    )
