"""Solution mappings µ and the algebra over sets of mappings.

Implements the paper's Section-2.1 formalisation (after Pérez et al. and
Buil-Aranda et al.):

* a *mapping* µ is a partial function from variables V to terms in
  I ∪ B ∪ L — :class:`SolutionMapping`;
* two mappings are *compatible* when they agree on their shared domain;
* the join ``Ω₁ ⋈ Ω₂`` unions all compatible pairs.

Mappings are immutable and hashable so sets of mappings (the Ω of the
paper) can be plain Python sets — graph patterns are evaluated under set
semantics, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import QueryError
from repro.rdf.terms import Term, Variable

__all__ = [
    "SolutionMapping",
    "compatible",
    "join",
    "union",
    "project",
    "EMPTY_MAPPING",
]


class SolutionMapping:
    """An immutable partial function µ : V → (I ∪ B ∪ L).

    Args:
        bindings: mapping from :class:`Variable` to ground terms.

    Raises:
        QueryError: if a key is not a Variable or a value is a Variable.
    """

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, bindings: Optional[Dict[Variable, Term]] = None) -> None:
        bindings = bindings or {}
        for var, term in bindings.items():
            if not isinstance(var, Variable):
                raise QueryError(f"mapping key must be a Variable, got {var!r}")
            if isinstance(term, Variable):
                raise QueryError(
                    f"mapping value must be ground, got variable {term!r}"
                )
        items: Tuple[Tuple[Variable, Term], ...] = tuple(
            sorted(bindings.items(), key=lambda kv: kv[0].name)
        )
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_dict", dict(items))
        object.__setattr__(self, "_hash", hash(items))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SolutionMapping is immutable")

    # -- partial function interface ------------------------------------

    def domain(self) -> FrozenSet[Variable]:
        """The set ``dom(µ)``."""
        return frozenset(self._dict.keys())

    def __getitem__(self, var: Variable) -> Term:
        return self._dict[var]

    def get(self, var: Variable, default: Optional[Term] = None) -> Optional[Term]:
        return self._dict.get(var, default)

    def __contains__(self, var: Variable) -> bool:
        return var in self._dict

    def __len__(self) -> int:
        return len(self._dict)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._dict)

    def items(self) -> Tuple[Tuple[Variable, Term], ...]:
        return self._items

    def as_dict(self) -> Dict[Variable, Term]:
        return dict(self._dict)

    # -- algebra ---------------------------------------------------------

    def compatible_with(self, other: "SolutionMapping") -> bool:
        """True when µ₁ ∪ µ₂ is still a (single-valued) mapping."""
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        for var, term in small._items:
            bound = large._dict.get(var)
            if bound is not None and bound != term:
                return False
        return True

    def merge(self, other: "SolutionMapping") -> "SolutionMapping":
        """The union µ₁ ∪ µ₂ of two *compatible* mappings.

        Raises:
            QueryError: if the mappings are incompatible.
        """
        if not self.compatible_with(other):
            raise QueryError(f"incompatible mappings: {self} vs {other}")
        merged = dict(self._dict)
        merged.update(other._dict)
        return SolutionMapping(merged)

    def restrict(self, variables: Iterable[Variable]) -> "SolutionMapping":
        """Project onto the given variables (drop all other bindings)."""
        keep = set(variables)
        return SolutionMapping(
            {v: t for v, t in self._dict.items() if v in keep}
        )

    def extend(self, var: Variable, term: Term) -> "SolutionMapping":
        """Return a new mapping additionally binding ``var`` to ``term``.

        Raises:
            QueryError: if ``var`` is already bound to a different term.
        """
        bound = self._dict.get(var)
        if bound is not None and bound != term:
            raise QueryError(
                f"variable {var} already bound to {bound}, cannot rebind to {term}"
            )
        merged = dict(self._dict)
        merged[var] = term
        return SolutionMapping(merged)

    # -- value object ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SolutionMapping) and other._items == self._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v.name}->{t.n3()}" for v, t in self._items)
        return f"{{{inner}}}"


EMPTY_MAPPING = SolutionMapping()


def compatible(mu1: SolutionMapping, mu2: SolutionMapping) -> bool:
    """Module-level alias for :meth:`SolutionMapping.compatible_with`."""
    return mu1.compatible_with(mu2)


def join(
    omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]
) -> Set[SolutionMapping]:
    """The paper's ``Ω₁ ⋈ Ω₂``: union of all compatible pairs.

    Implemented as a hash join on the shared variables rather than the
    naive quadratic definition; the result is identical by construction.
    """
    left = list(omega1)
    right = list(omega2)
    if not left or not right:
        return set()
    # Shared variables of a *pair* can vary if domains are heterogeneous,
    # so compute the common domain across the whole sets conservatively:
    # bucket on the intersection of the first elements' domains that is
    # shared by every mapping on each side.
    left_common = frozenset.intersection(*(m.domain() for m in left))
    right_common = frozenset.intersection(*(m.domain() for m in right))
    shared = sorted(left_common & right_common, key=lambda v: v.name)
    if not shared:
        # No variables guaranteed shared: fall back to nested loop.
        return {
            m1.merge(m2)
            for m1 in left
            for m2 in right
            if m1.compatible_with(m2)
        }
    buckets: Dict[Tuple[Term, ...], list] = {}
    for m2 in right:
        key = tuple(m2[v] for v in shared)
        buckets.setdefault(key, []).append(m2)
    out: Set[SolutionMapping] = set()
    for m1 in left:
        key = tuple(m1[v] for v in shared)
        for m2 in buckets.get(key, ()):
            if m1.compatible_with(m2):
                out.add(m1.merge(m2))
    return out


def union(
    omega1: Iterable[SolutionMapping], omega2: Iterable[SolutionMapping]
) -> Set[SolutionMapping]:
    """Set union of two mapping sets (SPARQL ``UNION`` semantics)."""
    return set(omega1) | set(omega2)


def project(
    omega: Iterable[SolutionMapping], variables: Iterable[Variable]
) -> Set[SolutionMapping]:
    """Project every mapping onto ``variables`` (set semantics)."""
    vars_list = list(variables)
    return {m.restrict(vars_list) for m in omega}
