"""Evaluation of graph patterns and graph pattern queries over a graph.

Implements Definition 1 (the ``⟦·⟧_D`` function) and the two query
semantics of Section 2.1:

* ``Q_D`` — answer tuples restricted to ``I ∪ L`` (blank nodes dropped;
  blanks are labelled nulls carrying only partial information);
* ``Q*_D`` — answer tuples that may contain blank nodes, used by the
  semantics of equivalence mappings.

The evaluator is an index-nested-loop join over the graph's dictionary
encoding: each conjunct is compiled once into ID-level slots (a ground
term becomes its integer ID, a variable stays symbolic), partial answers
bind variables to integer IDs, and the graph's ID indexes enumerate the
matches of each conjunct.  Terms are decoded only for final answer rows,
so intermediate join state never touches Python term objects.  A ground
conjunct term that was never interned prunes the whole pattern to the
empty result before any index work.

Conjunct order does not change the result (join is commutative and
associative — property-tested), so the evaluator greedily picks the most
selective unprocessed conjunct, which is the standard BGP heuristic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, Literal, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.gpq.bindings import SolutionMapping
from repro.gpq.pattern import GraphPattern
from repro.gpq.query import GraphPatternQuery

__all__ = [
    "evaluate_pattern",
    "evaluate_query",
    "evaluate_query_star",
    "ask",
    "match_pattern_bindings",
    "compile_conjunct",
    "extend_id_bindings",
]

#: A compiled conjunct position: an integer ID or a still-free Variable.
_Slot = Union[int, Variable]

#: A partial answer: variable -> integer term ID.
_IDBinding = Dict[Variable, int]


def _estimated_cost(
    graph: Graph, tp: TriplePattern, bound: Set[Variable]
) -> Tuple[int, int]:
    """Cheap selectivity estimate for ordering conjuncts.

    Counts positions that are ground *or already bound*; more bound
    positions first, breaking ties by the predicate's triple count.
    """
    bound_positions = 0
    for term in tp:
        if not isinstance(term, Variable) or term in bound:
            bound_positions += 1
    if isinstance(tp.predicate, Variable):
        predicate_count = len(graph)  # bound at runtime at best; unknown here
    else:
        predicate_count = graph.count(predicate=tp.predicate)
    return (-bound_positions, predicate_count)


def _order_conjuncts(
    graph: Graph, conjuncts: List[TriplePattern], optimize: bool
) -> List[TriplePattern]:
    if not optimize or len(conjuncts) <= 1:
        return list(conjuncts)
    remaining = list(conjuncts)
    ordered: List[TriplePattern] = []
    bound: Set[Variable] = set()
    while remaining:
        best = min(remaining, key=lambda tp: _estimated_cost(graph, tp, bound))
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def compile_conjunct(
    graph: Graph, tp: TriplePattern
) -> Optional[Tuple[_Slot, _Slot, _Slot]]:
    """Encode a conjunct's ground positions into dictionary IDs.

    Returns ``None`` when a ground term was never interned (the conjunct
    — hence the whole pattern — cannot match anything), or when the
    subject is a literal (triples cannot have literal subjects).
    """
    if isinstance(tp.subject, Literal):
        return None
    slots: List[_Slot] = []
    for term in tp:
        if isinstance(term, Variable):
            slots.append(term)
        else:
            tid = graph.term_id(term)
            if tid is None:
                return None
            slots.append(tid)
    return (slots[0], slots[1], slots[2])


def extend_id_bindings(
    graph: Graph,
    slots: Tuple[_Slot, _Slot, _Slot],
    partial: _IDBinding,
) -> Iterable[_IDBinding]:
    """Extend one ID-level partial answer with every match of a conjunct."""
    args: List[Optional[int]] = [None, None, None]
    free: List[Tuple[int, Variable]] = []  # (position, variable) still unbound
    for pos, slot in enumerate(slots):
        if isinstance(slot, int):
            args[pos] = slot
        else:
            bound = partial.get(slot)
            if bound is not None:
                args[pos] = bound
            else:
                free.append((pos, slot))
    if not free:
        for _ in graph.triples_ids(args[0], args[1], args[2]):
            yield partial
        return
    if len(free) == 1:
        pos, var = free[0]
        for ids in graph.triples_ids(args[0], args[1], args[2]):
            extended = dict(partial)
            extended[var] = ids[pos]
            yield extended
        return
    # Two or three free positions; a variable may repeat across them
    # (e.g. ``(?x, p, ?x)``), so bind left-to-right and check repeats.
    for ids in graph.triples_ids(args[0], args[1], args[2]):
        extended = dict(partial)
        ok = True
        for pos, var in free:
            tid = ids[pos]
            bound = extended.get(var)
            if bound is None:
                extended[var] = tid
            elif bound != tid:
                ok = False
                break
        if ok:
            yield extended


def _evaluate_ids(
    graph: Graph, conjuncts: Sequence[TriplePattern]
) -> List[_IDBinding]:
    """The join core: all ID-level answers of a conjunct list."""
    frontier: List[_IDBinding] = [{}]
    for tp in conjuncts:
        slots = compile_conjunct(graph, tp)
        if slots is None:
            return []
        next_frontier: List[_IDBinding] = []
        extend = next_frontier.extend
        for partial in frontier:
            extend(extend_id_bindings(graph, slots, partial))
        if not next_frontier:
            return []
        frontier = next_frontier
    return frontier


def match_pattern_bindings(
    graph: Graph, tp: TriplePattern, partial: SolutionMapping
) -> Iterable[SolutionMapping]:
    """Extend a partial mapping with every match of one triple pattern.

    Term-level convenience kept for external callers; the batch evaluator
    below uses the ID-level equivalent internally.
    """
    instantiated = tp.substitute(partial.as_dict())
    for triple in graph.match(instantiated):
        binding = instantiated.matches(triple)
        if binding is None:
            continue
        extended = partial
        ok = True
        for var, term in binding.items():
            bound = extended.get(var)
            if bound is None:
                extended = extended.extend(var, term)
            elif bound != term:
                ok = False
                break
        if ok:
            yield extended


def evaluate_pattern(
    graph: Graph,
    pattern: GraphPattern,
    optimize: bool = True,
) -> Set[SolutionMapping]:
    """Compute ``⟦GP⟧_D``: all mappings µ with ``dom(µ) = var(GP)``
    such that every conjunct instantiated by µ is a triple of ``graph``.

    Args:
        graph: the RDF database ``D``.
        pattern: the graph pattern ``GP``.
        optimize: reorder conjuncts by selectivity (results identical).
    """
    conjuncts = _order_conjuncts(graph, pattern.conjuncts(), optimize)
    decode = graph.decode_id
    return {
        SolutionMapping({var: decode(tid) for var, tid in binding.items()})
        for binding in _evaluate_ids(graph, conjuncts)
    }


def evaluate_query_star(
    graph: Graph, query: GraphPatternQuery, optimize: bool = True
) -> Set[Tuple[Term, ...]]:
    """The blank-keeping semantics ``Q*_D`` (Section 2.1).

    Returns all head tuples, including those containing blank nodes.
    Projection and deduplication happen on ID tuples; only the distinct
    answer rows are decoded.
    """
    conjuncts = _order_conjuncts(graph, query.pattern.conjuncts(), optimize)
    head = query.head
    rows = {
        tuple(binding[var] for var in head)
        for binding in _evaluate_ids(graph, conjuncts)
    }
    decode = graph.decode_id
    return {tuple(decode(tid) for tid in row) for row in rows}


def evaluate_query(
    graph: Graph, query: GraphPatternQuery, optimize: bool = True
) -> Set[Tuple[Term, ...]]:
    """The certain-information semantics ``Q_D``.

    Tuples containing blank nodes (labelled nulls / partial information)
    are dropped, mirroring the treatment of nulls in relational data
    exchange.
    """
    return {
        answer
        for answer in evaluate_query_star(graph, query, optimize=optimize)
        if not any(isinstance(term, BlankNode) for term in answer)
    }


def ask(graph: Graph, query: GraphPatternQuery, optimize: bool = True) -> bool:
    """Boolean evaluation: does the body match at all?

    For arity-0 queries this is the BCQ semantics of Section 4; for
    non-Boolean queries it reports whether ``Q*_D`` is non-empty.
    Short-circuits on the first full match.
    """
    conjuncts = _order_conjuncts(graph, query.pattern.conjuncts(), optimize)
    compiled = []
    for tp in conjuncts:
        slots = compile_conjunct(graph, tp)
        if slots is None:
            return False
        compiled.append(slots)
    return _ask_rec(graph, compiled, 0, {})


def _ask_rec(
    graph: Graph,
    compiled: List[Tuple[_Slot, _Slot, _Slot]],
    index: int,
    partial: _IDBinding,
) -> bool:
    if index == len(compiled):
        return True
    for extended in extend_id_bindings(graph, compiled[index], partial):
        if _ask_rec(graph, compiled, index + 1, extended):
            return True
    return False
