"""Evaluation of graph patterns and graph pattern queries over a graph.

Implements Definition 1 (the ``⟦·⟧_D`` function) and the two query
semantics of Section 2.1:

* ``Q_D`` — answer tuples restricted to ``I ∪ L`` (blank nodes dropped;
  blanks are labelled nulls carrying only partial information);
* ``Q*_D`` — answer tuples that may contain blank nodes, used by the
  semantics of equivalence mappings.

The evaluator is an index-nested-loop join: conjuncts are processed one at
a time, each partial mapping is substituted into the next triple pattern
and the graph indexes enumerate its matches.  Conjunct order does not
change the result (join is commutative/associative — property-tested), so
the evaluator greedily picks the most selective unprocessed conjunct,
which is the standard BGP heuristic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.gpq.bindings import SolutionMapping
from repro.gpq.pattern import GraphPattern
from repro.gpq.query import GraphPatternQuery

__all__ = [
    "evaluate_pattern",
    "evaluate_query",
    "evaluate_query_star",
    "ask",
    "match_pattern_bindings",
]


def _estimated_cost(
    graph: Graph, tp: TriplePattern, bound: Set[Variable]
) -> Tuple[int, int]:
    """Cheap selectivity estimate for ordering conjuncts.

    Counts positions that are ground *or already bound*; more bound
    positions first, breaking ties by the predicate's triple count.
    """
    bound_positions = 0
    for term in tp:
        if not isinstance(term, Variable) or term in bound:
            bound_positions += 1
    if isinstance(tp.predicate, Variable) and tp.predicate not in bound:
        predicate_count = len(graph)
    else:
        if isinstance(tp.predicate, Variable):
            predicate_count = len(graph)  # bound at runtime, unknown here
        else:
            predicate_count = graph.count(predicate=tp.predicate)
    return (-bound_positions, predicate_count)


def _order_conjuncts(
    graph: Graph, conjuncts: List[TriplePattern], optimize: bool
) -> List[TriplePattern]:
    if not optimize or len(conjuncts) <= 1:
        return list(conjuncts)
    remaining = list(conjuncts)
    ordered: List[TriplePattern] = []
    bound: Set[Variable] = set()
    while remaining:
        best = min(remaining, key=lambda tp: _estimated_cost(graph, tp, bound))
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def match_pattern_bindings(
    graph: Graph, tp: TriplePattern, partial: SolutionMapping
) -> Iterable[SolutionMapping]:
    """Extend a partial mapping with every match of one triple pattern."""
    instantiated = tp.substitute(partial.as_dict())
    for triple in graph.match(instantiated):
        binding = instantiated.matches(triple)
        if binding is None:
            continue
        extended = partial
        ok = True
        for var, term in binding.items():
            bound = extended.get(var)
            if bound is None:
                extended = extended.extend(var, term)
            elif bound != term:
                ok = False
                break
        if ok:
            yield extended


def evaluate_pattern(
    graph: Graph,
    pattern: GraphPattern,
    optimize: bool = True,
) -> Set[SolutionMapping]:
    """Compute ``⟦GP⟧_D``: all mappings µ with ``dom(µ) = var(GP)``
    such that every conjunct instantiated by µ is a triple of ``graph``.

    Args:
        graph: the RDF database ``D``.
        pattern: the graph pattern ``GP``.
        optimize: reorder conjuncts by selectivity (results identical).
    """
    conjuncts = _order_conjuncts(graph, pattern.conjuncts(), optimize)
    frontier: List[SolutionMapping] = [SolutionMapping()]
    for tp in conjuncts:
        next_frontier: List[SolutionMapping] = []
        for partial in frontier:
            next_frontier.extend(match_pattern_bindings(graph, tp, partial))
        if not next_frontier:
            return set()
        frontier = next_frontier
    return set(frontier)


def evaluate_query_star(
    graph: Graph, query: GraphPatternQuery, optimize: bool = True
) -> Set[Tuple[Term, ...]]:
    """The blank-keeping semantics ``Q*_D`` (Section 2.1).

    Returns all head tuples, including those containing blank nodes.
    """
    omega = evaluate_pattern(graph, query.pattern, optimize=optimize)
    return {tuple(mu[v] for v in query.head) for mu in omega}


def evaluate_query(
    graph: Graph, query: GraphPatternQuery, optimize: bool = True
) -> Set[Tuple[Term, ...]]:
    """The certain-information semantics ``Q_D``.

    Tuples containing blank nodes (labelled nulls / partial information)
    are dropped, mirroring the treatment of nulls in relational data
    exchange.
    """
    return {
        answer
        for answer in evaluate_query_star(graph, query, optimize=optimize)
        if not any(isinstance(term, BlankNode) for term in answer)
    }


def ask(graph: Graph, query: GraphPatternQuery, optimize: bool = True) -> bool:
    """Boolean evaluation: does the body match at all?

    For arity-0 queries this is the BCQ semantics of Section 4; for
    non-Boolean queries it reports whether ``Q*_D`` is non-empty.
    """
    conjuncts = _order_conjuncts(graph, query.pattern.conjuncts(), optimize)
    return _ask_rec(graph, conjuncts, 0, SolutionMapping())


def _ask_rec(
    graph: Graph,
    conjuncts: List[TriplePattern],
    index: int,
    partial: SolutionMapping,
) -> bool:
    if index == len(conjuncts):
        return True
    for extended in match_pattern_bindings(graph, conjuncts[index], partial):
        if _ask_rec(graph, conjuncts, index + 1, extended):
            return True
    return False
