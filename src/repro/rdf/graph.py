"""In-memory indexed RDF graph (triple store).

The store keeps three nested-dictionary indexes — SPO, POS and OSP — so any
triple pattern with at least one ground position is answered by dictionary
lookups instead of a scan.  This is the classic Hexastore-lite layout used
by in-memory RDF engines; three of the six orderings suffice because each
covers two access paths:

* ``SPO`` answers ``(s, ?, ?)`` and ``(s, p, ?)``;
* ``POS`` answers ``(?, p, ?)`` and ``(?, p, o)``;
* ``OSP`` answers ``(?, ?, o)`` and ``(s, ?, o)``.

Fully ground lookups use the triple set directly and fully unbound lookups
scan it.  All mutation goes through :meth:`Graph.add` / :meth:`Graph.remove`
so the indexes can never drift from the triple set (a property-tested
invariant).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import BlankNode, IRI, Literal, Term, Variable
from repro.rdf.triples import Triple, TriplePattern

__all__ = ["Graph"]

_Index = Dict[Term, Dict[Term, Set[Term]]]


def _index_add(index: _Index, a: Term, b: Term, c: Term) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: Term, b: Term, c: Term) -> None:
    level1 = index.get(a)
    if level1 is None:
        return
    level2 = level1.get(b)
    if level2 is None:
        return
    level2.discard(c)
    if not level2:
        del level1[b]
        if not level1:
            del index[a]


class Graph:
    """A mutable set of RDF triples with pattern-matching access.

    Args:
        triples: optional initial triples.
        name: optional graph name (used by :class:`repro.rdf.dataset.Dataset`
            and in diagnostics).

    The class supports the container protocol (``len``, ``in``, iteration)
    plus set-style algebra (``|``, ``&``, ``-``) which returns new graphs.
    """

    __slots__ = ("_triples", "_spo", "_pos", "_osp", "name")

    def __init__(
        self,
        triples: Optional[Iterable[Triple]] = None,
        name: str = "",
    ) -> None:
        self._triples: Set[Triple] = set()
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self.name = name
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; returns True if it was not already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        s, p, o = triple.subject, triple.predicate, triple.object
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; returns True if it was present."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        s, p, o = triple.subject, triple.predicate, triple.object
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        return True

    def clear(self) -> None:
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __bool__(self) -> bool:
        return bool(self._triples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._triples == other._triples

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph is unhashable; use canonical_hash() instead")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} with {len(self)} triples>"

    # ------------------------------------------------------------------
    # Pattern access
    # ------------------------------------------------------------------

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching the given ground positions.

        ``None`` (or a :class:`Variable`) in a position acts as a wildcard.
        The most selective index available is used.
        """
        if isinstance(subject, Variable):
            subject = None
        if isinstance(predicate, Variable):
            predicate = None
        if isinstance(object, Variable):
            object = None

        if subject is not None and predicate is not None and object is not None:
            candidate = Triple(subject, predicate, object)
            if candidate in self._triples:
                yield candidate
            return

        if subject is not None:
            by_pred = self._spo.get(subject)
            if not by_pred:
                return
            if predicate is not None:
                for obj in by_pred.get(predicate, ()):
                    yield Triple(subject, predicate, obj)
            elif object is not None:
                by_subj = self._osp.get(object)
                if not by_subj:
                    return
                for pred in by_subj.get(subject, ()):
                    yield Triple(subject, pred, object)
            else:
                for pred, objs in by_pred.items():
                    for obj in objs:
                        yield Triple(subject, pred, obj)
            return

        if predicate is not None:
            by_obj = self._pos.get(predicate)
            if not by_obj:
                return
            if object is not None:
                for subj in by_obj.get(object, ()):
                    yield Triple(subj, predicate, object)
            else:
                for obj, subjs in by_obj.items():
                    for subj in subjs:
                        yield Triple(subj, predicate, obj)
            return

        if object is not None:
            by_subj = self._osp.get(object)
            if not by_subj:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield Triple(subj, pred, object)
            return

        yield from self._triples

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate over triples matching a :class:`TriplePattern`.

        Ground positions (IRIs, literals, blank nodes) constrain the lookup;
        variable positions are wildcards.  Repeated variables are checked
        (e.g. ``(?x, p, ?x)`` only matches triples with equal subject and
        object).  A literal in the subject position matches nothing, since
        triples cannot have literal subjects.
        """
        subject = None if isinstance(pattern.subject, Variable) else pattern.subject
        predicate = (
            None if isinstance(pattern.predicate, Variable) else pattern.predicate
        )
        object = None if isinstance(pattern.object, Variable) else pattern.object
        if isinstance(subject, Literal):
            return
        for triple in self.triples(subject, predicate, object):
            if pattern.matches(triple) is not None:
                yield triple

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Count matching triples without materialising them all.

        Counts for single-ground-position patterns come straight from the
        indexes; other shapes fall back to iteration.
        """
        has_s = subject is not None and not isinstance(subject, Variable)
        has_p = predicate is not None and not isinstance(predicate, Variable)
        has_o = object is not None and not isinstance(object, Variable)
        if not (has_s or has_p or has_o):
            return len(self._triples)
        if has_s and not has_p and not has_o:
            by_pred = self._spo.get(subject, {})
            return sum(len(objs) for objs in by_pred.values())
        if has_p and not has_s and not has_o:
            by_obj = self._pos.get(predicate, {})
            return sum(len(subjs) for subjs in by_obj.values())
        if has_o and not has_s and not has_p:
            by_subj = self._osp.get(object, {})
            return sum(len(preds) for preds in by_subj.values())
        return sum(1 for _ in self.triples(subject, predicate, object))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def subjects(self) -> Set[Term]:
        return set(self._spo.keys())

    def predicates(self) -> Set[Term]:
        return set(self._pos.keys())

    def objects(self) -> Set[Term]:
        return set(self._osp.keys())

    def terms(self) -> Set[Term]:
        """All terms occurring in any position."""
        out: Set[Term] = set()
        for triple in self._triples:
            out.update(triple.terms())
        return out

    def iris(self) -> Set[IRI]:
        """All IRIs occurring in the graph — the peer schema of Section 2.2."""
        return {t for t in self.terms() if isinstance(t, IRI)}

    def blank_nodes(self) -> Set[BlankNode]:
        return {t for t in self.terms() if isinstance(t, BlankNode)}

    def literals(self) -> Set[Literal]:
        return {t for t in self.terms() if isinstance(t, Literal)}

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def copy(self, name: str = "") -> "Graph":
        return Graph(self._triples, name=name or self.name)

    def __or__(self, other: "Graph") -> "Graph":
        out = self.copy()
        out.add_all(other)
        return out

    def __and__(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph(t for t in small if t in large)

    def __sub__(self, other: "Graph") -> "Graph":
        return Graph(t for t in self if t not in other)

    def issubset(self, other: "Graph") -> bool:
        return all(t in other for t in self)

    # ------------------------------------------------------------------
    # Statistics (used by the SPARQL planner)
    # ------------------------------------------------------------------

    def predicate_histogram(self) -> Dict[Term, int]:
        """Triple count per predicate, for join-order selectivity."""
        return {
            pred: sum(len(subjs) for subjs in by_obj.values())
            for pred, by_obj in self._pos.items()
        }

    def sorted_triples(self) -> List[Triple]:
        """Triples in the deterministic library-wide order."""
        return sorted(self._triples, key=Triple.sort_key)

    # ------------------------------------------------------------------
    # Debug / verification helpers
    # ------------------------------------------------------------------

    def check_index_coherence(self) -> bool:
        """Verify all three indexes agree with the triple set.

        Used by property tests; O(n) in the graph size.
        """
        spo = {
            Triple(s, p, o)
            for s, by_p in self._spo.items()
            for p, objs in by_p.items()
            for o in objs
        }
        pos = {
            Triple(s, p, o)
            for p, by_o in self._pos.items()
            for o, subjs in by_o.items()
            for s in subjs
        }
        osp = {
            Triple(s, p, o)
            for o, by_s in self._osp.items()
            for s, preds in by_s.items()
            for p in preds
        }
        return spo == self._triples and pos == self._triples and osp == self._triples
