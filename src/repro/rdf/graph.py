"""In-memory indexed RDF graph (triple store), dictionary-encoded.

The store interns every term into an integer ID through a
:class:`~repro.rdf.dictionary.TermDictionary` and keeps three
nested-dictionary indexes — SPO, POS and OSP — over those IDs, so any
triple pattern with at least one ground position is answered by integer
dictionary lookups instead of a scan over Python term objects.  This is
the classic Hexastore-lite layout used by in-memory RDF engines; three of
the six orderings suffice because each covers two access paths:

* ``SPO`` answers ``(s, ?, ?)`` and ``(s, p, ?)``;
* ``POS`` answers ``(?, p, ?)`` and ``(?, p, o)``;
* ``OSP`` answers ``(?, ?, o)`` and ``(s, ?, o)``.

Fully ground lookups probe the ID-triple set directly and fully unbound
lookups scan it.  All mutation goes through :meth:`Graph.add` /
:meth:`Graph.remove` so the indexes can never drift from the triple set
(a property-tested invariant).

The triple set and the index leaves are insertion-ordered mappings, not
hash sets, so every iteration order is a pure function of the sequence
of ``add`` calls.  With hash sets of integers the order would follow
the ID *values*, which depend on what else was interned into the shared
process-wide dictionary first — and that turned demand-driven
(order-sensitive) federated executions into functions of unrelated
earlier work in the same process.

The public API is term-level and unchanged from the pre-dictionary store:
callers pass and receive :class:`~repro.rdf.triples.Triple` objects and
never see IDs.  The ID-level access path (:meth:`Graph.triples_ids`,
:meth:`Graph.term_id`, :meth:`Graph.decode_id`) is exposed for the query
evaluator, which joins on integers and decodes only final answer rows.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.dictionary import IDTriple, TermDictionary, default_dictionary
from repro.rdf.terms import BlankNode, IRI, Literal, Term, Variable
from repro.rdf.triples import Triple, TriplePattern

__all__ = ["Graph"]

# The leaf level is an insertion-ordered Dict[int, None] used as an
# ordered set: iteration must not depend on the ID values (see module
# docstring).
_Leaf = Dict[int, None]
_Index = Dict[int, Dict[int, _Leaf]]


def _index_add(index: _Index, a: int, b: int, c: int) -> None:
    index.setdefault(a, {}).setdefault(b, {})[c] = None


def _index_remove(index: _Index, a: int, b: int, c: int) -> None:
    level1 = index.get(a)
    if level1 is None:
        return
    level2 = level1.get(b)
    if level2 is None:
        return
    level2.pop(c, None)
    if not level2:
        del level1[b]
        if not level1:
            del index[a]


def _copy_index(index: _Index) -> _Index:
    return {
        a: {b: dict(c) for b, c in level1.items()}
        for a, level1 in index.items()
    }


class Graph:
    """A mutable set of RDF triples with pattern-matching access.

    Args:
        triples: optional initial triples.
        name: optional graph name (used by :class:`repro.rdf.dataset.Dataset`
            and in diagnostics).
        dictionary: term dictionary to encode against; defaults to the
            process-wide shared dictionary, so independently built graphs
            agree on IDs and set algebra between them stays integer-level.

    The class supports the container protocol (``len``, ``in``, iteration)
    plus set-style algebra (``|``, ``&``, ``-``) which returns new graphs.
    """

    __slots__ = (
        "_dict",
        "_ids",
        "_spo",
        "_pos",
        "_osp",
        "_s_counts",
        "_p_counts",
        "_o_counts",
        "_epoch",
        "serial",
        "name",
    )

    #: Process-wide source of per-instance serial numbers: together with
    #: the mutation epoch this identifies a graph *state*, which is what
    #: the cross-query plan cache keys on.
    _serials = itertools.count(1)

    def __init__(
        self,
        triples: Optional[Iterable[Triple]] = None,
        name: str = "",
        dictionary: Optional[TermDictionary] = None,
    ) -> None:
        self._dict: TermDictionary = (
            dictionary if dictionary is not None else default_dictionary()
        )
        self._ids: Dict[IDTriple, None] = {}
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        # Aggregate triple counts per term-in-position, maintained
        # incrementally so single-position count_ids probes are O(1).
        self._s_counts: Dict[int, int] = {}
        self._p_counts: Dict[int, int] = {}
        self._o_counts: Dict[int, int] = {}
        self._epoch: int = 0
        self.serial: int = next(Graph._serials)
        self.name = name
        if triples is not None:
            for triple in triples:
                self.add(triple)

    @property
    def epoch(self) -> int:
        """Mutation counter: bumps on every successful add/remove/clear.

        ``(serial, epoch)`` identifies a graph state; the plan cache uses
        it to invalidate prepared plans when the data changes.
        """
        return self._epoch

    # ------------------------------------------------------------------
    # Dictionary access
    # ------------------------------------------------------------------

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary this graph encodes against."""
        return self._dict

    def term_id(self, term: Term) -> Optional[int]:
        """The ID of ``term``, or ``None`` if it was never interned.

        A ``None`` result means no triple of this graph (nor of any other
        graph sharing the dictionary) can contain the term, which lets
        the evaluator prune whole patterns before touching an index.
        """
        return self._dict.lookup(term)

    def decode_id(self, tid: int) -> Term:
        """The term with dictionary ID ``tid``."""
        return self._dict.decode(tid)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; returns True if it was not already present."""
        return self._add_ids(self._dict.encode_triple(triple))

    def _add_ids(self, ids: IDTriple) -> bool:
        if ids in self._ids:
            return False
        self._ids[ids] = None
        s, p, o = ids
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        counts = self._s_counts
        counts[s] = counts.get(s, 0) + 1
        counts = self._p_counts
        counts[p] = counts.get(p, 0) + 1
        counts = self._o_counts
        counts[o] = counts.get(o, 0) + 1
        self._epoch += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns how many were new."""
        if isinstance(triples, Graph) and triples._dict is self._dict:
            return sum(1 for t in triples._ids if self._add_ids(t))
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; returns True if it was present."""
        ids = self._lookup_ids(triple)
        if ids is None or ids not in self._ids:
            return False
        del self._ids[ids]
        s, p, o = ids
        _index_remove(self._spo, s, p, o)
        _index_remove(self._pos, p, o, s)
        _index_remove(self._osp, o, s, p)
        for counts, key in (
            (self._s_counts, s),
            (self._p_counts, p),
            (self._o_counts, o),
        ):
            left = counts[key] - 1
            if left:
                counts[key] = left
            else:
                del counts[key]
        self._epoch += 1
        return True

    def clear(self) -> None:
        self._ids.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._s_counts.clear()
        self._p_counts.clear()
        self._o_counts.clear()
        self._epoch += 1

    def _lookup_ids(self, triple: Triple) -> Optional[IDTriple]:
        """Encode a triple without interning; None if any term is unknown."""
        lookup = self._dict.lookup
        s = lookup(triple.subject)
        if s is None:
            return None
        p = lookup(triple.predicate)
        if p is None:
            return None
        o = lookup(triple.object)
        if o is None:
            return None
        return (s, p, o)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, triple: Triple) -> bool:
        ids = self._lookup_ids(triple)
        return ids is not None and ids in self._ids

    def __iter__(self) -> Iterator[Triple]:
        decode = self._dict.decode_triple
        for ids in self._ids:
            yield decode(ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if other._dict is self._dict:
            return self._ids == other._ids
        return set(self) == set(other)

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph is unhashable; use canonical_hash() instead")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} with {len(self)} triples>"

    # ------------------------------------------------------------------
    # Pattern access
    # ------------------------------------------------------------------

    def triples_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> Iterator[IDTriple]:
        """Iterate over ID-triples matching the given ground-ID positions.

        ``None`` in a position is a wildcard.  The most selective index
        available is used.  This is the integer-level access path the
        query evaluator joins on.
        """
        if subject is not None and predicate is not None and object is not None:
            candidate = (subject, predicate, object)
            if candidate in self._ids:
                yield candidate
            return

        if subject is not None:
            by_pred = self._spo.get(subject)
            if not by_pred:
                return
            if predicate is not None:
                for obj in by_pred.get(predicate, ()):
                    yield (subject, predicate, obj)
            elif object is not None:
                by_subj = self._osp.get(object)
                if not by_subj:
                    return
                for pred in by_subj.get(subject, ()):
                    yield (subject, pred, object)
            else:
                for pred, objs in by_pred.items():
                    for obj in objs:
                        yield (subject, pred, obj)
            return

        if predicate is not None:
            by_obj = self._pos.get(predicate)
            if not by_obj:
                return
            if object is not None:
                for subj in by_obj.get(object, ()):
                    yield (subj, predicate, object)
            else:
                for obj, subjs in by_obj.items():
                    for subj in subjs:
                        yield (subj, predicate, obj)
            return

        if object is not None:
            by_subj = self._osp.get(object)
            if not by_subj:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield (subj, pred, object)
            return

        yield from self._ids

    def _resolve(self, term: Optional[Term]) -> Tuple[Optional[int], bool]:
        """Map a term-level position to (ID, known): Variables and None are
        wildcards; a ground term absent from the dictionary is unknown."""
        if term is None or isinstance(term, Variable):
            return None, True
        tid = self._dict.lookup(term)
        return tid, tid is not None

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching the given ground positions.

        ``None`` (or a :class:`Variable`) in a position acts as a wildcard.
        The most selective index available is used.
        """
        s, known = self._resolve(subject)
        if not known:
            return
        p, known = self._resolve(predicate)
        if not known:
            return
        o, known = self._resolve(object)
        if not known:
            return
        decode = self._dict.decode_triple
        for ids in self.triples_ids(s, p, o):
            yield decode(ids)

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate over triples matching a :class:`TriplePattern`.

        Ground positions (IRIs, literals, blank nodes) constrain the lookup;
        variable positions are wildcards.  Repeated variables are checked
        (e.g. ``(?x, p, ?x)`` only matches triples with equal subject and
        object) — at the integer level, before any decoding.  A literal in
        the subject position matches nothing, since triples cannot have
        literal subjects.
        """
        terms = (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(terms[0], Literal):
            return
        lookup = self._dict.lookup
        args: List[Optional[int]] = [None, None, None]
        seen: Dict[Variable, int] = {}
        constraints: List[Tuple[int, int]] = []
        for pos, term in enumerate(terms):
            if isinstance(term, Variable):
                first = seen.get(term)
                if first is None:
                    seen[term] = pos
                else:
                    constraints.append((first, pos))
            else:
                tid = lookup(term)
                if tid is None:
                    return
                args[pos] = tid
        decode = self._dict.decode_triple
        if constraints:
            for ids in self.triples_ids(args[0], args[1], args[2]):
                if all(ids[i] == ids[j] for i, j in constraints):
                    yield decode(ids)
        else:
            for ids in self.triples_ids(args[0], args[1], args[2]):
                yield decode(ids)

    def count_ids(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object: Optional[int] = None,
    ) -> int:
        """Count ID-triples matching the given ground-ID positions.

        Every shape is answered without materialising triples or walking
        an index level: single-position counts come from the maintained
        per-position aggregate count dictionaries (O(1)), two-position
        counts are a leaf length, and the fully ground case is a
        membership probe.  This is the cardinality oracle the SPARQL
        planner orders joins with, so it must stay O(1) per probe.
        """
        s, p, o = subject, predicate, object
        if s is None and p is None and o is None:
            return len(self._ids)
        if s is not None:
            if p is not None and o is not None:
                return 1 if (s, p, o) in self._ids else 0
            if p is not None:
                return len(self._spo.get(s, {}).get(p, ()))
            if o is not None:
                return len(self._osp.get(o, {}).get(s, ()))
            return self._s_counts.get(s, 0)
        if p is not None:
            if o is not None:
                return len(self._pos.get(p, {}).get(o, ()))
            return self._p_counts.get(p, 0)
        return self._o_counts.get(o, 0)

    def count_pattern(self, pattern: TriplePattern) -> int:
        """Exact match count of a triple pattern.

        Ground positions resolve through the dictionary and the count
        comes straight from :meth:`count_ids` — O(1), no triple
        materialisation.  Repeated variables (e.g. ``(?x, p, ?x)``) are
        answered from index *leaf* lengths and membership probes — one
        probe per distinct key of the relevant index level, never one
        per matching triple.  A literal subject or an uninterned ground
        term counts zero.  This is the per-endpoint cardinality oracle
        of the federated cost model.
        """
        terms = (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(terms[0], Literal):
            return 0
        args: List[Optional[int]] = [None, None, None]
        seen: Dict[Variable, int] = {}
        constraints: List[Tuple[int, int]] = []
        for pos, term in enumerate(terms):
            if isinstance(term, Variable):
                first = seen.get(term)
                if first is None:
                    seen[term] = pos
                else:
                    constraints.append((first, pos))
            else:
                tid = self._dict.lookup(term)
                if tid is None:
                    return 0
                args[pos] = tid
        if not constraints:
            return self.count_ids(args[0], args[1], args[2])
        return self._count_repeated(args, constraints)

    def _count_repeated(
        self, args: List[Optional[int]], constraints: List[Tuple[int, int]]
    ) -> int:
        """Count matches of a pattern with repeated variables.

        Each shape is answered from one index level with membership
        probes or leaf lengths — O(distinct keys), never O(matches).
        Ground positions never participate in a constraint (a repeated
        variable occupies both constrained positions), so the dispatch
        below is exhaustive over the repeat shapes.
        """
        shape = frozenset(constraints)
        s, p, o = args
        if shape == {(0, 2)}:  # (?x, ·, ?x): subject == object
            if p is not None:
                by_obj = self._pos.get(p, {})
                return sum(1 for obj, subjs in by_obj.items() if obj in subjs)
            osp = self._osp
            return sum(
                len(osp.get(subj, {}).get(subj, ())) for subj in self._spo
            )
        if shape == {(0, 1)}:  # (?x, ?x, ·): subject == predicate
            if o is not None:
                by_subj = self._osp.get(o, {})
                return sum(
                    1 for subj, preds in by_subj.items() if subj in preds
                )
            return sum(
                len(by_pred.get(subj, ()))
                for subj, by_pred in self._spo.items()
            )
        if shape == {(1, 2)}:  # (·, ?x, ?x): predicate == object
            if s is not None:
                by_pred = self._spo.get(s, {})
                return sum(
                    1 for pred, objs in by_pred.items() if pred in objs
                )
            return sum(
                len(by_obj.get(pred, ()))
                for pred, by_obj in self._pos.items()
            )
        # (?x, ?x, ?x): all three positions equal.
        return sum(
            1
            for subj, by_pred in self._spo.items()
            if subj in by_pred.get(subj, ())
        )

    def add_id_triples(
        self, ids: Iterable[IDTriple], dictionary: TermDictionary
    ) -> int:
        """Bulk-add already-encoded ID triples; returns how many were new.

        The caller must pass the dictionary the IDs were encoded against
        so a cross-dictionary mix-up fails loudly instead of silently
        storing garbage.  Used by the federated executor to land pulled
        peer relations in its local cache graph without decoding.

        Raises:
            ValueError: if ``dictionary`` is not this graph's dictionary.
        """
        if dictionary is not self._dict:
            raise ValueError(
                "add_id_triples requires the graph's own dictionary; "
                "IDs from a foreign dictionary are meaningless here"
            )
        return sum(1 for t in ids if self._add_ids(t))

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Count matching triples without materialising them all.

        Resolves the term-level positions to IDs and delegates to
        :meth:`count_ids`.
        """
        s, known = self._resolve(subject)
        if not known:
            return 0
        p, known = self._resolve(predicate)
        if not known:
            return 0
        o, known = self._resolve(object)
        if not known:
            return 0
        return self.count_ids(s, p, o)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def subjects(self) -> Set[Term]:
        decode = self._dict.decode
        return {decode(i) for i in self._spo.keys()}

    def predicates(self) -> Set[Term]:
        decode = self._dict.decode
        return {decode(i) for i in self._pos.keys()}

    def objects(self) -> Set[Term]:
        decode = self._dict.decode
        return {decode(i) for i in self._osp.keys()}

    def _term_ids(self) -> Set[int]:
        out: Set[int] = set()
        for s, p, o in self._ids:
            out.add(s)
            out.add(p)
            out.add(o)
        return out

    def terms(self) -> Set[Term]:
        """All terms occurring in any position."""
        decode = self._dict.decode
        return {decode(i) for i in self._term_ids()}

    def iris(self) -> Set[IRI]:
        """All IRIs occurring in the graph — the peer schema of Section 2.2."""
        return {t for t in self.terms() if isinstance(t, IRI)}

    def blank_nodes(self) -> Set[BlankNode]:
        return {t for t in self.terms() if isinstance(t, BlankNode)}

    def literals(self) -> Set[Literal]:
        return {t for t in self.terms() if isinstance(t, Literal)}

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def copy(self, name: str = "") -> "Graph":
        out = Graph(name=name or self.name, dictionary=self._dict)
        out._ids = dict(self._ids)
        out._spo = _copy_index(self._spo)
        out._pos = _copy_index(self._pos)
        out._osp = _copy_index(self._osp)
        out._s_counts = dict(self._s_counts)
        out._p_counts = dict(self._p_counts)
        out._o_counts = dict(self._o_counts)
        return out

    def _from_ids(self, ids: Iterable[IDTriple], name: str = "") -> "Graph":
        out = Graph(name=name, dictionary=self._dict)
        for t in ids:
            out._add_ids(t)
        return out

    def __or__(self, other: "Graph") -> "Graph":
        out = self.copy()
        out.add_all(other)
        return out

    def __and__(self, other: "Graph") -> "Graph":
        if other._dict is self._dict:
            small, large = (
                (self, other) if len(self) <= len(other) else (other, self)
            )
            return self._from_ids(
                t for t in small._ids if t in large._ids
            )
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        return Graph(t for t in small if t in large)

    def __sub__(self, other: "Graph") -> "Graph":
        if other._dict is self._dict:
            return self._from_ids(
                t for t in self._ids if t not in other._ids
            )
        return Graph(t for t in self if t not in other)

    def issubset(self, other: "Graph") -> bool:
        if other._dict is self._dict:
            return self._ids.keys() <= other._ids.keys()
        return all(t in other for t in self)

    # ------------------------------------------------------------------
    # Columnar run access (used by the batch execution engine)
    # ------------------------------------------------------------------

    def runs(self, order: str) -> _Index:
        """One nested index as grouped runs — READ-ONLY.

        ``order`` is ``"spo"``, ``"pos"`` or ``"osp"``.  The returned
        nested mapping is the live index: two dictionary levels keyed by
        ID, whose leaves are insertion-ordered ID runs.  The batch
        engine consumes whole runs at a time (bulk ``extend`` into
        columns, group-at-a-time merge joins keyed on the second index
        level), which is why the accessor exposes the index structure
        instead of an iterator of triples.  Runs are grouped by their
        index key and their iteration order is the deterministic
        insertion order — callers must never mutate them.

        Raises:
            ValueError: for an unknown order name.
        """
        if order == "spo":
            return self._spo
        if order == "pos":
            return self._pos
        if order == "osp":
            return self._osp
        raise ValueError(f"unknown index order {order!r}")

    def contains_ids(self, subject: int, predicate: int, object: int) -> bool:
        """Membership probe on an already-encoded ID triple — O(1)."""
        return (subject, predicate, object) in self._ids

    def id_triples(self) -> Iterator[IDTriple]:
        """All ID triples in deterministic insertion order."""
        return iter(self._ids)

    # ------------------------------------------------------------------
    # Statistics (used by the SPARQL planner)
    # ------------------------------------------------------------------

    def predicate_histogram(self) -> Dict[Term, int]:
        """Triple count per predicate, for join-order selectivity."""
        decode = self._dict.decode
        return {
            decode(pred): count for pred, count in self._p_counts.items()
        }

    def sorted_triples(self) -> List[Triple]:
        """Triples in the deterministic library-wide order."""
        return sorted(self, key=Triple.sort_key)

    # ------------------------------------------------------------------
    # Debug / verification helpers
    # ------------------------------------------------------------------

    def check_index_coherence(self) -> bool:
        """Verify all three indexes agree with the ID-triple set.

        Used by property tests; O(n) in the graph size.
        """
        spo = {
            (s, p, o)
            for s, by_p in self._spo.items()
            for p, objs in by_p.items()
            for o in objs
        }
        pos = {
            (s, p, o)
            for p, by_o in self._pos.items()
            for o, subjs in by_o.items()
            for s in subjs
        }
        osp = {
            (s, p, o)
            for o, by_s in self._osp.items()
            for s, preds in by_s.items()
            for p in preds
        }
        ids = set(self._ids)
        return spo == ids and pos == ids and osp == ids
