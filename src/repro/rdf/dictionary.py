"""Term dictionary: interning RDF terms to dense integer IDs.

Dictionary encoding is the classic trick of column stores and RDF engines
(RDF-3X, Hexastore, HDT): every distinct term is assigned a small integer
once, and all storage and join machinery then operates on integers.  The
:class:`Graph` indexes hold IDs instead of :class:`~repro.rdf.terms.Term`
objects, so pattern matching and conjunct joins pay integer hashing and
equality instead of Python-object hashing and string comparison, and only
final answer rows are decoded back into terms.

A single process-wide :func:`default_dictionary` is shared by all graphs
unless a caller supplies its own — sharing means graphs built from the
same vocabulary agree on IDs, which lets set algebra, equality and copies
between graphs run entirely at the integer level (the common case in the
peer system, where the chase unions and extends peer databases that share
one vocabulary).  Ephemeral graphs that mint unbounded fresh terms —
chase universal solutions full of fresh blank nodes — pass a private
dictionary instead, so the shared one only ever holds vocabulary.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TermError
from repro.rdf.terms import Term, Variable
from repro.rdf.triples import Triple

__all__ = ["TermDictionary", "default_dictionary", "IDTriple"]

#: A triple encoded as (subject id, predicate id, object id).
IDTriple = Tuple[int, int, int]


class TermDictionary:
    """A bidirectional, append-only mapping ``Term <-> int``.

    IDs are dense (0, 1, 2, …) in interning order, so decoding is a list
    index.  Terms are never removed: a dictionary outlives the graphs
    using it, and stale entries cost only memory, never correctness.
    Interning is thread-safe; lookups and decodes are lock-free reads.
    """

    __slots__ = ("_ids", "_terms", "_lock")

    def __init__(self, terms: Optional[Iterable[Term]] = None) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self._lock = threading.Lock()
        if terms is not None:
            for term in terms:
                self.encode(term)

    # -- encoding -------------------------------------------------------

    def encode(self, term: Term) -> int:
        """Intern a ground term, returning its (possibly new) ID.

        Raises:
            TermError: if ``term`` is a :class:`Variable` — variables are
                pattern syntax, never data, and must not receive IDs.
        """
        tid = self._ids.get(term)
        if tid is not None:
            return tid
        if isinstance(term, Variable):
            raise TermError(f"cannot intern variable {term!r} in a dictionary")
        with self._lock:
            tid = self._ids.get(term)
            if tid is None:
                tid = len(self._terms)
                self._terms.append(term)
                self._ids[term] = tid
            return tid

    def encode_triple(self, triple: Triple) -> IDTriple:
        """Intern all three positions of a triple."""
        encode = self.encode
        return (
            encode(triple.subject),
            encode(triple.predicate),
            encode(triple.object),
        )

    # -- lookups (non-interning) ----------------------------------------

    def lookup(self, term: Term) -> Optional[int]:
        """The ID of ``term`` if it has been interned, else ``None``.

        Unlike :meth:`encode` this never grows the dictionary, so
        membership probes with foreign terms stay side-effect-free.
        """
        return self._ids.get(term)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def __len__(self) -> int:
        return len(self._terms)

    # -- decoding -------------------------------------------------------

    def decode(self, tid: int) -> Term:
        """The term with the given ID.

        Raises:
            KeyError: if the ID was never assigned.
        """
        if 0 <= tid < len(self._terms):
            return self._terms[tid]
        raise KeyError(f"unknown term id {tid}")

    def decode_triple(self, ids: IDTriple) -> Triple:
        terms = self._terms
        return Triple(terms[ids[0]], terms[ids[1]], terms[ids[2]])

    def __repr__(self) -> str:
        return f"<TermDictionary with {len(self)} terms>"


_DEFAULT = TermDictionary()


def default_dictionary() -> TermDictionary:
    """The process-wide dictionary shared by graphs by default."""
    return _DEFAULT
