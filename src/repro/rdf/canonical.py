"""Blank-node-aware canonicalisation and graph comparison.

Chase runs mint fresh blank nodes whose labels depend on execution order,
so two universal solutions that are "the same" differ textually.  This
module provides:

* :func:`canonical_hash` - a hash invariant under blank node relabelling
  (iterative colour refinement, as in graph-isomorphism algorithms);
* :func:`isomorphic` - decide whether two graphs are equal up to a blank
  node bijection (refinement plus backtracking on ties);
* :func:`canonicalize` - relabel blank nodes deterministically.

These power the Figure-2 reproduction test (chase output must match the
paper's universal solution modulo null names) and the property test that
the chase is confluent up to isomorphism.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, Term
from repro.rdf.triples import Triple

__all__ = ["canonical_hash", "canonicalize", "isomorphic"]


def _term_token(term: Term, colors: Dict[BlankNode, str]) -> str:
    if isinstance(term, BlankNode):
        return "~" + colors[term]
    return term.n3()


def _refine(graph: Graph, colors: Dict[BlankNode, str]) -> Dict[BlankNode, str]:
    """One round of colour refinement over the blank nodes."""
    signatures: Dict[BlankNode, List[str]] = {b: [] for b in colors}
    for triple in graph:
        s, p, o = triple.subject, triple.predicate, triple.object
        if isinstance(s, BlankNode):
            signatures[s].append(
                "S" + p.n3() + "|" + _term_token(o, colors)
            )
        if isinstance(o, BlankNode):
            signatures[o].append(
                "O" + p.n3() + "|" + _term_token(s, colors)
            )
    out: Dict[BlankNode, str] = {}
    for bnode, sig in signatures.items():
        sig.sort()
        digest = hashlib.sha256(
            (colors[bnode] + "||" + ";".join(sig)).encode()
        ).hexdigest()[:16]
        out[bnode] = digest
    return out


def _stable_colors(graph: Graph) -> Dict[BlankNode, str]:
    """Run colour refinement to a fixpoint (or |B| rounds)."""
    bnodes = graph.blank_nodes()
    colors: Dict[BlankNode, str] = {b: "init" for b in bnodes}
    for _ in range(max(1, len(bnodes))):
        new_colors = _refine(graph, colors)
        if _partition(new_colors) == _partition(colors):
            return new_colors
        colors = new_colors
    return colors


def _partition(colors: Dict[BlankNode, str]) -> Tuple[Tuple[str, ...], ...]:
    groups: Dict[str, List[str]] = {}
    for bnode, color in colors.items():
        groups.setdefault(color, []).append(bnode.label)
    return tuple(
        tuple(sorted(labels)) for _, labels in sorted(groups.items())
    )


def canonical_hash(graph: Graph) -> str:
    """Hash of the graph invariant under blank node renaming.

    Two isomorphic graphs always get equal hashes.  Distinct graphs collide
    only if colour refinement cannot separate their blank nodes, which does
    not happen for the tree-shaped null structures the chase produces.
    """
    colors = _stable_colors(graph)
    lines = sorted(
        " ".join(_term_token(t, colors) for t in triple)
        for triple in graph
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def canonicalize(graph: Graph) -> Graph:
    """Relabel blank nodes deterministically (``c0``, ``c1``, ...).

    Nodes are ordered by refined colour, breaking ties by original label;
    the result is stable across runs for chase outputs whose blank nodes
    are distinguishable by structure.
    """
    colors = _stable_colors(graph)
    ordered = sorted(colors.items(), key=lambda kv: (kv[1], kv[0].label))
    renaming: Dict[BlankNode, BlankNode] = {
        old: BlankNode(f"c{i}") for i, (old, _) in enumerate(ordered)
    }

    def rename(term: Term) -> Term:
        if isinstance(term, BlankNode):
            return renaming[term]
        return term

    return Graph(
        Triple(rename(t.subject), t.predicate, rename(t.object)) for t in graph
    )


def isomorphic(left: Graph, right: Graph) -> bool:
    """Decide whether two graphs are equal up to a blank node bijection."""
    if len(left) != len(right):
        return False
    lb, rb = left.blank_nodes(), right.blank_nodes()
    if len(lb) != len(rb):
        return False
    if not lb:
        return left == right
    left_colors = _stable_colors(left)
    right_colors = _stable_colors(right)
    left_groups = _group_by_color(left_colors)
    right_groups = _group_by_color(right_colors)
    if set(left_groups) != set(right_groups):
        return False
    if any(
        len(left_groups[c]) != len(right_groups[c]) for c in left_groups
    ):
        return False
    mapping: Dict[BlankNode, BlankNode] = {}
    colors = sorted(left_groups.keys())
    return _match_groups(left, right, colors, 0, left_groups, right_groups, mapping)


def _group_by_color(
    colors: Dict[BlankNode, str]
) -> Dict[str, List[BlankNode]]:
    groups: Dict[str, List[BlankNode]] = {}
    for bnode, color in colors.items():
        groups.setdefault(color, []).append(bnode)
    for members in groups.values():
        members.sort(key=lambda b: b.label)
    return groups


def _match_groups(
    left: Graph,
    right: Graph,
    colors: List[str],
    index: int,
    left_groups: Dict[str, List[BlankNode]],
    right_groups: Dict[str, List[BlankNode]],
    mapping: Dict[BlankNode, BlankNode],
) -> bool:
    """Backtracking search over per-colour bijections."""
    if index == len(colors):
        return _apply_mapping(left, mapping) == right
    color = colors[index]
    left_members = left_groups[color]
    right_members = right_groups[color]
    return _match_members(
        left, right, colors, index, left_groups, right_groups, mapping,
        left_members, list(right_members),
    )


def _match_members(
    left: Graph,
    right: Graph,
    colors: List[str],
    index: int,
    left_groups: Dict[str, List[BlankNode]],
    right_groups: Dict[str, List[BlankNode]],
    mapping: Dict[BlankNode, BlankNode],
    remaining_left: List[BlankNode],
    remaining_right: List[BlankNode],
) -> bool:
    if not remaining_left:
        return _match_groups(
            left, right, colors, index + 1, left_groups, right_groups, mapping
        )
    head, rest = remaining_left[0], remaining_left[1:]
    for i, candidate in enumerate(remaining_right):
        mapping[head] = candidate
        next_right = remaining_right[:i] + remaining_right[i + 1 :]
        if _match_members(
            left, right, colors, index, left_groups, right_groups, mapping,
            rest, next_right,
        ):
            return True
    mapping.pop(head, None)
    return False


def _apply_mapping(
    graph: Graph, mapping: Dict[BlankNode, BlankNode]
) -> Graph:
    def rename(term: Term) -> Term:
        if isinstance(term, BlankNode):
            return mapping.get(term, term)
        return term

    return Graph(
        Triple(rename(t.subject), t.predicate, rename(t.object)) for t in graph
    )
