"""RDF term model: IRIs, literals, blank nodes and query variables.

The paper (Section 2.1) assumes pairwise disjoint infinite sets *I* (IRIs),
*B* (blank nodes) and *L* (literals), plus a set *V* of variables disjoint
from all three.  This module provides one immutable, hashable class per set:

* :class:`IRI` - an element of *I*;
* :class:`BlankNode` - an element of *B* (the paper identifies blank nodes
  with the labelled nulls of relational data exchange);
* :class:`Literal` - an element of *L*, with optional datatype or language
  tag following RDF 1.0;
* :class:`Variable` - an element of *V*, used only in patterns and queries.

Terms compare by value, hash cheaply (hashes are pre-computed) and have a
total order (used for deterministic result ordering): IRIs < blank nodes <
literals < variables, and lexicographic within each kind.
"""

from __future__ import annotations

import re
import threading
from typing import Optional, Tuple, Union

from repro.errors import TermError

__all__ = [
    "Term",
    "IRI",
    "BlankNode",
    "Literal",
    "Variable",
    "GroundTerm",
    "SubjectTerm",
    "ObjectTerm",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
    "fresh_blank_node",
    "reset_blank_node_counter",
    "is_ground",
]

# Kind tags give the total order between term kinds.
_KIND_IRI = 0
_KIND_BNODE = 1
_KIND_LITERAL = 2
_KIND_VARIABLE = 3

_IRI_FORBIDDEN = re.compile(r'[\x00-\x20<>"{}|^`\\]')
_BNODE_LABEL = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")
_VARNAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_LANG_TAG = re.compile(r"^[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*$")

XSD = "http://www.w3.org/2001/XMLSchema#"


class Term:
    """Abstract base for all RDF terms and variables.

    Subclasses are immutable value objects.  ``__slots__`` keeps instances
    small because a peer system materialises millions of them.
    """

    __slots__ = ()

    #: Order tag; set by subclasses.
    kind: int = -1

    def sort_key(self) -> Tuple:
        """Key giving the library-wide deterministic total order on terms."""
        raise NotImplementedError

    def n3(self) -> str:
        """Render the term in N-Triples / Turtle surface syntax."""
        raise NotImplementedError

    def is_iri(self) -> bool:
        return isinstance(self, IRI)

    def is_blank(self) -> bool:
        return isinstance(self, BlankNode)

    def is_literal(self) -> bool:
        return isinstance(self, Literal)

    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class IRI(Term):
    """An IRI reference (an element of the paper's set *I*).

    Only a light sanity check is performed (RFC 3987 validation is out of
    scope): the IRI must be non-empty and must not contain characters that
    are illegal in any IRI, such as spaces, angle brackets or backslashes.

    Args:
        value: the IRI string, e.g. ``"http://example.org/film/Spiderman"``.

    Raises:
        TermError: if ``value`` is empty or contains a forbidden character.
    """

    __slots__ = ("value", "_hash")
    kind = _KIND_IRI

    def __init__(self, value: str) -> None:
        if not isinstance(value, str):
            raise TermError(f"IRI value must be str, got {type(value).__name__}")
        if not value:
            raise TermError("IRI value must be non-empty")
        match = _IRI_FORBIDDEN.search(value)
        if match:
            raise TermError(
                f"IRI {value!r} contains forbidden character {match.group()!r}"
            )
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("IRI", value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IRI is immutable")

    def sort_key(self) -> Tuple:
        return (_KIND_IRI, self.value)

    def n3(self) -> str:
        return f"<{self.value}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def local_name(self) -> str:
        """Heuristic local name: the part after the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value


class BlankNode(Term):
    """A blank node (element of *B*); the paper's labelled null.

    Blank nodes are identified by a label which must be unique within the
    scope where they are used.  :func:`fresh_blank_node` mints globally
    fresh labels for chase-created nulls.

    Args:
        label: blank node label without the ``_:`` prefix.

    Raises:
        TermError: if the label is empty or contains illegal characters.
    """

    __slots__ = ("label", "_hash")
    kind = _KIND_BNODE

    def __init__(self, label: str) -> None:
        if not isinstance(label, str):
            raise TermError(
                f"BlankNode label must be str, got {type(label).__name__}"
            )
        if not _BNODE_LABEL.match(label):
            raise TermError(f"invalid blank node label {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("BlankNode", label)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BlankNode is immutable")

    def sort_key(self) -> Tuple:
        return (_KIND_BNODE, self.label)

    def n3(self) -> str:
        return f"_:{self.label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and other.label == self.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BlankNode({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"


class Literal(Term):
    """An RDF literal (element of *L*).

    A literal has a lexical form plus at most one of a datatype IRI or a
    language tag.  Plain literals (neither) are treated as simple strings,
    matching RDF 1.0 which is what the paper's data model uses.

    Args:
        lexical: the lexical form, e.g. ``"39"``.
        datatype: optional datatype :class:`IRI`.
        language: optional BCP-47 language tag, e.g. ``"en"``.

    Raises:
        TermError: if both datatype and language are given, or the language
            tag is malformed.
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")
    kind = _KIND_LITERAL

    def __init__(
        self,
        lexical: str,
        datatype: Optional[IRI] = None,
        language: Optional[str] = None,
    ) -> None:
        if not isinstance(lexical, str):
            raise TermError(
                f"Literal lexical form must be str, got {type(lexical).__name__}"
            )
        if datatype is not None and language is not None:
            raise TermError("a literal cannot have both a datatype and a language")
        if datatype is not None and not isinstance(datatype, IRI):
            raise TermError("Literal datatype must be an IRI")
        if language is not None:
            if not _LANG_TAG.match(language):
                raise TermError(f"invalid language tag {language!r}")
            language = language.lower()
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)
        object.__setattr__(
            self, "_hash", hash(("Literal", lexical, datatype, language))
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    def sort_key(self) -> Tuple:
        return (
            _KIND_LITERAL,
            self.lexical,
            self.datatype.value if self.datatype else "",
            self.language or "",
        )

    def n3(self) -> str:
        escaped = escape_literal(self.lexical)
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [repr(self.lexical)]
        if self.datatype:
            parts.append(f"datatype={self.datatype!r}")
        if self.language:
            parts.append(f"language={self.language!r}")
        return f"Literal({', '.join(parts)})"

    def __str__(self) -> str:
        return self.lexical

    def to_python(self) -> Union[str, int, float, bool]:
        """Best-effort conversion to a Python value based on the datatype."""
        if self.datatype is None:
            return self.lexical
        dt = self.datatype.value
        try:
            if dt == XSD + "integer" or dt in _INTEGER_DERIVED:
                return int(self.lexical)
            if dt in (XSD + "decimal", XSD + "double", XSD + "float"):
                return float(self.lexical)
            if dt == XSD + "boolean":
                return self.lexical in ("true", "1")
        except ValueError:
            return self.lexical
        return self.lexical


_INTEGER_DERIVED = frozenset(
    XSD + name
    for name in (
        "int",
        "long",
        "short",
        "byte",
        "nonNegativeInteger",
        "positiveInteger",
        "nonPositiveInteger",
        "negativeInteger",
        "unsignedLong",
        "unsignedInt",
        "unsignedShort",
        "unsignedByte",
    )
)


class Variable(Term):
    """A query variable (element of *V*), written ``?name`` in SPARQL.

    Args:
        name: variable name without the ``?`` / ``$`` sigil.

    Raises:
        TermError: if the name is not a valid identifier.
    """

    __slots__ = ("name", "_hash")
    kind = _KIND_VARIABLE

    def __init__(self, name: str) -> None:
        if not isinstance(name, str):
            raise TermError(
                f"Variable name must be str, got {type(name).__name__}"
            )
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        if not _VARNAME.match(name):
            raise TermError(f"invalid variable name {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Variable is immutable")

    def sort_key(self) -> Tuple:
        return (_KIND_VARIABLE, self.name)

    def n3(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"


# Convenience type aliases matching the paper's positional constraints.
GroundTerm = Union[IRI, BlankNode, Literal]
SubjectTerm = Union[IRI, BlankNode]
ObjectTerm = Union[IRI, BlankNode, Literal]

XSD_STRING = IRI(XSD + "string")
XSD_INTEGER = IRI(XSD + "integer")
XSD_DECIMAL = IRI(XSD + "decimal")
XSD_DOUBLE = IRI(XSD + "double")
XSD_BOOLEAN = IRI(XSD + "boolean")


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def escape_literal(text: str) -> str:
    """Escape a literal lexical form for N-Triples output."""
    out = []
    for ch in text:
        out.append(_ESCAPES.get(ch, ch))
    return "".join(out)


_SIMPLE_UNESCAPES = {
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "b": "\b",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def unescape_literal(text: str) -> str:
    """Reverse :func:`escape_literal`, including ``\\uXXXX`` escapes."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise TermError("dangling backslash in literal")
        nxt = text[i + 1]
        if nxt in _SIMPLE_UNESCAPES:
            out.append(_SIMPLE_UNESCAPES[nxt])
            i += 2
        elif nxt == "u":
            if i + 6 > n:
                raise TermError("truncated \\u escape in literal")
            try:
                out.append(chr(int(text[i + 2 : i + 6], 16)))
            except ValueError as exc:
                raise TermError(f"bad \\u escape in literal: {exc}") from exc
            i += 6
        elif nxt == "U":
            if i + 10 > n:
                raise TermError("truncated \\U escape in literal")
            try:
                out.append(chr(int(text[i + 2 : i + 10], 16)))
            except ValueError as exc:
                raise TermError(f"bad \\U escape in literal: {exc}") from exc
            i += 10
        else:
            raise TermError(f"unknown escape \\{nxt} in literal")
    return "".join(out)


class _BlankNodeCounter:
    """Thread-safe counter minting globally fresh blank node labels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def fresh(self, prefix: str) -> BlankNode:
        with self._lock:
            value = self._next
            self._next += 1
        return BlankNode(f"{prefix}{value}")

    def reset(self) -> None:
        with self._lock:
            self._next = 0


_COUNTER = _BlankNodeCounter()


def fresh_blank_node(prefix: str = "null") -> BlankNode:
    """Mint a fresh blank node, used by the chase for labelled nulls.

    Labels have the shape ``<prefix><n>`` with a process-wide counter, so
    two calls never collide.  The paper's chase "generates new blank nodes
    as labelled nulls"; this is the minting function it uses.
    """
    return _COUNTER.fresh(prefix)


def reset_blank_node_counter() -> None:
    """Reset the fresh-label counter (tests only; makes runs deterministic)."""
    _COUNTER.reset()


def is_ground(term: Term) -> bool:
    """True if the term is an IRI, blank node or literal (not a variable)."""
    return not isinstance(term, Variable)
