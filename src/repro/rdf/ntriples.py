"""N-Triples parser and serialiser (line-based RDF syntax).

Implements the W3C N-Triples grammar closely enough for full round-trips
of the library's term model: IRIs in angle brackets, ``_:label`` blank
nodes, and literals with escapes, language tags and ``^^`` datatypes.
Comments (``#``) and blank lines are skipped.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import ParseError, TermError
from repro.rdf.graph import Graph
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    Term,
    unescape_literal,
)
from repro.rdf.triples import Triple

__all__ = [
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "graph_from_ntriples",
]


class _LineScanner:
    """Character scanner over one N-Triples line."""

    def __init__(self, text: str, lineno: int) -> None:
        self.text = text
        self.pos = 0
        self.lineno = lineno

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.lineno, column=self.pos + 1)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def read_iri(self) -> IRI:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated IRI")
        raw = self.text[self.pos : end]
        self.pos = end + 1
        try:
            return IRI(raw)
        except TermError as exc:
            raise self.error(str(exc)) from exc

    def read_bnode(self) -> BlankNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in " \t":
            self.pos += 1
        label = self.text[start : self.pos]
        try:
            return BlankNode(label)
        except TermError as exc:
            raise self.error(str(exc)) from exc

    def read_literal(self) -> Literal:
        self.expect('"')
        chars: List[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            ch = self.text[self.pos]
            if ch == "\\":
                if self.pos + 1 >= len(self.text):
                    raise self.error("dangling backslash in literal")
                chars.append(self.text[self.pos : self.pos + 2])
                self.pos += 2
                # \u and \U escapes carry extra hex digits.
                esc = chars[-1][1]
                width = 4 if esc == "u" else 8 if esc == "U" else 0
                if width:
                    chars[-1] += self.text[self.pos : self.pos + width]
                    self.pos += width
                continue
            if ch == '"':
                self.pos += 1
                break
            chars.append(ch)
            self.pos += 1
        try:
            lexical = unescape_literal("".join(chars))
        except TermError as exc:
            raise self.error(str(exc)) from exc
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "-"
            ):
                self.pos += 1
            tag = self.text[start : self.pos]
            try:
                return Literal(lexical, language=tag)
            except TermError as exc:
                raise self.error(str(exc)) from exc
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.read_iri()
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def read_subject(self) -> Term:
        ch = self.peek()
        if ch == "<":
            return self.read_iri()
        if ch == "_":
            return self.read_bnode()
        raise self.error(f"invalid subject start {ch!r}")

    def read_object(self) -> Term:
        ch = self.peek()
        if ch == "<":
            return self.read_iri()
        if ch == "_":
            return self.read_bnode()
        if ch == '"':
            return self.read_literal()
        raise self.error(f"invalid object start {ch!r}")


def parse_ntriples_line(line: str, lineno: int = 1) -> Optional[Triple]:
    """Parse a single N-Triples line; returns None for blanks/comments.

    Raises:
        ParseError: on malformed input.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, lineno)
    subject = scanner.read_subject()
    scanner.skip_ws()
    predicate = scanner.read_iri()
    scanner.skip_ws()
    object_ = scanner.read_object()
    scanner.skip_ws()
    scanner.expect(".")
    scanner.skip_ws()
    if not scanner.at_end():
        raise scanner.error("trailing content after '.'")
    try:
        return Triple(subject, predicate, object_)
    except Exception as exc:
        raise scanner.error(str(exc)) from exc


def parse_ntriples(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Parse N-Triples text (or a file-like object), yielding triples."""
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    for lineno, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, lineno)
        if triple is not None:
            yield triple


def graph_from_ntriples(source: Union[str, TextIO], name: str = "") -> Graph:
    """Parse N-Triples into a new :class:`Graph`."""
    return Graph(parse_ntriples(source), name=name)


def serialize_ntriples(
    triples: Iterable[Triple], sort: bool = True
) -> str:
    """Serialise triples to N-Triples text.

    Args:
        triples: the triples to write (a :class:`Graph` works).
        sort: emit in deterministic term order (stable output for diffing).
    """
    items = list(triples)
    if sort:
        items.sort(key=Triple.sort_key)
    return "".join(t.n3() + "\n" for t in items)
