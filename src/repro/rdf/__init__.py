"""RDF substrate: terms, triples, graphs, datasets and serialisations.

This package implements the paper's Section-2.1 data model from scratch
(the offline environment provides no rdflib): the disjoint term sets *I*,
*B*, *L* and *V*, RDF triples, triple patterns, an indexed in-memory
triple store, named-graph datasets, N-Triples and Turtle-lite round-trip
serialisations, and blank-node-aware canonicalisation.
"""

from repro.rdf.canonical import canonical_hash, canonicalize, isomorphic
from repro.rdf.dataset import Dataset
from repro.rdf.dictionary import TermDictionary, default_dictionary
from repro.rdf.graph import Graph
from repro.rdf.namespaces import (
    FOAF_NS,
    Namespace,
    NamespaceManager,
    OWL_NS,
    OWL_SAME_AS,
    RDF_NS,
    RDF_TYPE,
    RDFS_NS,
    XSD_NS,
)
from repro.rdf.ntriples import (
    graph_from_ntriples,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    fresh_blank_node,
    is_ground,
    reset_blank_node_counter,
)
from repro.rdf.triples import Triple, TriplePattern
from repro.rdf.turtle import graph_from_turtle, parse_turtle, serialize_turtle

__all__ = [
    "BlankNode",
    "Dataset",
    "FOAF_NS",
    "Graph",
    "IRI",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "OWL_NS",
    "OWL_SAME_AS",
    "RDF_NS",
    "RDF_TYPE",
    "RDFS_NS",
    "Term",
    "TermDictionary",
    "Triple",
    "TriplePattern",
    "Variable",
    "XSD_BOOLEAN",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_NS",
    "XSD_STRING",
    "canonical_hash",
    "canonicalize",
    "default_dictionary",
    "fresh_blank_node",
    "graph_from_ntriples",
    "graph_from_turtle",
    "is_ground",
    "isomorphic",
    "parse_ntriples",
    "parse_turtle",
    "reset_blank_node_counter",
    "serialize_ntriples",
    "serialize_turtle",
]
