"""Namespace utilities and well-known vocabularies.

A :class:`Namespace` mints IRIs under a common prefix with attribute or
item access (``FOAF.name`` / ``FOAF["name"]``), and a
:class:`NamespaceManager` maintains prefix bindings for parsing and
serialising Turtle and for compact display of results (the paper prints
answers like ``DB1:Toby_Maguire``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import TermError
from repro.rdf.terms import IRI

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF_NS",
    "RDFS_NS",
    "OWL_NS",
    "XSD_NS",
    "FOAF_NS",
    "OWL_SAME_AS",
    "RDF_TYPE",
]


class Namespace:
    """A factory for IRIs sharing a prefix.

    Example:
        >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
        >>> FOAF.name
        IRI('http://xmlns.com/foaf/0.1/name')
    """

    def __init__(self, base: str) -> None:
        if not base:
            raise TermError("namespace base must be non-empty")
        # Validate the base by attempting to build an IRI from it.
        IRI(base)
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, name: str) -> IRI:
        """Mint the IRI ``base + name``."""
        return IRI(self._base + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF_NS = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS_NS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL_NS = Namespace("http://www.w3.org/2002/07/owl#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF_NS = Namespace("http://xmlns.com/foaf/0.1/")

#: ``owl:sameAs`` — the property the paper compiles into equivalence mappings.
OWL_SAME_AS = OWL_NS.sameAs
RDF_TYPE = RDF_NS.type


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry.

    Used by the Turtle parser/serialiser and by result formatting.  The
    default manager binds the ubiquitous ``rdf``, ``rdfs``, ``owl``, ``xsd``
    and ``foaf`` prefixes.

    Args:
        bind_defaults: whether to pre-bind the well-known prefixes.
    """

    def __init__(self, bind_defaults: bool = True) -> None:
        self._prefix_to_ns: Dict[str, str] = {}
        self._sorted_bases: Tuple[Tuple[str, str], ...] = ()
        if bind_defaults:
            self.bind("rdf", RDF_NS.base)
            self.bind("rdfs", RDFS_NS.base)
            self.bind("owl", OWL_NS.base)
            self.bind("xsd", XSD_NS.base)
            self.bind("foaf", FOAF_NS.base)

    def bind(self, prefix: str, namespace: str) -> None:
        """Bind ``prefix`` to ``namespace``, replacing any previous binding."""
        if isinstance(namespace, Namespace):
            namespace = namespace.base
        IRI(namespace)  # validate
        self._prefix_to_ns[prefix] = namespace
        # Longest-base-first so qname() picks the most specific namespace.
        self._sorted_bases = tuple(
            sorted(
                self._prefix_to_ns.items(),
                key=lambda item: len(item[1]),
                reverse=True,
            )
        )

    def expand(self, qname: str) -> IRI:
        """Expand a prefixed name ``prefix:local`` into an IRI.

        Raises:
            TermError: if the prefix is unbound or the input has no colon.
        """
        if ":" not in qname:
            raise TermError(f"{qname!r} is not a prefixed name")
        prefix, local = qname.split(":", 1)
        namespace = self._prefix_to_ns.get(prefix)
        if namespace is None:
            raise TermError(f"unbound namespace prefix {prefix!r}")
        return IRI(namespace + local)

    def qname(self, iri: IRI) -> Optional[str]:
        """Compact an IRI into ``prefix:local`` if a binding covers it."""
        for prefix, base in self._sorted_bases:
            if iri.value.startswith(base):
                local = iri.value[len(base):]
                if local and all(c not in local for c in "/#?"):
                    return f"{prefix}:{local}"
        return None

    def display(self, iri: IRI) -> str:
        """QName if available, otherwise the full ``<iri>`` form."""
        compact = self.qname(iri)
        return compact if compact is not None else iri.n3()

    def namespaces(self) -> Iterator[Tuple[str, str]]:
        """Iterate over ``(prefix, namespace)`` bindings, sorted by prefix."""
        return iter(sorted(self._prefix_to_ns.items()))

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns

    def __len__(self) -> int:
        return len(self._prefix_to_ns)

    def copy(self) -> "NamespaceManager":
        clone = NamespaceManager(bind_defaults=False)
        for prefix, namespace in self._prefix_to_ns.items():
            clone.bind(prefix, namespace)
        return clone
