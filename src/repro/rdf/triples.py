"""RDF triples and triple patterns.

The paper defines an RDF triple as ``(s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L)``
and a *triple pattern* as a tuple from
``(I ∪ L ∪ V) × (I ∪ V) × (I ∪ L ∪ V)`` (Section 2.1, item 1 of the graph
pattern grammar).  Note the asymmetry: the paper's triple *patterns* admit
literals in the subject position but not blank nodes, whereas *triples*
admit blank nodes but not literals in the subject.  We implement both
faithfully; :class:`TriplePattern` additionally allows blank nodes so that
patterns can be matched against chase-produced data when evaluating the
blank-keeping semantics ``Q*_D``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import TripleError
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    Term,
    Variable,
)

__all__ = ["Triple", "TriplePattern", "POSITIONS"]

#: Names of the three triple positions, in order.
POSITIONS = ("subject", "predicate", "object")


class Triple:
    """An RDF triple ``(s, p, o)``.

    Positional constraints from the paper's Section 2.1 are enforced:
    the subject is an IRI or blank node, the predicate is an IRI, and the
    object is an IRI, blank node or literal.

    Args:
        subject: IRI or blank node.
        predicate: IRI.
        object: IRI, blank node or literal.

    Raises:
        TripleError: if a position holds a term of the wrong kind.
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: Term, object: Term) -> None:
        if not isinstance(subject, (IRI, BlankNode)):
            raise TripleError(
                f"triple subject must be IRI or blank node, got {subject!r}"
            )
        if not isinstance(predicate, IRI):
            raise TripleError(f"triple predicate must be IRI, got {predicate!r}")
        if not isinstance(object, (IRI, BlankNode, Literal)):
            raise TripleError(
                f"triple object must be IRI, blank node or literal, got {object!r}"
            )
        obj_setattr = super().__setattr__
        obj_setattr("subject", subject)
        obj_setattr("predicate", predicate)
        obj_setattr("object", object)
        obj_setattr("_hash", hash((subject, predicate, object)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Triple is immutable")

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __getitem__(self, index: int) -> Term:
        return (self.subject, self.predicate, self.object)[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> Tuple:
        return (
            self.subject.sort_key(),
            self.predicate.sort_key(),
            self.object.sort_key(),
        )

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        """Render as an N-Triples line (without the trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def has_blank(self) -> bool:
        """True if any position holds a blank node (a labelled null)."""
        return (
            isinstance(self.subject, BlankNode)
            or isinstance(self.object, BlankNode)
        )

    def terms(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)


class TriplePattern:
    """A triple pattern: a triple whose positions may hold variables.

    Follows the paper's definition — subject/object from ``I ∪ L ∪ V``
    (we additionally admit blank nodes so patterns can be evaluated under
    the ``Q*`` semantics over chase output), predicate from ``I ∪ V``.

    Args:
        subject: IRI, literal, blank node or variable.
        predicate: IRI or variable.
        object: IRI, literal, blank node or variable.

    Raises:
        TripleError: if the predicate is a literal or blank node.
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: Term, object: Term) -> None:
        for pos_name, term in (("subject", subject), ("object", object)):
            if not isinstance(term, (IRI, Literal, BlankNode, Variable)):
                raise TripleError(
                    f"pattern {pos_name} must be an RDF term or variable, "
                    f"got {term!r}"
                )
        if not isinstance(predicate, (IRI, Variable)):
            raise TripleError(
                f"pattern predicate must be IRI or variable, got {predicate!r}"
            )
        obj_setattr = super().__setattr__
        obj_setattr("subject", subject)
        obj_setattr("predicate", predicate)
        obj_setattr("object", object)
        obj_setattr("_hash", hash(("tp", subject, predicate, object)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TriplePattern is immutable")

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __getitem__(self, index: int) -> Term:
        return (self.subject, self.predicate, self.object)[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TriplePattern)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"TriplePattern({self.subject!r}, {self.predicate!r}, "
            f"{self.object!r})"
        )

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def variables(self) -> frozenset:
        """The set ``var(t)`` of variables occurring in the pattern."""
        return frozenset(t for t in self if isinstance(t, Variable))

    def is_ground(self) -> bool:
        """True if the pattern contains no variables."""
        return not any(isinstance(t, Variable) for t in self)

    def substitute(self, mapping: Dict[Variable, Term]) -> "TriplePattern":
        """Apply a partial substitution, returning a new pattern.

        Variables absent from ``mapping`` are left in place, so the result
        may still contain variables.  This is the paper's ``µ(t)`` notation
        extended to partial mappings.
        """

        def subst(term: Term) -> Term:
            if isinstance(term, Variable):
                return mapping.get(term, term)
            return term

        return TriplePattern(
            subst(self.subject), subst(self.predicate), subst(self.object)
        )

    def to_triple(self, mapping: Optional[Dict[Variable, Term]] = None) -> Triple:
        """Instantiate the pattern into a concrete :class:`Triple`.

        Args:
            mapping: substitution for the pattern's variables; must cover
                all of them.

        Raises:
            TripleError: if a variable remains unbound or a bound value
                violates the triple positional constraints.
        """
        pattern = self.substitute(mapping or {})
        if not pattern.is_ground():
            unbound = sorted(v.name for v in pattern.variables())
            raise TripleError(
                f"cannot instantiate pattern; unbound variables: {unbound}"
            )
        return Triple(pattern.subject, pattern.predicate, pattern.object)

    def matches(self, triple: Triple) -> Optional[Dict[Variable, Term]]:
        """Match against a concrete triple.

        Returns:
            The mapping ``µ`` with ``dom(µ) = var(t)`` such that
            ``µ(t) == triple``, or ``None`` if the pattern does not match.
            Ground positions must equal the triple's term exactly; repeated
            variables must bind consistently.
        """
        binding: Dict[Variable, Term] = {}
        for pat_term, data_term in zip(self, triple):
            if isinstance(pat_term, Variable):
                bound = binding.get(pat_term)
                if bound is None:
                    binding[pat_term] = data_term
                elif bound != data_term:
                    return None
            elif pat_term != data_term:
                return None
        return binding
