"""Turtle-lite parser and serialiser.

Supports the Turtle subset needed for readable fixtures and examples:

* ``@prefix`` / ``PREFIX`` declarations and prefixed names;
* full IRIs in angle brackets, ``_:label`` blank nodes;
* literals with language tags, datatypes, and bare numeric / boolean
  abbreviations (``42``, ``3.14``, ``true``);
* predicate lists with ``;`` and object lists with ``,``;
* the ``a`` keyword for ``rdf:type``;
* ``#`` comments.

Collections ``( ... )`` and anonymous nodes ``[ ... ]`` are not supported —
the paper's data model never needs them.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional

from repro.errors import ParseError, TermError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager, RDF_TYPE
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    unescape_literal,
)
from repro.rdf.triples import Triple

__all__ = ["parse_turtle", "serialize_turtle", "graph_from_turtle"]

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>\#[^\n]*)
    | (?P<iri><[^<>\s]*>)
    | (?P<literal>"(?:[^"\\]|\\.)*")
    | (?P<bnode>_:[A-Za-z0-9_][A-Za-z0-9_.\-]*)
    | (?P<prefix_decl>@prefix|@base|PREFIX|BASE)
    | (?P<double>[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+))
    | (?P<decimal>[+-]?\d*\.\d+)
    | (?P<integer>[+-]?\d+)
    | (?P<boolean>\btrue\b|\bfalse\b)
    | (?P<a>\ba\b)
    | (?P<pname>[A-Za-z_][A-Za-z0-9_\-]*?:[A-Za-z0-9_][A-Za-z0-9_.\-]*|[A-Za-z_][A-Za-z0-9_\-]*:|:[A-Za-z0-9_][A-Za-z0-9_.\-]*)
    | (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
    | (?P<dtype>\^\^)
    | (?P<punct>[.;,])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int, column: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            col = pos - line_start + 1
            raise ParseError(
                f"unexpected character {text[pos]!r}", line=line, column=col
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, value, line, pos - line_start + 1))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()
    return tokens


class _TurtleParser:
    def __init__(self, text: str, nsm: Optional[NamespaceManager]) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0
        self.nsm = nsm if nsm is not None else NamespaceManager()
        self.triples: List[Triple] = []

    # -- token helpers -------------------------------------------------

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect_punct(self, char: str) -> None:
        token = self.next()
        if token.kind != "punct" or token.value != char:
            raise ParseError(
                f"expected {char!r}, found {token.value!r}",
                line=token.line,
                column=token.column,
            )

    def error(self, token: _Token, message: str) -> ParseError:
        return ParseError(message, line=token.line, column=token.column)

    # -- grammar -------------------------------------------------------

    def parse(self) -> List[Triple]:
        while self.peek() is not None:
            token = self.peek()
            assert token is not None
            if token.kind == "prefix_decl":
                self.parse_directive()
            else:
                self.parse_statement()
        return self.triples

    def parse_directive(self) -> None:
        decl = self.next()
        keyword = decl.value.lstrip("@").upper()
        if keyword == "BASE":
            raise self.error(decl, "@base is not supported by Turtle-lite")
        prefix_token = self.next()
        if prefix_token.kind != "pname" or not prefix_token.value.endswith(":"):
            raise self.error(prefix_token, "expected prefix declaration name")
        prefix = prefix_token.value[:-1]
        iri_token = self.next()
        if iri_token.kind != "iri":
            raise self.error(iri_token, "expected namespace IRI")
        self.nsm.bind(prefix, iri_token.value[1:-1])
        if decl.value.startswith("@"):
            self.expect_punct(".")

    def parse_statement(self) -> None:
        subject = self.parse_term(position="subject")
        self.parse_predicate_object_list(subject)
        self.expect_punct(".")

    def parse_predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self.parse_verb()
            while True:
                object_ = self.parse_term(position="object")
                try:
                    self.triples.append(Triple(subject, predicate, object_))
                except Exception as exc:
                    raise ParseError(str(exc)) from exc
                token = self.peek()
                if token is not None and token.kind == "punct" and token.value == ",":
                    self.next()
                    continue
                break
            token = self.peek()
            if token is not None and token.kind == "punct" and token.value == ";":
                self.next()
                # Allow trailing ';' before '.'
                nxt = self.peek()
                if nxt is not None and nxt.kind == "punct" and nxt.value == ".":
                    break
                continue
            break

    def parse_verb(self) -> Term:
        token = self.peek()
        if token is not None and token.kind == "a":
            self.next()
            return RDF_TYPE
        term = self.parse_term(position="predicate")
        return term

    def parse_term(self, position: str) -> Term:
        token = self.next()
        if token.kind == "iri":
            try:
                return IRI(token.value[1:-1])
            except TermError as exc:
                raise self.error(token, str(exc)) from exc
        if token.kind == "pname":
            try:
                return self.nsm.expand(token.value)
            except TermError as exc:
                raise self.error(token, str(exc)) from exc
        if token.kind == "bnode":
            return BlankNode(token.value[2:])
        if token.kind == "literal":
            return self.parse_literal_tail(token)
        if token.kind == "integer":
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.kind == "decimal":
            return Literal(token.value, datatype=XSD_DECIMAL)
        if token.kind == "double":
            return Literal(token.value, datatype=XSD_DOUBLE)
        if token.kind == "boolean":
            return Literal(token.value, datatype=XSD_BOOLEAN)
        raise self.error(
            token, f"unexpected token {token.value!r} in {position} position"
        )

    def parse_literal_tail(self, token: _Token) -> Literal:
        try:
            lexical = unescape_literal(token.value[1:-1])
        except TermError as exc:
            raise self.error(token, str(exc)) from exc
        nxt = self.peek()
        if nxt is not None and nxt.kind == "langtag":
            self.next()
            try:
                return Literal(lexical, language=nxt.value[1:])
            except TermError as exc:
                raise self.error(nxt, str(exc)) from exc
        if nxt is not None and nxt.kind == "dtype":
            self.next()
            dt_token = self.next()
            if dt_token.kind == "iri":
                datatype = IRI(dt_token.value[1:-1])
            elif dt_token.kind == "pname":
                datatype = self.nsm.expand(dt_token.value)
            else:
                raise self.error(dt_token, "expected datatype IRI")
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)


def parse_turtle(
    text: str, nsm: Optional[NamespaceManager] = None
) -> List[Triple]:
    """Parse Turtle-lite text into a list of triples.

    Args:
        text: the Turtle document.
        nsm: optional namespace manager supplying pre-bound prefixes;
            ``@prefix`` declarations in the document are added to it.

    Raises:
        ParseError: on any syntax error.
    """
    return _TurtleParser(text, nsm).parse()


def graph_from_turtle(
    text: str, nsm: Optional[NamespaceManager] = None, name: str = ""
) -> Graph:
    """Parse Turtle-lite text into a new :class:`Graph`."""
    return Graph(parse_turtle(text, nsm), name=name)


def serialize_turtle(
    triples: Iterable[Triple], nsm: Optional[NamespaceManager] = None
) -> str:
    """Serialise triples as Turtle, grouped by subject with ``;`` lists."""
    nsm = nsm if nsm is not None else NamespaceManager()

    def render(term: Term) -> str:
        if isinstance(term, IRI):
            return nsm.display(term)
        return term.n3()

    items = sorted(triples, key=Triple.sort_key)
    lines: List[str] = []
    for prefix, namespace in nsm.namespaces():
        lines.append(f"@prefix {prefix}: <{namespace}> .")
    if lines:
        lines.append("")

    current_subject: Optional[Term] = None
    block: List[str] = []

    def flush() -> None:
        if current_subject is None or not block:
            return
        head = render(current_subject)
        lines.append(f"{head} " + " ;\n    ".join(block) + " .")

    for triple in items:
        if triple.subject != current_subject:
            flush()
            current_subject = triple.subject
            block = []
        pred = "a" if triple.predicate == RDF_TYPE else render(triple.predicate)
        block.append(f"{pred} {render(triple.object)}")
    flush()
    return "\n".join(lines) + "\n"
