"""Multi-graph dataset: one named graph per peer plus their union.

An RPS stores "a database *d* for each peer" and defines the stored
database *D* as the union of all peer databases (Section 2.3).  The
:class:`Dataset` models exactly this: named member graphs plus a lazily
computed union view.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import RDFError
from repro.rdf.graph import Graph
from repro.rdf.triples import Triple

__all__ = ["Dataset"]


class Dataset:
    """A collection of named :class:`Graph` instances.

    Args:
        graphs: optional initial mapping from name to graph.
    """

    def __init__(self, graphs: Optional[Dict[str, Graph]] = None) -> None:
        self._graphs: Dict[str, Graph] = {}
        if graphs:
            for name, graph in graphs.items():
                self.add_graph(name, graph)

    def add_graph(self, name: str, graph: Optional[Graph] = None) -> Graph:
        """Register (or create) the named graph and return it.

        Raises:
            RDFError: if a graph with this name already exists.
        """
        if name in self._graphs:
            raise RDFError(f"graph {name!r} already exists in dataset")
        if graph is None:
            graph = Graph(name=name)
        elif not graph.name:
            graph.name = name
        self._graphs[name] = graph
        return graph

    def graph(self, name: str) -> Graph:
        """Return the named graph.

        Raises:
            RDFError: if no graph with this name exists.
        """
        try:
            return self._graphs[name]
        except KeyError:
            raise RDFError(f"no graph named {name!r} in dataset") from None

    def get_or_create(self, name: str) -> Graph:
        if name not in self._graphs:
            return self.add_graph(name)
        return self._graphs[name]

    def remove_graph(self, name: str) -> None:
        if name not in self._graphs:
            raise RDFError(f"no graph named {name!r} in dataset")
        del self._graphs[name]

    def names(self) -> List[str]:
        return sorted(self._graphs.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[Tuple[str, Graph]]:
        for name in self.names():
            yield name, self._graphs[name]

    def union(self, name: str = "union") -> Graph:
        """Materialise the union of all member graphs (the stored *D*)."""
        out = Graph(name=name)
        for graph in self._graphs.values():
            out.add_all(graph)
        return out

    def total_triples(self) -> int:
        return sum(len(g) for g in self._graphs.values())

    def add(self, name: str, triples: Iterable[Triple]) -> int:
        """Add triples into the named graph, creating it if needed."""
        return self.get_or_create(name).add_all(triples)

    def find_graphs_with(self, triple: Triple) -> List[str]:
        """Names of all member graphs containing the given triple."""
        return [name for name, graph in self if triple in graph]
