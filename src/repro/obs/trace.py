"""Structured trace spans over two clock domains, Chrome-exportable.

One :class:`Tracer` collects a forest of :class:`Span` trees across a
query's whole lifecycle.  Spans live in one of two *clock domains*:

* ``"wall"`` — real seconds (an injectable monotonic clock, default
  :func:`time.perf_counter`) around the local phases: parse →
  normalise → plan → execute;
* ``"virtual"`` — the deterministic simulated seconds of the
  federation and runtime layers (serial elapsed time, or the event
  kernel's replayed timeline), so a parallel execution's trace is a
  pure function of the seed and byte-stable across repeated runs.

Wall spans open/close as context managers via :meth:`Tracer.span`;
virtual spans arrive already-complete via :meth:`Tracer.record` (their
bounds were computed on the simulated clock).  The shared
:data:`NULL_TRACER` is the disabled half of the pair: ``enabled`` is
``False`` and every hook is a constant-cost no-op, so instrumented
code paths guard with one attribute read and cost nothing when
tracing is off.

:func:`chrome_trace_events` flattens a tracer's spans into the Chrome
``trace_event`` JSON document shape (``"ph": "X"`` complete events,
microsecond ``ts``/``dur``, one ``tid`` lane per endpoint/channel)
for timeline viewing; :func:`validate_trace_events` is the
dependency-free shape check CI runs against exported traces.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACER",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "validate_trace_events",
]


class Span:
    """One named interval in a trace tree.

    ``domain`` names the clock the bounds were measured on (``"wall"``
    or ``"virtual"``); ``lane`` groups spans onto one timeline row in
    the Chrome export (one lane per endpoint/channel, the empty lane
    for coordinator-side phases); ``attributes`` carry small
    deterministic annotations (row counts, request indexes, labels).
    """

    __slots__ = (
        "name",
        "domain",
        "start",
        "end",
        "lane",
        "attributes",
        "children",
    )

    def __init__(
        self,
        name: str,
        domain: str = "wall",
        start: float = 0.0,
        end: float = 0.0,
        lane: str = "",
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.domain = domain
        self.start = start
        self.end = end
        self.lane = lane
        self.attributes = attributes if attributes is not None else {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def walk(self) -> Iterator["Span"]:
        """Depth-first traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanHandle:
    """Context manager closing one wall-clock span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self.span)
        return False


class Tracer:
    """Collects spans into a forest; the enabled half of the pair.

    Wall spans nest through an explicit stack — a span opened while
    another is active becomes its child.  Virtual spans recorded via
    :meth:`record` attach to an explicit ``parent``, or to the current
    stack top (typically the surrounding execute wall span), or to the
    root forest.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, lane: str = "", **attributes) -> _SpanHandle:
        """Open one wall-clock span; close it by exiting the handle."""
        span = Span(
            name,
            domain="wall",
            start=self.clock(),
            lane=lane,
            attributes=dict(attributes),
        )
        self._attach(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        lane: str = "",
        parent: Optional[Span] = None,
        **attributes,
    ) -> Span:
        """Attach one already-complete virtual-clock span."""
        span = Span(
            name,
            domain="virtual",
            start=start,
            end=end,
            lane=lane,
            attributes=dict(attributes),
        )
        self._attach(span, parent)
        return span

    def _attach(self, span: Span, parent: Optional[Span] = None) -> None:
        if parent is not None:
            parent.children.append(span)
        elif self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _close(self, span: Span) -> None:
        span.end = self.clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def spans(self) -> Iterator[Span]:
        """Every collected span, depth-first in recording order."""
        for root in self.roots:
            yield from root.walk()

    def reset(self) -> None:
        """Drop every collected span (reuse the tracer for a new run)."""
        self.roots = []
        self._stack = []


class _NullHandle:
    """Shared no-op context manager for every disabled span call."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class _NullTracer:
    """The disabled tracer: ``enabled`` is False, every hook free.

    A single shared instance (:data:`NULL_TRACER`) is the default
    tracer everywhere, so un-traced executions pay one attribute read
    per guarded hook and allocate nothing.
    """

    enabled = False

    def span(self, name: str, lane: str = "", **attributes) -> _NullHandle:
        return _NULL_HANDLE

    def record(
        self,
        name: str,
        start: float,
        end: float,
        lane: str = "",
        parent: Optional[Span] = None,
        **attributes,
    ) -> None:
        return None

    def spans(self) -> Iterator[Span]:
        return iter(())

    def reset(self) -> None:
        return None


#: The shared disabled tracer — the default for every execution path.
NULL_TRACER = _NullTracer()


def chrome_trace_events(tracer, domain: Optional[str] = None) -> Dict:
    """Export a tracer's spans as a Chrome ``trace_event`` document.

    Every span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur``; lanes map to ``tid`` integers in first
    -appearance order, so the document is a deterministic function of
    the span forest.  ``domain`` restricts the export to one clock
    domain (``"virtual"`` exports are byte-stable for seeded runs;
    ``"wall"`` spans carry real timings and vary).
    """
    events: List[Dict[str, Any]] = []
    lanes: Dict[str, int] = {}
    for span in tracer.spans():
        if domain is not None and span.domain != domain:
            continue
        tid = lanes.setdefault(span.lane, len(lanes) + 1)
        events.append(
            {
                "name": span.name,
                "cat": span.domain,
                "ph": "X",
                "ts": int(round(span.start * 1_000_000)),
                "dur": int(round(span.duration * 1_000_000)),
                "pid": 1,
                "tid": tid,
                "args": {
                    key: span.attributes[key]
                    for key in sorted(span.attributes)
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_EVENT_FIELDS = (
    ("name", str),
    ("cat", str),
    ("ph", str),
    ("ts", int),
    ("dur", int),
    ("pid", int),
    ("tid", int),
    ("args", dict),
)


def validate_trace_events(document) -> List[str]:
    """Shape-check one Chrome ``trace_event`` document.

    Returns a list of problem strings — empty means the document has
    the object-format shape Chrome's trace viewer loads: a
    ``traceEvents`` list of complete events carrying ``name``/``cat``
    strings, integer non-negative ``ts``/``dur``, integer
    ``pid``/``tid`` and an ``args`` object.  ``controller:``-prefixed
    events (adaptive-concurrency window adjustments) must additionally
    carry integer ``window_before``/``window_after`` args — the
    contract the bench's exported traces rely on.  Dependency-free on
    purpose: CI runs it before any project install.
    """
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    problems: List[str] = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key, kind in _EVENT_FIELDS:
            value = event.get(key)
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
            elif not isinstance(value, kind) or isinstance(value, bool):
                problems.append(
                    f"event {i}: {key!r} is not {kind.__name__}"
                )
        if event.get("ph") != "X":
            problems.append(
                f"event {i}: phase {event.get('ph')!r} is not 'X'"
            )
        ts = event.get("ts")
        if isinstance(ts, int) and not isinstance(ts, bool) and ts < 0:
            problems.append(f"event {i}: negative ts")
        dur = event.get("dur")
        if isinstance(dur, int) and not isinstance(dur, bool) and dur < 0:
            problems.append(f"event {i}: negative dur")
        name = event.get("name")
        args = event.get("args")
        if (
            isinstance(name, str)
            and name.startswith("controller:")
            and isinstance(args, dict)
        ):
            for key in ("window_before", "window_after"):
                value = args.get(key)
                if not isinstance(value, int) or isinstance(value, bool):
                    problems.append(
                        f"event {i}: controller span without integer "
                        f"{key!r}"
                    )
    return problems
