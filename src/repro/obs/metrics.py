"""Counters, gauges and fixed-bucket histograms behind one registry.

The stack grew one ad-hoc counter bag per layer —
:class:`~repro.federation.network.NetworkStats`,
:class:`~repro.runtime.channel.ChannelStats`, the
:class:`~repro.sparql.cache.PlanCache` hit/miss dict, the statistics
catalog's epochs.  :class:`MetricsRegistry` absorbs them behind one
get-or-create API with a deterministic snapshot/render boundary:
``snapshot()`` returns a name-sorted dict of plain JSON values (ints,
floats, histogram dicts) the bench runner embeds into ``BENCH_*.json``
records, and ``render()`` produces the sorted ``name=value`` lines the
executors' ``explain`` output uses as its unified metrics block.

Everything here is plain arithmetic over deterministic inputs, so two
seeded runs render byte-identical blocks — the property the explain
-determinism tests gate on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

_Number = Union[int, float]


def _fmt(value: _Number) -> str:
    """Deterministic short rendering: ints verbatim, floats via %g."""
    if isinstance(value, bool) or not isinstance(value, float):
        return str(value)
    return format(value, "g")


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins numeric value (sizes, epochs, capacities)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: _Number = 0

    def set(self, value: _Number) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram over ascending upper bounds.

    ``observe(v)`` lands in the first bucket whose bound is >= ``v``
    (the last, unbounded bucket catches the rest) and accumulates
    ``count``/``total``.  The bucket layout is fixed at construction:
    no rebinning, so snapshots from repeated seeded runs are
    comparable key for key.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[_Number]) -> None:
        self.bounds = tuple(bounds)
        if any(
            later <= earlier
            for later, earlier in zip(self.bounds[1:], self.bounds)
        ):
            raise ValueError(f"bounds not ascending: {self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: _Number = 0

    def observe(self, value: _Number) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> Dict[str, _Number]:
        """Bucket counts plus count/sum, as a plain JSON-able dict."""
        out: Dict[str, _Number] = {
            "count": self.count,
            "sum": self.total,
        }
        for bound, n in zip(self.bounds, self.counts):
            out[f"le_{_fmt(bound)}"] = n
        out["inf"] = self.counts[-1]
        return out


class MetricsRegistry:
    """Named metrics with get-or-create access and sorted export.

    One registry per scope: the executor keeps a cumulative one
    (plan-cache and catalog counters), each traced execution can build
    a run-scoped one from its :class:`~repro.federation.network.
    NetworkStats`.  Names are dotted (``plan_cache.hits``); the first
    access fixes a name's metric type and a later access with a
    different type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(*args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is {type(metric).__name__}, "
                f"not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[_Number]
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: _Number) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: _Number, bounds: Sequence[_Number]
    ) -> None:
        self.histogram(name, bounds).observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """Every metric's current value, keyed by name, name-sorted."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def render(self, prefix: str = "") -> List[str]:
        """Sorted ``name=value`` lines — the unified explain block."""
        lines: List[str] = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                for key, cell in value.items():
                    lines.append(f"{prefix}{name}.{key}={_fmt(cell)}")
            else:
                lines.append(f"{prefix}{name}={_fmt(value)}")
        return lines
