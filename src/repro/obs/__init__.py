"""Unified query-telemetry layer: trace spans, ANALYZE, metrics.

Three pieces, threaded through every execution path:

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span` trees over a
  wall clock (local phases) and the deterministic virtual clock
  (federation/runtime), exportable as Chrome ``trace_event`` JSON;
* :mod:`repro.obs.analyze` — the EXPLAIN ANALYZE actual-counter
  plumbing shared by the row, columnar and federated operators;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms) behind one snapshot/render API.

Everything is zero-cost when disabled: the shared :data:`NULL_TRACER`
makes every span hook a constant-time no-op, and ANALYZE counters sit
behind single ``actuals is not None`` guards.
"""

from repro.obs.analyze import attach_actuals, format_actuals
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    chrome_trace_events,
    validate_trace_events,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "attach_actuals",
    "chrome_trace_events",
    "format_actuals",
    "validate_trace_events",
]
