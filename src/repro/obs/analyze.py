"""EXPLAIN ANALYZE plumbing: actual-counter attachment and rendering.

Every physical operator across the three plan vocabularies (row
:class:`~repro.sparql.plan.PhysicalOp`, columnar
:class:`~repro.sparql.batch.BatchOp`, federated
:class:`~repro.federation.plan.FedOp`) carries a class-level
``actuals = None``.  An analyzed execution replaces it with a plain
dict per node (:func:`attach_actuals` for static local plans; the
federated interpreter attaches lazily as the adaptive planner grows
its tree), and operators record counters — rows/batches out, build
sizes, requests issued — behind single ``is not None`` guards, so the
un-analyzed hot path pays one attribute read per operator call.

:func:`format_actuals` renders one node's counters deterministically
(key-sorted) for the annotated explain tree; the counters are all
integers or virtual-clock quantities, so analyzed explain output is
byte-identical across repeated seeded runs.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["attach_actuals", "format_actuals"]


def attach_actuals(root) -> None:
    """Give every operator under ``root`` an empty actuals dict.

    The walker only needs ``children()`` and an assignable ``actuals``
    attribute, so it works on all three operator vocabularies.
    """
    stack = [root]
    while stack:
        op = stack.pop()
        op.actuals = {}
        stack.extend(op.children())


def format_actuals(actuals: Optional[Dict[str, object]]) -> str:
    """One deterministic ``(actual ...)`` suffix for an explain line.

    ``None`` (analysis off) renders nothing; an empty dict means the
    operator was planned but never executed (early termination).
    """
    if actuals is None:
        return ""
    if not actuals:
        return " (actual never-run)"
    note = " ".join(f"{k}={v}" for k, v in sorted(actuals.items()))
    return f" (actual {note})"
