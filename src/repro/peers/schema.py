"""Peer schemas: the sets of IRIs each peer uses (Section 2.2).

A peer schema *S* is "the set of all the constants u ∈ I adopted by the
corresponding peer to describe data in the form of RDF triples".  Schemas
need not be disjoint — two Linked Data sources may share IRIs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator

from repro.errors import PeerSystemError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term

__all__ = ["PeerSchema"]


class PeerSchema:
    """An immutable set of IRIs identifying a peer's vocabulary.

    Args:
        name: the peer's identifier within the RPS.
        iris: the IRIs of the schema.

    Raises:
        PeerSystemError: if the name is empty or a non-IRI is supplied.
    """

    __slots__ = ("name", "iris", "_hash")

    def __init__(self, name: str, iris: Iterable[IRI]) -> None:
        if not name:
            raise PeerSystemError("peer name must be non-empty")
        iri_set = frozenset(iris)
        for iri in iri_set:
            if not isinstance(iri, IRI):
                raise PeerSystemError(
                    f"peer schema elements must be IRIs, got {iri!r}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "iris", iri_set)
        object.__setattr__(self, "_hash", hash((name, iri_set)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PeerSchema is immutable")

    @staticmethod
    def from_graph(name: str, graph: Graph) -> "PeerSchema":
        """Infer the schema from a peer's data: all IRIs in its triples."""
        return PeerSchema(name, graph.iris())

    # -- set behaviour -----------------------------------------------------

    def __contains__(self, term: Term) -> bool:
        return term in self.iris

    def __iter__(self) -> Iterator[IRI]:
        return iter(self.iris)

    def __len__(self) -> int:
        return len(self.iris)

    def __or__(self, other: "PeerSchema") -> FrozenSet[IRI]:
        return self.iris | other.iris

    def __and__(self, other: "PeerSchema") -> FrozenSet[IRI]:
        return self.iris & other.iris

    def covers_term(self, term: Term) -> bool:
        """Schema-compatibility of one query/data term.

        IRIs must belong to the schema; literals, blank nodes and
        variables are always allowed (they are not schema elements).
        """
        if isinstance(term, IRI):
            return term in self.iris
        return True

    def covers_triple_terms(self, terms: Iterable[Term]) -> bool:
        return all(self.covers_term(t) for t in terms)

    # -- value object ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PeerSchema):
            return NotImplemented
        return self.name == other.name and self.iris == other.iris

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"PeerSchema({self.name!r}, {len(self.iris)} IRIs)"
