"""Mapping topology analysis over the peers of an RPS.

The paper's motivation is that existing rewriting techniques assume
two-tiered architectures while "the LOD cloud … comprises several data
sources with arbitrary mapping topologies", including cycles.  This
module builds the peer mapping graph (a ``networkx`` digraph) and
reports the structural properties — cycles, diameter, connectivity —
that the scalability experiments sweep over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import networkx as nx

from repro.rdf.terms import IRI
from repro.peers.system import RPS

__all__ = ["TopologySummary", "mapping_graph", "summarize_topology"]


def _peers_containing(system: RPS, iri: IRI) -> List[str]:
    return [
        name
        for name in system.peer_names()
        if iri in system.peers[name].schema
    ]


def mapping_graph(system: RPS) -> nx.MultiDiGraph:
    """Build the peer-level mapping topology.

    Nodes are peer names.  Each graph mapping assertion adds a directed
    edge source→target (information flows from Q matches to Q′ triples).
    Each equivalence mapping adds a pair of directed edges between every
    pair of peers whose schemas contain its two constants (equivalences
    are symmetric).  Edges carry ``kind`` ("assertion"/"equivalence") and
    ``label`` attributes.
    """
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(system.peer_names())
    for index, assertion in enumerate(system.assertions):
        source = assertion.source_peer
        target = assertion.target_peer
        if not source or not target:
            source_candidates = _owners_of_query(system, assertion.source)
            target_candidates = _owners_of_query(system, assertion.target)
            for s in source_candidates or system.peer_names():
                for t in target_candidates or system.peer_names():
                    if s != t:
                        graph.add_edge(
                            s, t, kind="assertion",
                            label=assertion.label or f"gma#{index}",
                        )
            continue
        graph.add_edge(
            source, target, kind="assertion",
            label=assertion.label or f"gma#{index}",
        )
    for index, equivalence in enumerate(system.equivalences):
        left_owners = _peers_containing(system, equivalence.left)
        right_owners = _peers_containing(system, equivalence.right)
        for left_peer in left_owners:
            for right_peer in right_owners:
                if left_peer == right_peer:
                    continue
                graph.add_edge(
                    left_peer, right_peer, kind="equivalence",
                    label=f"eq#{index}",
                )
                graph.add_edge(
                    right_peer, left_peer, kind="equivalence",
                    label=f"eq#{index}",
                )
    return graph


def _owners_of_query(system: RPS, query) -> List[str]:
    """Peers whose schema covers every IRI of the query."""
    iris = query.iris()
    return [
        name
        for name in system.peer_names()
        if all(iri in system.peers[name].schema for iri in iris)
    ]


@dataclass(frozen=True)
class TopologySummary:
    """Structural facts about a mapping topology.

    Attributes:
        peers: number of peers.
        assertion_edges / equivalence_edges: edge counts by kind.
        has_cycles: does the digraph contain a directed cycle?  (The
            regime where prior two-tier rewriting approaches break.)
        weakly_connected_components: count of weakly connected parts.
        largest_scc: size of the largest strongly connected component.
        diameter: diameter of the largest weakly connected component
            viewed as an undirected graph (0 for singleton components).
    """

    peers: int
    assertion_edges: int
    equivalence_edges: int
    has_cycles: bool
    weakly_connected_components: int
    largest_scc: int
    diameter: int


def summarize_topology(system: RPS) -> TopologySummary:
    """Compute a :class:`TopologySummary` for the system."""
    graph = mapping_graph(system)
    assertion_edges = sum(
        1 for *_edge, data in graph.edges(data=True) if data["kind"] == "assertion"
    )
    equivalence_edges = sum(
        1 for *_edge, data in graph.edges(data=True) if data["kind"] == "equivalence"
    )
    simple = nx.DiGraph(graph)
    has_cycles = not nx.is_directed_acyclic_graph(simple) if len(simple) else False
    weak_components = (
        list(nx.weakly_connected_components(simple)) if len(simple) else []
    )
    largest_scc = (
        max(len(c) for c in nx.strongly_connected_components(simple))
        if len(simple)
        else 0
    )
    diameter = 0
    if weak_components:
        largest = max(weak_components, key=len)
        if len(largest) > 1:
            undirected = simple.subgraph(largest).to_undirected()
            diameter = nx.diameter(undirected)
    return TopologySummary(
        peers=len(system.peers),
        assertion_edges=assertion_edges,
        equivalence_edges=equivalence_edges,
        has_cycles=has_cycles,
        weakly_connected_components=len(weak_components),
        largest_scc=largest_scc,
        diameter=diameter,
    )
