"""Algorithm 1: the RDF-level chase computing a universal solution.

The paper's Algorithm 1 (Appendix) builds a peer-to-peer database J from
the stored database D by repeatedly repairing unsatisfied mappings:

* a **graph mapping assertion** Q ⇝ Q′ is repaired per violating tuple
  ``t ∈ Q_J \\ Q′_J``: substitute t into Q′'s free variables and add the
  body triples of Q′, minting a fresh blank node for each existential
  variable of Q′ (the labelled nulls of the data-exchange view);
* an **equivalence mapping** c ≡ₑ c′ is repaired by copying each triple
  context between c and c′ in all three positions, under the
  blank-keeping ``Q*`` semantics.

New blank nodes never enable further assertion triggers through the free
variables (those range over IRIs/literals only — the ``rt`` guards of
the Section-3 encoding), so the chase terminates in polynomially many
steps (Theorem 1).

Two evaluation policies are provided:

* ``semi_naive=False`` — faithful Algorithm 1: every mapping is
  re-checked in every fixpoint round;
* ``semi_naive=True`` (default) — a delta-driven ablation: a mapping is
  only re-checked when some triple added in the previous round could
  participate in a new violation (positional match against the source
  pattern, or mention of an equivalence constant).  Results are
  identical (property-tested); only the work differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ChaseNonTerminationError
from repro.gpq.evaluation import evaluate_query
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Variable, fresh_blank_node
from repro.rdf.triples import Triple, TriplePattern
from repro.peers.mappings import GraphMappingAssertion
from repro.peers.system import RPS

__all__ = ["PeerChaseResult", "chase_universal_solution"]


@dataclass
class PeerChaseResult:
    """Outcome of an Algorithm-1 run.

    Attributes:
        solution: the universal solution J.
        stored_triples: |D| — triples copied from the stored database.
        assertion_triples: triples added by graph mapping assertions
            (the *dashed arrows* of Figure 2).
        equivalence_triples: triples added by equivalence mappings
            (the *dotted arrows* of Figure 2).
        assertion_firings: number of assertion repair steps (one per
            violating tuple).
        blank_nodes_created: fresh labelled nulls minted.
        rounds: fixpoint rounds executed.
    """

    solution: Graph
    stored_triples: int = 0
    assertion_triples: int = 0
    equivalence_triples: int = 0
    assertion_firings: int = 0
    blank_nodes_created: int = 0
    rounds: int = 0

    @property
    def inferred_triples(self) -> int:
        return self.assertion_triples + self.equivalence_triples


def chase_universal_solution(
    system: RPS,
    max_rounds: int = 10_000,
    semi_naive: bool = True,
) -> PeerChaseResult:
    """Run Algorithm 1 and return the universal solution for the RPS.

    Args:
        system: the RPS ``(S, G, E)`` with its stored data.
        max_rounds: fixpoint-round budget (Theorem 1 guarantees
            termination; the budget guards against implementation bugs).
        semi_naive: enable the delta-driven relevance filter.

    Raises:
        ChaseNonTerminationError: if the round budget is exhausted.
    """
    # The chase mints globally fresh blank nodes (a process-wide counter),
    # so encoding the solution against the shared default dictionary would
    # grow it without bound across runs.  Each universal solution therefore
    # gets its own private dictionary, reclaimed when the solution is.
    solution = Graph(
        system.stored_database(),
        name="universal-solution",
        dictionary=TermDictionary(),
    )
    result = PeerChaseResult(solution=solution, stored_triples=len(solution))

    source_conjuncts: List[List[TriplePattern]] = [
        assertion.source.conjuncts() for assertion in system.assertions
    ]
    equivalence_terms = [eq.terms() for eq in system.equivalences]

    # None means "everything is new" (first round).
    delta: Optional[List[Triple]] = None

    while True:
        result.rounds += 1
        if result.rounds > max_rounds:
            raise ChaseNonTerminationError(
                f"Algorithm 1 exceeded {max_rounds} rounds", steps=result.rounds
            )
        new_triples: List[Triple] = []

        for index, assertion in enumerate(system.assertions):
            if delta is not None and not _assertion_relevant(
                source_conjuncts[index], delta
            ):
                continue
            new_triples.extend(_repair_assertion(solution, assertion, result))

        for left, right in equivalence_terms:
            if delta is not None and not _equivalence_relevant(
                left, right, delta
            ):
                continue
            new_triples.extend(
                _repair_equivalence(solution, left, right, result)
            )

        if not new_triples:
            break
        delta = new_triples if semi_naive else None
    return result


def _assertion_relevant(
    conjuncts: Sequence[TriplePattern], delta: Sequence[Triple]
) -> bool:
    """Could any new triple participate in a new source-pattern match?

    A new match of the source pattern must map at least one conjunct onto
    at least one new triple; the test checks positional compatibility.
    """
    for triple in delta:
        for pattern in conjuncts:
            if pattern.matches(triple) is not None:
                return True
    return False


def _equivalence_relevant(left, right, delta: Sequence[Triple]) -> bool:
    for triple in delta:
        if left in triple.terms() or right in triple.terms():
            return True
    return False


def _repair_assertion(
    solution: Graph, assertion: GraphMappingAssertion, result: PeerChaseResult
) -> List[Triple]:
    """One repair pass for Q ⇝ Q′ (case 2 of Algorithm 1)."""
    added: List[Triple] = []
    source_answers = evaluate_query(solution, assertion.source)
    if not source_answers:
        return added
    target_answers = evaluate_query(solution, assertion.target)
    violating = source_answers - target_answers
    for answer in sorted(violating, key=_tuple_key):
        binding: Dict[Variable, Term] = dict(zip(assertion.target.head, answer))
        for var in sorted(
            assertion.target.existential_variables(), key=lambda v: v.name
        ):
            binding[var] = fresh_blank_node()
            result.blank_nodes_created += 1
        for pattern in assertion.target.conjuncts():
            triple = pattern.to_triple(binding)
            if solution.add(triple):
                added.append(triple)
                result.assertion_triples += 1
        result.assertion_firings += 1
    return added


def _repair_equivalence(
    solution: Graph, left, right, result: PeerChaseResult
) -> List[Triple]:
    """One repair pass for c ≡ₑ c′ (case 3 of Algorithm 1).

    Copies subject, predicate and object contexts both ways using the
    graph indexes directly — equivalent to the six switch blocks of
    Algorithm 1 under the ``Q*`` (blank-keeping) semantics.
    """
    added: List[Triple] = []

    def copy(source_term: Term, target_term: Term) -> None:
        for triple in list(solution.triples(subject=source_term)):
            candidate = Triple(target_term, triple.predicate, triple.object)
            if solution.add(candidate):
                added.append(candidate)
                result.equivalence_triples += 1
        for triple in list(solution.triples(predicate=source_term)):
            candidate = Triple(triple.subject, target_term, triple.object)
            if solution.add(candidate):
                added.append(candidate)
                result.equivalence_triples += 1
        for triple in list(solution.triples(object=source_term)):
            candidate = Triple(triple.subject, triple.predicate, target_term)
            if solution.add(candidate):
                added.append(candidate)
                result.equivalence_triples += 1

    copy(left, right)
    copy(right, left)
    return added


def _tuple_key(answer: Tuple[Term, ...]) -> Tuple:
    return tuple(term.sort_key() for term in answer)
