"""RDF Peer Systems — the paper's primary contribution (Sections 2-3).

Peer schemas and peers, graph mapping assertions and equivalence
mappings, the RPS triple ``(S, G, E)``, Definition-2 solution checking,
the Section-3 data-exchange encoding, Algorithm 1 (the RDF-level chase
to a universal solution) and certain-answer computation.
"""

from repro.peers.certain_answers import (
    CertainAnswerReport,
    certain_answers,
    certain_answers_report,
    certain_ask,
)
from repro.peers.chase import PeerChaseResult, chase_universal_solution
from repro.peers.data_exchange import (
    DataExchangeSetting,
    RS,
    RT,
    TS,
    TT,
    assertion_to_tgd,
    chase_via_data_exchange,
    equivalence_to_tgds,
    gpq_to_cq,
    graph_to_source_instance,
    rewriting_tgds,
    rps_to_data_exchange,
    target_instance_to_graph,
)
from repro.peers.mappings import (
    EquivalenceMapping,
    GraphMappingAssertion,
    equivalences_from_sameas,
)
from repro.peers.peer import Peer
from repro.peers.schema import PeerSchema
from repro.peers.solutions import SolutionReport, check_solution, is_solution
from repro.peers.system import RPS
from repro.peers.topology import (
    TopologySummary,
    mapping_graph,
    summarize_topology,
)

__all__ = [
    "CertainAnswerReport",
    "DataExchangeSetting",
    "EquivalenceMapping",
    "GraphMappingAssertion",
    "Peer",
    "PeerChaseResult",
    "PeerSchema",
    "RPS",
    "RS",
    "RT",
    "SolutionReport",
    "TS",
    "TT",
    "TopologySummary",
    "assertion_to_tgd",
    "certain_answers",
    "certain_answers_report",
    "certain_ask",
    "chase_universal_solution",
    "chase_via_data_exchange",
    "check_solution",
    "equivalence_to_tgds",
    "equivalences_from_sameas",
    "gpq_to_cq",
    "graph_to_source_instance",
    "is_solution",
    "mapping_graph",
    "rewriting_tgds",
    "rps_to_data_exchange",
    "summarize_topology",
    "target_instance_to_graph",
]
