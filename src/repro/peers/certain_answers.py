"""Certain answers over an RPS (Definition 3 + Algorithm 1).

``ans(q, P, D)`` is the set of answer tuples of constants (IRIs and
literals — no blank nodes) present in *every* solution of P.  Per
Section 3, evaluating q over a universal solution under the
blank-dropping ``Q_D`` semantics yields exactly the certain answers;
:func:`certain_answers` implements that pipeline and
:func:`certain_answers_report` additionally returns the chase statistics
for instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple, Union

from repro.gpq.evaluation import ask as gpq_ask, evaluate_query
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import Term
from repro.sparql.bridge import sparql_to_gpq
from repro.peers.chase import PeerChaseResult, chase_universal_solution
from repro.peers.system import RPS

__all__ = [
    "CertainAnswerReport",
    "certain_answers",
    "certain_answers_report",
    "certain_ask",
]

QueryLike = Union[str, GraphPatternQuery]


def _to_gpq(
    query: QueryLike, nsm: Optional[NamespaceManager]
) -> GraphPatternQuery:
    if isinstance(query, GraphPatternQuery):
        return query
    return sparql_to_gpq(query, nsm)


@dataclass
class CertainAnswerReport:
    """Certain answers plus the chase run that produced them.

    Attributes:
        answers: the certain answer tuples.
        chase: statistics of the Algorithm-1 run.
        universal_solution: the materialised J (shared, not copied).
    """

    answers: Set[Tuple[Term, ...]]
    chase: PeerChaseResult
    universal_solution: Graph


def certain_answers(
    system: RPS,
    query: QueryLike,
    nsm: Optional[NamespaceManager] = None,
    solution: Optional[Graph] = None,
) -> Set[Tuple[Term, ...]]:
    """Compute ``ans(q, P, D)`` by the chase (Algorithm 1).

    Args:
        system: the RPS.
        query: a graph pattern query, or conjunctive SPARQL text.
        nsm: namespace manager for SPARQL parsing.
        solution: a pre-materialised universal solution to reuse
            (skips the chase; callers answering many queries over the
            same data should materialise once).

    Returns:
        The set of certain answer tuples (blank-free).
    """
    gpq = _to_gpq(query, nsm)
    if solution is None:
        solution = chase_universal_solution(system).solution
    return evaluate_query(solution, gpq)


def certain_answers_report(
    system: RPS,
    query: QueryLike,
    nsm: Optional[NamespaceManager] = None,
) -> CertainAnswerReport:
    """Certain answers with full chase instrumentation."""
    gpq = _to_gpq(query, nsm)
    chase_result = chase_universal_solution(system)
    answers = evaluate_query(chase_result.solution, gpq)
    return CertainAnswerReport(
        answers=answers,
        chase=chase_result,
        universal_solution=chase_result.solution,
    )


def certain_ask(
    system: RPS,
    query: QueryLike,
    nsm: Optional[NamespaceManager] = None,
    solution: Optional[Graph] = None,
) -> bool:
    """Boolean certain answering: does the query hold in every solution?

    For an arity-0 query this asks whether the (certain) Boolean answer
    is true; for higher arities it asks whether any certain answer
    exists.
    """
    gpq = _to_gpq(query, nsm)
    if solution is None:
        solution = chase_universal_solution(system).solution
    if gpq.is_boolean():
        return gpq_ask(solution, gpq)
    return bool(evaluate_query(solution, gpq))
