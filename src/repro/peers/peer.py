"""A peer: a schema plus its stored RDF database (Section 2.3).

For each peer schema S the RPS holds a database *d* of triples
``(s, p, o) ∈ (S ∪ B) × S × (S ∪ B ∪ L)`` — every IRI in a stored triple
must come from the peer's own schema.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import SchemaViolationError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.rdf.triples import Triple
from repro.peers.schema import PeerSchema

__all__ = ["Peer"]


class Peer:
    """A named peer with a schema and a local triple store.

    Args:
        schema: the peer's schema.
        graph: initial data; validated against the schema unless
            ``validate=False``.
        validate: enforce that stored triples only use schema IRIs.

    Raises:
        SchemaViolationError: when validation finds a foreign IRI.
    """

    def __init__(
        self,
        schema: PeerSchema,
        graph: Optional[Graph] = None,
        validate: bool = True,
    ) -> None:
        self.schema = schema
        self.graph = graph if graph is not None else Graph(name=schema.name)
        if not self.graph.name:
            self.graph.name = schema.name
        self.validate = validate
        if validate:
            for triple in self.graph:
                self._check(triple)

    @staticmethod
    def from_graph(name: str, graph: Graph) -> "Peer":
        """Build a peer whose schema is inferred from its data."""
        return Peer(PeerSchema.from_graph(name, graph), graph, validate=False)

    @property
    def name(self) -> str:
        return self.schema.name

    def _check(self, triple: Triple) -> None:
        for term in triple:
            if isinstance(term, IRI) and term not in self.schema:
                raise SchemaViolationError(
                    f"triple {triple.n3()} uses IRI {term.n3()} outside "
                    f"the schema of peer {self.name!r}"
                )

    def add(self, triple: Triple) -> bool:
        """Store a triple, validating against the schema when enabled."""
        if self.validate:
            self._check(triple)
        return self.graph.add(triple)

    def add_all(self, triples: Iterable[Triple]) -> int:
        return sum(1 for t in triples if self.add(t))

    def __len__(self) -> int:
        return len(self.graph)

    def __repr__(self) -> str:
        return f"Peer({self.name!r}, {len(self.graph)} triples)"
