"""Definition 2: checking that a peer-to-peer database is a solution.

A peer-to-peer database I is a *solution* for an RPS P based on a stored
database D when (1) every stored peer database is contained in I, (2)
every graph mapping assertion satisfies ``Q_I ⊆ Q′_I``, and (3) every
equivalence mapping satisfies the three ``Q*`` context equalities.  This
module checks the definition directly — it is the ground truth the chase
and the property tests are verified against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.gpq.evaluation import evaluate_query, evaluate_query_star
from repro.gpq.query import obj_query, pred_query, subj_query
from repro.rdf.graph import Graph
from repro.peers.system import RPS

__all__ = ["SolutionReport", "is_solution", "check_solution"]


@dataclass
class SolutionReport:
    """Detailed outcome of a Definition-2 check.

    Attributes:
        ok: overall verdict.
        missing_stored: stored triples absent from the candidate.
        assertion_violations: per assertion, the tuples in Q_I \\ Q′_I.
        equivalence_violations: human-readable descriptions of failed
            context equalities.
    """

    ok: bool = True
    missing_stored: List[str] = field(default_factory=list)
    assertion_violations: List[Tuple[str, int]] = field(default_factory=list)
    equivalence_violations: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.ok:
            return "solution: all Definition-2 conditions hold"
        parts = []
        if self.missing_stored:
            parts.append(f"{len(self.missing_stored)} stored triples missing")
        if self.assertion_violations:
            parts.append(
                f"{len(self.assertion_violations)} assertion(s) violated"
            )
        if self.equivalence_violations:
            parts.append(
                f"{len(self.equivalence_violations)} equivalence(s) violated"
            )
        return "not a solution: " + "; ".join(parts)


def check_solution(
    system: RPS, candidate: Graph, max_reported: int = 10
) -> SolutionReport:
    """Check Definition 2 for ``candidate``, reporting all failures."""
    report = SolutionReport()

    # Condition 1: d ⊆ I for every stored peer database d.
    for name in system.peer_names():
        for triple in system.peers[name].graph:
            if triple not in candidate:
                report.ok = False
                if len(report.missing_stored) < max_reported:
                    report.missing_stored.append(f"[{name}] {triple.n3()}")

    # Condition 2: Q_I ⊆ Q'_I for every graph mapping assertion.
    for index, assertion in enumerate(system.assertions):
        source_answers = evaluate_query(candidate, assertion.source)
        if not source_answers:
            continue
        target_answers = evaluate_query(candidate, assertion.target)
        violating = source_answers - target_answers
        if violating:
            report.ok = False
            label = assertion.label or f"assertion#{index}"
            report.assertion_violations.append((label, len(violating)))

    # Condition 3: subj/pred/obj context equalities (Q* semantics).
    for equivalence in system.equivalences:
        left, right = equivalence.terms()
        for probe_name, probe in (
            ("subjQ", subj_query),
            ("predQ", pred_query),
            ("objQ", obj_query),
        ):
            left_context = evaluate_query_star(candidate, probe(left))
            right_context = evaluate_query_star(candidate, probe(right))
            if left_context != right_context:
                report.ok = False
                difference = len(left_context ^ right_context)
                report.equivalence_violations.append(
                    f"{probe_name}({left.n3()}) != {probe_name}({right.n3()}) "
                    f"({difference} differing context tuples)"
                )
    return report


def is_solution(system: RPS, candidate: Graph) -> bool:
    """Boolean Definition-2 check."""
    return check_solution(system, candidate).ok
