"""RDF Peer Systems: the triple ``P = (S, G, E)`` of Section 2.2.

An :class:`RPS` bundles peer schemas (with their stored databases),
graph mapping assertions and equivalence mappings, and exposes the
derived artefacts the rest of the library consumes: the stored database
*D* (union of peer databases), schema-closure validation, and the peer
mapping topology.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.errors import MappingError, PeerSystemError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.peers.mappings import (
    EquivalenceMapping,
    GraphMappingAssertion,
    equivalences_from_sameas,
)
from repro.peers.peer import Peer
from repro.peers.schema import PeerSchema

__all__ = ["RPS"]


class RPS:
    """An RDF Peer System ``P = (S, G, E)``.

    Args:
        peers: the peers (each carrying its schema S ∈ 𝒮 and database d).
        assertions: the graph mapping assertions G.
        equivalences: the equivalence mappings E.
        validate: check mappings against peer schemas on construction.

    Raises:
        PeerSystemError: duplicate peer names.
        MappingError: a mapping references unknown peers or foreign IRIs
            (only when ``validate`` and the mapping names its peers).
    """

    def __init__(
        self,
        peers: Sequence[Peer],
        assertions: Sequence[GraphMappingAssertion] = (),
        equivalences: Sequence[EquivalenceMapping] = (),
        validate: bool = True,
    ) -> None:
        self.peers: Dict[str, Peer] = {}
        for peer in peers:
            if peer.name in self.peers:
                raise PeerSystemError(f"duplicate peer name {peer.name!r}")
            self.peers[peer.name] = peer
        self.assertions: List[GraphMappingAssertion] = list(assertions)
        self.equivalences: List[EquivalenceMapping] = list(equivalences)
        if validate:
            self._validate()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def from_graphs(
        graphs: Dict[str, Graph],
        assertions: Sequence[GraphMappingAssertion] = (),
        equivalences: Sequence[EquivalenceMapping] = (),
        harvest_sameas: bool = False,
    ) -> "RPS":
        """Build an RPS from named graphs, inferring each peer's schema.

        Args:
            graphs: peer name → stored database.
            assertions: graph mapping assertions.
            equivalences: explicit equivalence mappings.
            harvest_sameas: additionally compile every ``owl:sameAs``
                stored triple into an equivalence mapping (Example 2).
        """
        peers = [Peer.from_graph(name, graph) for name, graph in graphs.items()]
        eqs = list(equivalences)
        if harvest_sameas:
            existing = set(eqs)
            for mapping in equivalences_from_sameas(graphs.values()):
                if mapping not in existing:
                    existing.add(mapping)
                    eqs.append(mapping)
        return RPS(peers, assertions, eqs)

    def _validate(self) -> None:
        for assertion in self.assertions:
            if assertion.source_peer:
                source = self._peer_schema(assertion.source_peer)
                target = self._peer_schema(assertion.target_peer)
                assertion.validate_against(source, target)
        known = self.all_schema_iris()
        for equivalence in self.equivalences:
            for side in equivalence.terms():
                if side not in known:
                    raise MappingError(
                        f"equivalence constant {side.n3()} belongs to no "
                        "peer schema"
                    )

    def _peer_schema(self, name: str) -> PeerSchema:
        try:
            return self.peers[name].schema
        except KeyError:
            raise MappingError(f"mapping references unknown peer {name!r}") from None

    # -- accessors ---------------------------------------------------------------

    def peer(self, name: str) -> Peer:
        try:
            return self.peers[name]
        except KeyError:
            raise PeerSystemError(f"no peer named {name!r}") from None

    def peer_names(self) -> List[str]:
        return sorted(self.peers.keys())

    def schemas(self) -> List[PeerSchema]:
        """The set 𝒮 of peer schemas."""
        return [self.peers[name].schema for name in self.peer_names()]

    def all_schema_iris(self) -> Set[IRI]:
        """``S₁ ∪ … ∪ Sₙ`` — the vocabulary of the whole system."""
        out: Set[IRI] = set()
        for peer in self.peers.values():
            out.update(peer.schema.iris)
        return out

    def stored_database(self) -> Graph:
        """The stored database D: the union of all peer databases."""
        union = Graph(name="stored")
        for name in self.peer_names():
            union.add_all(self.peers[name].graph)
        return union

    def total_stored_triples(self) -> int:
        return sum(len(p.graph) for p in self.peers.values())

    # -- mutation -------------------------------------------------------------------

    def add_assertion(self, assertion: GraphMappingAssertion) -> None:
        if assertion.source_peer:
            assertion.validate_against(
                self._peer_schema(assertion.source_peer),
                self._peer_schema(assertion.target_peer),
            )
        self.assertions.append(assertion)

    def add_equivalence(self, equivalence: EquivalenceMapping) -> None:
        known = self.all_schema_iris()
        for side in equivalence.terms():
            if side not in known:
                raise MappingError(
                    f"equivalence constant {side.n3()} belongs to no peer schema"
                )
        self.equivalences.append(equivalence)

    def add_peer(self, peer: Peer) -> None:
        if peer.name in self.peers:
            raise PeerSystemError(f"duplicate peer name {peer.name!r}")
        self.peers[peer.name] = peer

    # -- equivalence classes -----------------------------------------------------------

    def equivalence_classes(self) -> Dict[IRI, Set[IRI]]:
        """Union-find closure of E: each IRI → its full equivalence class.

        E is a set of pairs; its reflexive-symmetric-transitive closure
        partitions the affected IRIs.  Used by redundancy elimination and
        by the optimised chase.
        """
        parent: Dict[IRI, IRI] = {}

        def find(x: IRI) -> IRI:
            root = x
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(x, x) != root:
                parent[x], x = root, parent[x]
            return root

        def union(a: IRI, b: IRI) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for equivalence in self.equivalences:
            union(equivalence.left, equivalence.right)
        classes: Dict[IRI, Set[IRI]] = {}
        members: Set[IRI] = set()
        for equivalence in self.equivalences:
            members.update(equivalence.terms())
        for iri in members:
            classes.setdefault(find(iri), set()).add(iri)
        return {iri: classes[find(iri)] for iri in members}

    def __repr__(self) -> str:
        return (
            f"RPS({len(self.peers)} peers, {len(self.assertions)} assertions, "
            f"{len(self.equivalences)} equivalences)"
        )
