"""Peer mappings: graph mapping assertions and equivalence mappings.

Section 2.2 defines two mapping kinds:

* a **graph mapping assertion** ``Q ⇝ Q′`` between two graph pattern
  queries of the same arity over the schemas of two peers, with the
  containment semantics ``Q_I ⊆ Q′_I`` (Definition 2, item 2);
* an **equivalence mapping** ``c ≡ₑ c′`` between schema constants, with
  the same-context semantics over ``subjQ``/``predQ``/``objQ`` under the
  blank-keeping ``Q*`` semantics (Definition 2, item 3) — the formal
  account of ``owl:sameAs``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import MappingError
from repro.gpq.query import GraphPatternQuery
from repro.rdf.graph import Graph
from repro.rdf.namespaces import OWL_SAME_AS
from repro.rdf.terms import IRI
from repro.peers.schema import PeerSchema

__all__ = ["GraphMappingAssertion", "EquivalenceMapping", "equivalences_from_sameas"]


class GraphMappingAssertion:
    """A graph mapping assertion ``Q ⇝ Q′``.

    Args:
        source: the query Q over the source peer's schema.
        target: the query Q′ over the target peer's schema.
        source_peer: name of the peer whose vocabulary Q uses (optional,
            for diagnostics and topology analysis).
        target_peer: name of the peer whose vocabulary Q′ uses.
        label: diagnostic name.

    Raises:
        MappingError: if the arities differ.
    """

    __slots__ = ("source", "target", "source_peer", "target_peer", "label", "_hash")

    def __init__(
        self,
        source: GraphPatternQuery,
        target: GraphPatternQuery,
        source_peer: str = "",
        target_peer: str = "",
        label: str = "",
    ) -> None:
        if source.arity != target.arity:
            raise MappingError(
                f"mapping assertion arity mismatch: source {source.arity} "
                f"vs target {target.arity}"
            )
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "source_peer", source_peer)
        object.__setattr__(self, "target_peer", target_peer)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((source, target)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GraphMappingAssertion is immutable")

    @property
    def arity(self) -> int:
        return self.source.arity

    def validate_against(
        self, source_schema: PeerSchema, target_schema: PeerSchema
    ) -> None:
        """Check that Q and Q′ only mention their peer's schema IRIs.

        Raises:
            MappingError: naming the first foreign IRI found.
        """
        for iri in self.source.iris():
            if iri not in source_schema:
                raise MappingError(
                    f"assertion source query uses {iri.n3()} outside the "
                    f"schema of peer {source_schema.name!r}"
                )
        for iri in self.target.iris():
            if iri not in target_schema:
                raise MappingError(
                    f"assertion target query uses {iri.n3()} outside the "
                    f"schema of peer {target_schema.name!r}"
                )

    def is_linear(self) -> bool:
        """Single-triple-pattern body on the source side.

        This matches the paper's usage in Example 3, where the Example-2
        assertion (single source triple pattern, two-pattern target) is
        called linear: the induced TGD has one non-guard body atom.
        """
        return len(self.source.conjuncts()) == 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphMappingAssertion):
            return NotImplemented
        return self.source == other.source and self.target == other.target

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        name = f"[{self.label}] " if self.label else ""
        return f"{name}{self.source.to_text()}  ~>  {self.target.to_text()}"


class EquivalenceMapping:
    """An equivalence mapping ``c ≡ₑ c′`` between schema constants.

    Args:
        left: the constant c (an IRI of some peer schema).
        right: the constant c′.

    Raises:
        MappingError: if either side is not an IRI, or both are equal.
    """

    __slots__ = ("left", "right", "_hash")

    def __init__(self, left: IRI, right: IRI) -> None:
        if not isinstance(left, IRI) or not isinstance(right, IRI):
            raise MappingError(
                "equivalence mappings relate schema IRIs; got "
                f"{left!r} ≡ {right!r}"
            )
        if left == right:
            raise MappingError(f"trivial equivalence {left.n3()} ≡ itself")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        # Symmetric value semantics: (a,b) == (b,a).
        object.__setattr__(self, "_hash", hash(frozenset((left, right))))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("EquivalenceMapping is immutable")

    def terms(self) -> Tuple[IRI, IRI]:
        return (self.left, self.right)

    def other(self, iri: IRI) -> IRI:
        """The opposite side of the equivalence.

        Raises:
            MappingError: if ``iri`` is neither side.
        """
        if iri == self.left:
            return self.right
        if iri == self.right:
            return self.left
        raise MappingError(f"{iri.n3()} is not part of {self!r}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EquivalenceMapping):
            return NotImplemented
        return {self.left, self.right} == {other.left, other.right}

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.left.n3()} ≡ {self.right.n3()}"


def equivalences_from_sameas(
    graphs: Iterable[Graph],
    sameas_predicate: IRI = OWL_SAME_AS,
) -> List[EquivalenceMapping]:
    """Harvest equivalence mappings from ``owl:sameAs`` triples.

    Example 2 builds E as "an equivalence mapping c ≡ₑ c′ for each triple
    of the form (c, sameAs, c′)"; this helper does exactly that over any
    number of stored graphs.  Reflexive links are skipped; duplicates
    (including symmetric ones) collapse.
    """
    out: List[EquivalenceMapping] = []
    seen = set()
    for graph in graphs:
        for triple in graph.triples(predicate=sameas_predicate):
            subject, object_ = triple.subject, triple.object
            if not isinstance(subject, IRI) or not isinstance(object_, IRI):
                continue
            if subject == object_:
                continue
            key = frozenset((subject, object_))
            if key in seen:
                continue
            seen.add(key)
            out.append(EquivalenceMapping(subject, object_))
    return out
