"""Section 3: encoding an RPS as a relational data-exchange setting.

The encoding uses source alphabet ``Rs = {ts, rs}`` and target alphabet
``Rt = {tt, rt}``:

* ``ts(s, p, o)`` / ``tt(s, p, o)`` — stored / inferred RDF triples;
* ``rs(u)`` / ``rt(u)`` — stored / inferred *identified resources*
  (IRIs and literals; blank nodes are not identified resources).

Source-to-target dependencies copy ts→tt and rs→rt.  Target dependencies
encode the peer mappings:

* each graph mapping assertion Q ⇝ Q′ becomes
  ``Qbody(x,y) ∧ rt(x₁) ∧ … ∧ rt(xₙ) → ∃z Q′body(x,z)``;
* each equivalence mapping c ≡ₑ c′ becomes the six positional copy TGDs.

The module also produces the *rewriting view* of the dependencies — the
same TGDs with the ``rt`` guards dropped, valid under the paper's
Section-4 assumption that sources contain no blank nodes ("for any D we
have that D ⊨ ∀x rt(x)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import TGDError
from repro.gpq.query import GraphPatternQuery
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, Term, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.tgd.atoms import Atom, Constant, Instance, LabeledNull, RelTerm, RelVar
from repro.tgd.chase import ChaseResult, chase
from repro.tgd.cq import ConjunctiveQuery
from repro.tgd.dependencies import TGD
from repro.peers.mappings import EquivalenceMapping, GraphMappingAssertion
from repro.peers.system import RPS

__all__ = [
    "DataExchangeSetting",
    "TS",
    "TT",
    "RS",
    "RT",
    "rps_to_data_exchange",
    "graph_to_source_instance",
    "assertion_to_tgd",
    "equivalence_to_tgds",
    "target_instance_to_graph",
    "chase_via_data_exchange",
    "gpq_to_cq",
    "rewriting_tgds",
]

TS = "ts"
TT = "tt"
RS = "rs"
RT = "rt"


def _term_to_rel(term: Term) -> RelTerm:
    """Ground RDF term → relational constant (blank nodes included:
    stored blanks are constants of the instance, not chase nulls)."""
    return Constant(term)


def _pattern_term_to_rel(
    term: Term, variables: Dict[Variable, RelVar]
) -> RelTerm:
    if isinstance(term, Variable):
        if term not in variables:
            variables[term] = RelVar(term.name)
        return variables[term]
    return Constant(term)


def triple_pattern_to_atom(
    pattern: TriplePattern,
    variables: Dict[Variable, RelVar],
    predicate: str = TT,
) -> Atom:
    """A triple pattern becomes a ``tt`` (or ``ts``) atom."""
    return Atom(
        predicate,
        _pattern_term_to_rel(pattern.subject, variables),
        _pattern_term_to_rel(pattern.predicate, variables),
        _pattern_term_to_rel(pattern.object, variables),
    )


def gpq_to_cq(
    query: GraphPatternQuery, predicate: str = TT, label: str = "q"
) -> ConjunctiveQuery:
    """The paper's ``Qbody``: a graph pattern query as a relational CQ."""
    variables: Dict[Variable, RelVar] = {}
    body = [
        triple_pattern_to_atom(tp, variables, predicate)
        for tp in query.conjuncts()
    ]
    head = [
        _pattern_term_to_rel(v, variables)
        for v in query.head
    ]
    rel_head: List[RelVar] = []
    for item in head:
        assert isinstance(item, RelVar)
        rel_head.append(item)
    return ConjunctiveQuery(rel_head, body, label=label)


def graph_to_source_instance(graph: Graph) -> Instance:
    """The source instance: ``ts`` facts plus ``rs`` facts.

    ``rs(u)`` holds for every IRI and literal occurring in the graph
    (blank nodes are excluded — they are not identified resources).
    """
    instance = Instance()
    for triple in graph:
        instance.add(
            Atom(
                TS,
                _term_to_rel(triple.subject),
                _term_to_rel(triple.predicate),
                _term_to_rel(triple.object),
            )
        )
        for term in triple.terms():
            if not isinstance(term, BlankNode):
                instance.add(Atom(RS, _term_to_rel(term)))
    return instance


def source_to_target_tgds() -> List[TGD]:
    """``ts(x,y,z) → tt(x,y,z)`` and ``rs(x) → rt(x)``."""
    x, y, z = RelVar("x"), RelVar("y"), RelVar("z")
    return [
        TGD([Atom(TS, x, y, z)], [Atom(TT, x, y, z)], label="copy-triples"),
        TGD([Atom(RS, x)], [Atom(RT, x)], label="copy-resources"),
    ]


def assertion_to_tgd(
    assertion: GraphMappingAssertion,
    with_rt_guards: bool = True,
    label: str = "",
) -> TGD:
    """``Qbody(x,y) ∧ rt(x₁) ∧ … → ∃z Q′body(x,z)``.

    Source and target variable scopes are kept apart except for the
    frontier (the shared head positions x), exactly as in the paper's
    construction.
    """
    source_vars: Dict[Variable, RelVar] = {}
    body = [
        triple_pattern_to_atom(tp, source_vars)
        for tp in assertion.source.conjuncts()
    ]
    frontier: List[RelVar] = []
    for var in assertion.source.head:
        rel = source_vars[var]
        frontier.append(rel)
        if with_rt_guards:
            body.append(Atom(RT, rel))

    # Target variables: head positions reuse the frontier variables;
    # existential variables get fresh names.
    target_vars: Dict[Variable, RelVar] = {}
    for src_head_var, frontier_var in zip(assertion.target.head, frontier):
        target_vars[src_head_var] = frontier_var
    used = {v.name for v in source_vars.values()}
    for var in sorted(
        assertion.target.existential_variables(), key=lambda v: v.name
    ):
        name = var.name
        while name in used:
            name = name + "_t"
        used.add(name)
        target_vars[var] = RelVar(name)
    head = [
        triple_pattern_to_atom(tp, target_vars)
        for tp in assertion.target.conjuncts()
    ]
    return TGD(body, head, label=label or assertion.label or "assertion")


def equivalence_to_tgds(
    equivalence: EquivalenceMapping, label: str = ""
) -> List[TGD]:
    """The six positional copy dependencies for ``c ≡ₑ c′``."""
    c = Constant(equivalence.left)
    c_prime = Constant(equivalence.right)
    x, y = RelVar("x"), RelVar("y")
    stem = label or f"eq:{equivalence.left.local_name()}"
    out: List[TGD] = []
    for position, (first, second) in enumerate(
        ((c, c_prime), (c_prime, c))
    ):
        direction = "fwd" if position == 0 else "bwd"
        out.append(
            TGD(
                [Atom(TT, first, x, y)],
                [Atom(TT, second, x, y)],
                label=f"{stem}:subj:{direction}",
            )
        )
        out.append(
            TGD(
                [Atom(TT, x, first, y)],
                [Atom(TT, x, second, y)],
                label=f"{stem}:pred:{direction}",
            )
        )
        out.append(
            TGD(
                [Atom(TT, x, y, first)],
                [Atom(TT, x, y, second)],
                label=f"{stem}:obj:{direction}",
            )
        )
    return out


@dataclass
class DataExchangeSetting:
    """The full Section-3 setting for one RPS.

    Attributes:
        source_to_target: the two copy dependencies.
        target: assertion TGDs followed by equivalence TGDs.
        assertion_tgds / equivalence_tgds: the two groups separately
            (classification and rewriting need them apart).
    """

    source_to_target: List[TGD]
    assertion_tgds: List[TGD]
    equivalence_tgds: List[TGD]

    @property
    def target(self) -> List[TGD]:
        return self.assertion_tgds + self.equivalence_tgds

    def all_tgds(self) -> List[TGD]:
        return self.source_to_target + self.target


def rps_to_data_exchange(
    system: RPS, with_rt_guards: bool = True
) -> DataExchangeSetting:
    """Encode the RPS as a data-exchange setting (Section 3)."""
    assertion_tgds = [
        assertion_to_tgd(a, with_rt_guards, label=a.label or f"gma#{i}")
        for i, a in enumerate(system.assertions)
    ]
    equivalence_tgds: List[TGD] = []
    for i, equivalence in enumerate(system.equivalences):
        equivalence_tgds.extend(
            equivalence_to_tgds(equivalence, label=f"eq#{i}")
        )
    return DataExchangeSetting(
        source_to_target=source_to_target_tgds(),
        assertion_tgds=assertion_tgds,
        equivalence_tgds=equivalence_tgds,
    )


def rewriting_tgds(system: RPS) -> List[TGD]:
    """Target dependencies without ``rt`` guards, for the rewriting engine.

    Valid under the Section-4 assumption that sources are blank-free, in
    which case ``∀x rt(x)`` holds and the guards are vacuous.
    """
    setting = rps_to_data_exchange(system, with_rt_guards=False)
    return setting.target


def target_instance_to_graph(instance: Instance, name: str = "") -> Graph:
    """Read the ``tt`` facts of a chased instance back as an RDF graph.

    Labelled nulls become blank nodes ``_:nullN`` (the paper's "newly
    created blank nodes").

    Raises:
        TGDError: if a tt fact has a shape no RDF triple allows (cannot
            happen for instances produced by the encoding).
    """
    # Chase-minted nulls become fresh blank nodes; a private dictionary
    # keeps them out of the process-wide shared one (see peers/chase.py).
    graph = Graph(name=name or "exchange-target", dictionary=TermDictionary())
    for fact in instance.facts_with_predicate(TT):
        terms: List[Term] = []
        for arg in fact.args:
            if isinstance(arg, LabeledNull):
                terms.append(BlankNode(f"null{arg.id}"))
            elif isinstance(arg, Constant):
                terms.append(arg.value)
            else:  # pragma: no cover - instances are ground
                raise TGDError(f"non-ground fact {fact!r}")
        graph.add(Triple(terms[0], terms[1], terms[2]))
    return graph


def chase_via_data_exchange(
    system: RPS, max_steps: int = 1_000_000
) -> Tuple[Graph, ChaseResult]:
    """Materialise the universal solution through the relational encoding.

    This is the slow, by-the-book path used to cross-validate the direct
    Algorithm-1 implementation: both must yield the same certain answers
    for every query (property-tested).
    """
    setting = rps_to_data_exchange(system)
    instance = graph_to_source_instance(system.stored_database())
    result = chase(instance, setting.all_tgds(), max_steps=max_steps)
    graph = target_instance_to_graph(result.instance)
    return graph, result
