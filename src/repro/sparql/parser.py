"""Recursive-descent parser for the SPARQL conjunctive fragment.

Grammar (informal):

.. code-block:: text

    Query        := Prologue (SelectQuery | AskQuery)
    Prologue     := (PREFIX pname: <iri>)*
    SelectQuery  := SELECT (DISTINCT|REDUCED)? (Var+ | *) WHERE? Group
                    (ORDER BY OrderCond+)? (LIMIT n)? (OFFSET n)?
    AskQuery     := ASK WHERE? Group
    Group        := { (TriplesBlock | Group (UNION Group)*
                       | OPTIONAL Group | FILTER Expr)* }
    TriplesBlock := Term Term Term (';' Term Term)* ('.' ...)*

Property paths, GRAPH, subqueries, aggregation and BIND are out of
scope (the paper's language is the conjunctive fragment plus UNION;
OPTIONAL is supported as the algebra's left join); encountering an
unsupported feature raises :class:`UnsupportedSparqlError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import (
    SparqlSyntaxError,
    TermError,
    UnsupportedSparqlError,
)
from repro.rdf.namespaces import NamespaceManager, RDF_TYPE
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    unescape_literal,
)
from repro.rdf.triples import TriplePattern
from repro.sparql.ast import (
    AskQuery,
    BooleanExpr,
    Comparison,
    FilterExpr,
    GroupPattern,
    OptionalPattern,
    OrderCondition,
    PatternElement,
    Query,
    SelectQuery,
    UnionPattern,
)
from repro.sparql.lexer import Token, tokenize

__all__ = ["parse_query", "SparqlParser"]

_UNSUPPORTED_KEYWORDS = frozenset(
    {
        "GRAPH",
        "SERVICE",
        "MINUS",
        "BIND",
        "VALUES",
        "GROUP",
        "HAVING",
        "CONSTRUCT",
        "DESCRIBE",
        "EXISTS",
    }
)


class SparqlParser:
    """Parses one query string into an AST.

    Args:
        text: the SPARQL query.
        nsm: optional namespace manager with pre-bound prefixes; PREFIX
            declarations found in the query are added to a copy, so the
            caller's manager is not mutated.
    """

    def __init__(self, text: str, nsm: Optional[NamespaceManager] = None) -> None:
        self.tokens = tokenize(text)
        self.pos = 0
        self.nsm = (nsm.copy() if nsm is not None else NamespaceManager())

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, token: Token, message: str) -> SparqlSyntaxError:
        return SparqlSyntaxError(message, line=token.line, column=token.column)

    def at_keyword(self, *names: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.value in names

    def expect_keyword(self, name: str) -> Token:
        token = self.next()
        if token.kind != "keyword" or token.value != name:
            raise self.error(token, f"expected {name}, found {token.value!r}")
        return token

    def at_punct(self, char: str) -> bool:
        token = self.peek()
        return token.kind == "punct" and token.value == char

    def expect_punct(self, char: str) -> Token:
        token = self.next()
        if token.kind != "punct" or token.value != char:
            raise self.error(token, f"expected {char!r}, found {token.value!r}")
        return token

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Query:
        self.parse_prologue()
        token = self.peek()
        if self.at_keyword("SELECT"):
            query = self.parse_select()
        elif self.at_keyword("ASK"):
            query = self.parse_ask()
        else:
            raise self.error(token, f"expected SELECT or ASK, found {token.value!r}")
        tail = self.peek()
        if tail.kind != "eof":
            raise self.error(tail, f"unexpected trailing input {tail.value!r}")
        return query

    def parse_prologue(self) -> None:
        while self.at_keyword("PREFIX", "BASE"):
            token = self.next()
            if token.value == "BASE":
                raise UnsupportedSparqlError("BASE declarations are not supported")
            pname = self.next()
            if pname.kind != "pname" or not pname.value.endswith(":"):
                raise self.error(pname, "expected prefix name ending in ':'")
            iri_token = self.next()
            if iri_token.kind != "iri":
                raise self.error(iri_token, "expected namespace IRI")
            self.nsm.bind(pname.value[:-1], iri_token.value[1:-1])

    def parse_select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = reduced = False
        if self.at_keyword("DISTINCT"):
            self.next()
            distinct = True
        elif self.at_keyword("REDUCED"):
            self.next()
            reduced = True
        variables: List[Variable] = []
        if self.at_punct("*"):
            self.next()
        else:
            while self.peek().kind == "var":
                variables.append(Variable(self.next().value))
            if not variables:
                raise self.error(self.peek(), "SELECT needs variables or *")
        if self.at_keyword("WHERE"):
            self.next()
        where = self.parse_group()
        order = self.parse_order_by()
        limit, offset = self.parse_slice()
        return SelectQuery(
            variables=tuple(variables),
            where=where,
            distinct=distinct,
            reduced=reduced,
            order=order,
            limit=limit,
            offset=offset,
        )

    def parse_ask(self) -> AskQuery:
        self.expect_keyword("ASK")
        if self.at_keyword("WHERE"):
            self.next()
        return AskQuery(where=self.parse_group())

    def parse_order_by(self) -> Tuple[OrderCondition, ...]:
        if not self.at_keyword("ORDER"):
            return ()
        self.next()
        self.expect_keyword("BY")
        conditions: List[OrderCondition] = []
        while True:
            descending = False
            if self.at_keyword("ASC", "DESC"):
                descending = self.next().value == "DESC"
                self.expect_punct("(")
                var_token = self.next()
                if var_token.kind != "var":
                    raise self.error(var_token, "expected variable in ORDER BY")
                self.expect_punct(")")
                conditions.append(
                    OrderCondition(Variable(var_token.value), descending)
                )
            elif self.peek().kind == "var":
                conditions.append(
                    OrderCondition(Variable(self.next().value), False)
                )
            else:
                break
        if not conditions:
            raise self.error(self.peek(), "ORDER BY needs at least one condition")
        return tuple(conditions)

    def parse_slice(self) -> Tuple[Optional[int], Optional[int]]:
        limit: Optional[int] = None
        offset: Optional[int] = None
        while self.at_keyword("LIMIT", "OFFSET"):
            keyword_token = self.peek()
            keyword = self.next().value
            if (keyword == "LIMIT" and limit is not None) or (
                keyword == "OFFSET" and offset is not None
            ):
                raise self.error(keyword_token, f"duplicate {keyword} clause")
            number = self.next()
            if number.kind != "integer":
                raise self.error(number, f"expected integer after {keyword}")
            value = int(number.value)
            if value < 0:
                raise self.error(
                    number, f"{keyword} must be non-negative, got {value}"
                )
            if keyword == "LIMIT":
                limit = value
            else:
                offset = value
        return limit, offset

    # -- group graph patterns ---------------------------------------------

    def parse_group(self) -> GroupPattern:
        self.expect_punct("{")
        elements: List[PatternElement] = []
        while not self.at_punct("}"):
            token = self.peek()
            if token.kind == "eof":
                raise self.error(token, "unterminated group (missing '}')")
            if token.kind == "punct" and token.value == "{":
                elements.append(self.parse_group_or_union())
            elif self.at_keyword("OPTIONAL"):
                self.next()
                elements.append(OptionalPattern(self.parse_group()))
            elif self.at_keyword("FILTER"):
                self.next()
                elements.append(self.parse_filter())
            elif token.kind == "keyword" and token.value in _UNSUPPORTED_KEYWORDS:
                raise UnsupportedSparqlError(
                    f"{token.value} is outside the conjunctive fragment"
                )
            else:
                elements.extend(self.parse_triples_block())
            # Optional '.' separators between elements.
            while self.at_punct("."):
                self.next()
        self.expect_punct("}")
        return GroupPattern(tuple(elements))

    def parse_group_or_union(self) -> PatternElement:
        first = self.parse_group()
        if not self.at_keyword("UNION"):
            return first
        alternatives = [first]
        while self.at_keyword("UNION"):
            self.next()
            alternatives.append(self.parse_group())
        return UnionPattern(tuple(alternatives))

    def parse_filter(self) -> FilterExpr:
        self.expect_punct("(")
        expr = self.parse_or_expr()
        self.expect_punct(")")
        return expr

    def parse_or_expr(self) -> FilterExpr:
        left = self.parse_and_expr()
        while self.peek().kind == "oror":
            self.next()
            right = self.parse_and_expr()
            left = BooleanExpr("||", left, right)
        return left

    def parse_and_expr(self) -> FilterExpr:
        left = self.parse_comparison()
        while self.peek().kind == "andand":
            self.next()
            right = self.parse_comparison()
            left = BooleanExpr("&&", left, right)
        return left

    def parse_comparison(self) -> FilterExpr:
        if self.at_punct("("):
            self.next()
            expr = self.parse_or_expr()
            self.expect_punct(")")
            return expr
        left = self.parse_term(position="filter")
        op_token = self.next()
        if op_token.kind == "neq":
            op = "!="
        elif op_token.kind == "punct" and op_token.value == "=":
            op = "="
        else:
            raise self.error(op_token, "expected '=' or '!=' in FILTER")
        right = self.parse_term(position="filter")
        return Comparison(left, op, right)

    def parse_triples_block(self) -> List[TriplePattern]:
        patterns: List[TriplePattern] = []
        subject = self.parse_term(position="subject")
        while True:
            predicate = self.parse_verb()
            while True:
                object_ = self.parse_term(position="object")
                try:
                    patterns.append(TriplePattern(subject, predicate, object_))
                except Exception as exc:
                    raise SparqlSyntaxError(str(exc)) from exc
                if self.at_punct(","):
                    self.next()
                    continue
                break
            if self.at_punct(";"):
                self.next()
                if self.at_punct(".") or self.at_punct("}"):
                    break
                continue
            break
        return patterns

    def parse_verb(self) -> Term:
        if self.peek().kind == "a":
            self.next()
            return RDF_TYPE
        return self.parse_term(position="predicate")

    def parse_term(self, position: str) -> Term:
        token = self.next()
        try:
            if token.kind == "iri":
                return IRI(token.value[1:-1])
            if token.kind == "pname":
                return self.nsm.expand(token.value)
            if token.kind == "var":
                return Variable(token.value)
            if token.kind == "bnode":
                return BlankNode(token.value[2:])
            if token.kind == "string":
                return self.parse_literal_tail(token)
            if token.kind == "integer":
                return Literal(token.value, datatype=XSD_INTEGER)
            if token.kind == "decimal":
                return Literal(token.value, datatype=XSD_DECIMAL)
            if token.kind == "double":
                return Literal(token.value, datatype=XSD_DOUBLE)
            if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
                return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        except TermError as exc:
            raise self.error(token, str(exc)) from exc
        raise self.error(
            token, f"unexpected token {token.value!r} in {position} position"
        )

    def parse_literal_tail(self, token: Token) -> Literal:
        try:
            lexical = unescape_literal(token.value[1:-1])
        except TermError as exc:
            raise self.error(token, str(exc)) from exc
        nxt = self.peek()
        if nxt.kind == "langtag":
            self.next()
            return Literal(lexical, language=nxt.value[1:])
        if nxt.kind == "dtype":
            self.next()
            dt_token = self.next()
            if dt_token.kind == "iri":
                return Literal(lexical, datatype=IRI(dt_token.value[1:-1]))
            if dt_token.kind == "pname":
                return Literal(lexical, datatype=self.nsm.expand(dt_token.value))
            raise self.error(dt_token, "expected datatype IRI")
        return Literal(lexical)


def parse_query(text: str, nsm: Optional[NamespaceManager] = None) -> Query:
    """Parse a SPARQL query string into an AST.

    Raises:
        SparqlSyntaxError: on malformed syntax.
        UnsupportedSparqlError: on features outside the supported
            fragment (GRAPH, property paths, aggregation, ...).
    """
    return SparqlParser(text, nsm).parse()
